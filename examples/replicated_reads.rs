//! Replicated shards, end to end: a 2-shard campus where every shard keeps
//! 3 followers behind lossy replica links. The walkthrough shows the three
//! pieces the replication layer adds:
//!
//! 1. **Pipelined quorum group-commit** — a burst of floor requests and
//!    chat lines is drained into batches; each batch costs one quorum
//!    round-trip and the worker keeps draining while acknowledgements are
//!    in flight. Every released decision carries its `commit` bound.
//! 2. **Scale-out follower reads** — `session_view` / `queue_position`
//!    round-robin across followers; the read-your-writes bound forwards a
//!    read to the leader only when the chosen follower has not yet applied
//!    the reader's last acknowledged write.
//! 3. **Failover by follower promotion** — a shard host crashes and the
//!    most caught-up follower is promoted with a tail catch-up instead of
//!    a full snapshot+log replay, losing nothing that was ever released.
//!
//! Run with: `cargo run --example replicated_reads`

use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest, SessionOp};
use dmps_floor::{FcmMode, Member, Role};
use dmps_simnet::Link;

const SEMINARS: usize = 4;
const STUDENTS: usize = 4;
const LINES: usize = 12;

fn main() {
    // Replica links are lossy on purpose: the quorum pipeline heals dropped
    // appends by rewinding to the follower's last acknowledged sequence.
    let config = ClusterConfig {
        replica_link: Link {
            loss_rate: 0.10,
            ..Link::replica()
        },
        ..ClusterConfig::with_shards(2).with_replicas(3)
    };
    let mut cluster = Cluster::new(config);

    // Four seminars, each with a chair and four students.
    let mut seminars = Vec::new();
    for g in 0..SEMINARS {
        let group = cluster
            .create_group(format!("seminar-{g}"), FcmMode::EqualControl)
            .expect("all shards up");
        let chair = cluster.register_member(Member::new(format!("chair-{g}"), Role::Chair));
        cluster.join_group(group, chair).expect("fresh group");
        let students: Vec<_> = (0..STUDENTS)
            .map(|s| {
                let m = cluster
                    .register_member(Member::new(format!("student-{g}-{s}"), Role::Participant));
                cluster.join_group(group, m).expect("fresh group");
                m
            })
            .collect();
        seminars.push((group, chair, students));
    }
    println!(
        "campus: {} seminars on {} shards, 3 replicas each (lossy replica links)",
        SEMINARS,
        cluster.shard_count()
    );

    // --- 1. Quorum-committed writes --------------------------------------
    let gateway = cluster.gateway();
    let mut last_commit = 0;
    for (group, chair, _) in &seminars {
        gateway
            .request(GlobalRequest::speak(*group, *chair))
            .expect("chair takes the floor");
        for i in 0..LINES {
            let seq = gateway
                .submit_session(SessionOp::chat(*group, *chair, format!("slide note {i}")))
                .expect("shard up");
            let ack = gateway.recv_session_decision().expect("shard up");
            assert_eq!(ack.seq, seq);
            assert!(ack.commit > 0, "released decisions carry a commit bound");
            last_commit = last_commit.max(ack.commit);
        }
    }
    println!(
        "wrote {} floor-gated chat lines; last quorum commit bound: {}",
        SEMINARS * LINES,
        last_commit
    );

    // --- 2. Follower-served reads under the RYW bound ---------------------
    for (group, _, students) in &seminars {
        let view = gateway.session_view(*group).expect("group live");
        assert_eq!(view.chat.len(), LINES, "own writes are always visible");
        for (rank, s) in students.iter().enumerate() {
            gateway
                .request(GlobalRequest::speak(*group, *s))
                .expect("queued");
            let pos = gateway.queue_position(*group, *s).expect("member known");
            assert_eq!(pos, Some(rank + 1), "queue order observed on read path");
        }
    }
    let metrics = cluster.metrics();
    let mut follower = 0;
    let mut forwarded = 0;
    for s in 0..cluster.shard_count() {
        follower += metrics
            .counter(&format!("cluster.shard.{s}.replica.follower_reads"))
            .get();
        forwarded += metrics
            .counter(&format!("cluster.shard.{s}.replica.forwarded_reads"))
            .get();
    }
    println!("reads: {follower} served by followers, {forwarded} forwarded to leaders");

    // --- 3. Failover by follower promotion --------------------------------
    let (group, _, students) = &seminars[0];
    let shard = cluster.placement(*group).expect("group live").shard;
    cluster.crash_shard(shard);
    cluster
        .recover_shard(shard)
        .expect("a follower is promotable");
    let view = gateway.session_view(*group).expect("promoted shard serves");
    assert_eq!(view.chat.len(), LINES, "no released chat line lost");
    assert_eq!(
        gateway.queue_position(*group, students[0]).unwrap(),
        Some(1),
        "request queue survives promotion"
    );
    let lag = metrics.histogram(&format!("cluster.shard.{}.replica.catch_up_lag", shard.0));
    println!(
        "failover: shard s{} promoted its most caught-up follower ({} tail catch-up recorded)",
        shard.0,
        lag.count()
    );
    cluster.check_invariants().expect("cluster consistent");
    println!("invariants hold: quorum pipeline, follower reads and promotion agree");
}
