//! One observability pass over a failing cluster: a seeded `ClusterSim`
//! run (crash mid-traffic, standby failover, gateway retransmission) that
//! prints the three telemetry surfaces this repo grows:
//!
//! 1. the **merged cluster trace** — failures, recoveries, retransmission
//!    passes and every decision (journal replays marked) in one
//!    time-ordered table;
//! 2. the **metrics report** — the cluster-wide registry of lock-free
//!    counters, log-bucketed latency histograms and queue-depth
//!    time-series, rendered human-readable;
//! 3. the **sampled pipeline spans** — per-request
//!    submitted → enqueued → drained → committed → replied traces.
//!
//! Run with `cargo run --release --example telemetry_report`. The example
//! asserts its own invariants, so CI runs it as a smoke test.

use std::time::Duration;

use dmps_cluster::{ClusterConfig, ClusterSim, GlobalRequest, SessionOp};
use dmps_floor::{FcmMode, Member, Role};
use dmps_simnet::{Link, SimTime};

fn main() {
    // Trace every 4th submission; a zero-jitter 30 ms link makes the
    // crash/replay timeline reproducible run to run.
    let config = ClusterConfig {
        trace_sampling: 4,
        ..ClusterConfig::with_shards(2)
    };
    let link = Link {
        latency: Duration::from_millis(30),
        jitter: Duration::ZERO,
        ..Link::lan()
    };
    let mut sim = ClusterSim::new(config, 5, link);
    sim.enable_retransmission(Duration::from_millis(40));

    let group = sim
        .cluster_mut()
        .create_group("lecture", FcmMode::EqualControl)
        .expect("all shards active");
    let shard = sim.cluster().placement(group).expect("placed").shard;
    let speakers: Vec<_> = (0..3)
        .map(|i| {
            let m = sim
                .cluster_mut()
                .register_member(Member::new(format!("student-{i}"), Role::Participant));
            sim.cluster_mut().join_group(group, m).expect("fresh group");
            m
        })
        .collect();

    // Floor and session traffic every 50 ms; the serving host dies at
    // 900 ms and its standby recovers 300 ms later.
    for i in 0..40u64 {
        sim.submit_at(
            SimTime::from_millis(50 * i),
            GlobalRequest::speak(group, speakers[(i % 3) as usize]),
        )
        .expect("routable");
    }
    for i in 0..10u64 {
        sim.submit_session_at(
            SimTime::from_millis(25 + 200 * i),
            SessionOp::chat(group, speakers[0], format!("slide note {i}")),
        )
        .expect("routable");
    }
    sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
    sim.run_to_idle();

    println!("== merged cluster trace ({} events) ==", sim.trace().len());
    print!("{}", sim.trace().to_table());

    println!("\n== metrics report ==");
    print!("{}", sim.cluster().metrics_report());

    let spans = sim.cluster().recent_spans();
    println!("\n== sampled pipeline spans ({} retained) ==", spans.len());
    for span in &spans {
        println!("{span}");
    }

    // The run's own acceptance: exactly-once delivery held, the trace is
    // time-ordered with the crash, the recovery and the first replayed
    // decision identifiable, and the sampled spans completed the pipeline.
    assert_eq!(sim.failovers(), 1);
    assert_eq!(sim.decisions().len(), 40, "every request answered once");
    assert_eq!(sim.session_acks().len(), 10, "every op acked once");
    let trace = sim.trace();
    assert!(trace.events().windows(2).all(|w| w[0].at <= w[1].at));
    let crash = trace.of_category("crash").next().expect("crash traced");
    let recover = trace
        .of_category("recover")
        .next()
        .expect("recovery traced");
    let replay = trace.of_category("replay").next().expect("replay traced");
    assert!(crash.at < recover.at && recover.at < replay.at);
    assert!(!spans.is_empty(), "1-in-4 sampling must retain spans");
    assert!(spans.iter().all(|s| s.is_complete()));
    sim.cluster().check_invariants().expect("invariants hold");
    println!("\ntelemetry_report: OK");
}
