//! A full distance-learning lecture, the paper's motivating scenario:
//!
//! 1. the lecture presentation (video + narration + slides + quiz) is
//!    authored as a [`PresentationDocument`], compiled to a DOCPN net,
//!    structurally verified, and its synchronous sets printed;
//! 2. a DMPS session with one teacher and four students (varied links and
//!    clock drifts) plays the presentation under the global-clock admission
//!    rule;
//! 3. the session switches to Equal Control for a question round, the floor
//!    token circulates, and one student's link fails mid-question (the
//!    Figure 3 scenario).
//!
//! Run with: `cargo run --example distance_learning_lecture`

use std::time::Duration;

use dmps::render::{render_communication_window, render_connection_lights};
use dmps::{PresentationDriver, Session, SessionConfig};
use dmps_docpn::{compile, verify_presentation, CompileOptions, ModelKind};
use dmps_floor::{FcmMode, Role};
use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
use dmps_simnet::{Link, LocalClock};

fn build_lecture() -> PresentationDocument {
    let mut doc = PresentationDocument::new("distributed-systems-lecture-7");
    let video = doc.add_object(MediaObject::new(
        "lecture-video",
        MediaKind::Video,
        Duration::from_secs(40),
    ));
    let narration = doc.add_object(MediaObject::new(
        "narration",
        MediaKind::Audio,
        Duration::from_secs(40),
    ));
    let slides = doc.add_object(MediaObject::new(
        "slides",
        MediaKind::Slide,
        Duration::from_secs(30),
    ));
    let quiz = doc.add_object(MediaObject::new(
        "quiz",
        MediaKind::Text,
        Duration::from_secs(15),
    ));
    doc.relate(video, TemporalRelation::Equals, narration)
        .unwrap();
    doc.relate(video, TemporalRelation::StartedBy, slides)
        .unwrap();
    doc.relate(video, TemporalRelation::Meets, quiz).unwrap();
    doc.add_interaction(
        "quiz-answers",
        Duration::from_secs(45),
        Duration::from_secs(8),
    );
    doc
}

fn main() {
    // --- 1. Author, compile and verify the presentation -------------------
    let doc = build_lecture();
    println!("== presentation: {} ==", doc.name());
    let sets = doc.synchronous_sets().unwrap();
    println!("synchronous sets (objects presented together): {sets:?}");

    let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
    let verification = verify_presentation(&compiled).unwrap();
    println!(
        "DOCPN net: {} places, {} transitions — bounded={} safe={} schedule-ok={}",
        compiled.net.place_count(),
        compiled.net.transition_count(),
        verification.bounded,
        verification.safe,
        verification.schedule_matches_timeline
    );

    // --- 2. Play it over a distributed session -----------------------------
    let mut session = Session::new(SessionConfig::new(77, FcmMode::FreeAccess));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let students: Vec<usize> = [
        ("chen", Link::dsl(), LocalClock::new(300.0, 4_000_000)),
        ("dana", Link::dsl(), LocalClock::new(-250.0, -3_000_000)),
        ("eli", Link::wan(), LocalClock::new(150.0, 8_000_000)),
        ("farah", Link::wan(), LocalClock::new(-400.0, -6_000_000)),
    ]
    .into_iter()
    .map(|(name, link, clock)| session.add_client(name, Role::Participant, link, clock))
    .collect();
    session.pump();

    let driver = PresentationDriver::from_compiled(&compiled);
    let start = session.now() + Duration::from_secs(3);
    let report = driver.run(&mut session, start, Duration::from_secs(2));
    println!("\n== synchronized playback (with global-clock admission) ==");
    println!("{}", report.to_table());

    // --- 3. Equal-control question round + link failure --------------------
    let group = session.server().group();
    session
        .server_mut()
        .arbiter_mut()
        .set_mode(group, FcmMode::EqualControl)
        .unwrap();
    session.send_chat(teacher, "Questions? Request the floor.");
    session.request_floor(students[0]);
    session.request_floor(students[1]);
    session.pump();
    println!(
        "chen may speak: {}, dana queued behind: {:?}",
        session.client(students[0]).may_speak(),
        session.client(students[1]).queued_behind()
    );
    session.send_chat(students[0], "Why does the slower clock fire immediately?");
    session.release_floor(students[0]);
    session.pump();
    session.send_chat(students[1], "And what happens below the beta threshold?");
    session.pump();

    // Farah's home connection drops (Figure 3c).
    session.set_client_link_up(students[3], false);
    let until = session.now() + Duration::from_secs(12);
    session.run_until(until);
    println!("\n== connection panel after farah's link failure ==");
    println!(
        "{}",
        render_connection_lights(session.server(), session.now())
    );

    println!("== teacher's communication window ==");
    println!("{}", render_communication_window(session.client(teacher)));
    println!(
        "dropped messages recorded by the network: {}",
        session.network().dropped().len()
    );
}
