//! Sharded campus: 4 shards serving 64 concurrent lecture *sessions* — not
//! just their floor requests — over the simulated network. Each lecture
//! mixes floor control traffic with the session's content plane (chat lines,
//! whiteboard strokes, synchronized playback schedules), all routed through
//! the sharded-session path: every operation travels to the shard owning the
//! group, is floor-gated there, and lands in the shard's durable event log.
//! One shard host crashes mid-lecture; its standby recovers by
//! snapshot+replay, gateway retransmission heals the stranded traffic
//! exactly-once, and the run finishes with per-shard grant-latency
//! statistics and the surviving session state.
//!
//! The campus then **scales out under load**: a fifth shard joins
//! (`add_shard`), `rebalance_idle` moves the idle groups and defers the
//! token-pinned ones, and `rebalance_active` drains that deferred list via
//! the two-phase live handoff — held tokens, request queues, session logs
//! and journal slices all migrate intact, verified per shard via
//! `shard_view` and `check_invariants`.
//!
//! Run with: `cargo run --example sharded_campus_lectures`

use std::time::Duration;

use dmps::metrics::GrantLatencyStats;
use dmps_cluster::{ClusterConfig, ClusterSim, GlobalRequest, SessionOp, ShardId};
use dmps_floor::{FcmMode, Member, Role};
use dmps_simnet::{Link, SimTime};

const SHARDS: usize = 4;
const GROUPS: usize = 64;
const STUDENTS: usize = 5;

fn main() {
    let mut sim = ClusterSim::new(ClusterConfig::with_shards(SHARDS), 2001, Link::lan());
    // Gateway retransmission: requests stranded by the crash below are
    // re-sent under their original ids after failover; the shard dedup
    // window keeps already-applied ones from double-applying.
    sim.enable_retransmission(Duration::from_millis(60));

    // 64 lecture groups cycling through the paper's four floor control
    // modes, each with a teacher (chair) and five students.
    let modes = [
        FcmMode::FreeAccess,
        FcmMode::EqualControl,
        FcmMode::GroupDiscussion,
        FcmMode::EqualControl,
    ];
    let mut lectures = Vec::new();
    for g in 0..GROUPS {
        let mode = modes[g % modes.len()];
        let gid = sim
            .cluster_mut()
            .create_group(format!("lecture-{g}"), mode)
            .expect("all shards up");
        let teacher = sim
            .cluster_mut()
            .register_member(Member::new(format!("teacher-{g}"), Role::Chair));
        sim.cluster_mut()
            .join_group(gid, teacher)
            .expect("fresh group");
        let students: Vec<_> = (0..STUDENTS)
            .map(|s| {
                let m = sim
                    .cluster_mut()
                    .register_member(Member::new(format!("student-{g}-{s}"), Role::Participant));
                sim.cluster_mut().join_group(gid, m).expect("fresh group");
                m
            })
            .collect();
        lectures.push((gid, mode, teacher, students));
    }
    println!(
        "campus: {} groups on {} shards ({} members)",
        sim.cluster().group_count(),
        sim.cluster().shard_count(),
        sim.cluster().member_count(),
    );
    for s in 0..SHARDS {
        println!(
            "  shard s{s}: {:3} groups on host {}",
            sim.cluster().groups_on(ShardId(s)).len(),
            sim.serving_host(ShardId(s)),
        );
    }

    // Ten seconds of floor traffic: teachers claim the floor, students
    // request (queueing under Equal Control), teachers pass and release.
    for (i, (gid, _, teacher, students)) in lectures.iter().enumerate() {
        let base = SimTime::from_millis(3 * i as u64);
        sim.submit_at(base, GlobalRequest::speak(*gid, *teacher))
            .unwrap();
        for (s, &student) in students.iter().enumerate() {
            sim.submit_at(
                base + Duration::from_millis(500 + 300 * s as u64),
                GlobalRequest::speak(*gid, student),
            )
            .unwrap();
        }
        // A second request wave lands while shard 1's host is down (crash is
        // scheduled at t = 3 s below); those die with the host and are
        // retransmitted after the standby takes over.
        sim.submit_at(
            base + Duration::from_millis(3_050),
            GlobalRequest::speak(*gid, students[1]),
        )
        .unwrap();
        sim.submit_at(
            base + Duration::from_secs(4),
            GlobalRequest::pass_floor(*gid, *teacher, students[0]),
        )
        .unwrap();
        sim.submit_at(
            base + Duration::from_secs(6),
            GlobalRequest::release_floor(*gid, students[0]),
        )
        .unwrap();
    }

    // The sharded-session path: alongside the floor traffic, every lecture
    // runs its content plane through the same shards. The teacher opens with
    // a chat line and a whiteboard stroke and schedules a synchronized
    // playback; a student chats too — delivered immediately under Free
    // Access / Group Discussion, floor-denied under Equal Control until the
    // token moves. Everything lands in the owning shard's durable log, so
    // the state survives the crash below.
    for (i, (gid, _, teacher, students)) in lectures.iter().enumerate() {
        let base = SimTime::from_millis(3 * i as u64);
        sim.submit_session_at(
            base,
            SessionOp::chat(*gid, *teacher, "welcome to the lecture"),
        )
        .unwrap();
        sim.submit_session_at(
            base + Duration::from_millis(200),
            SessionOp::whiteboard(*gid, *teacher, "axes(0,0,10,10)"),
        )
        .unwrap();
        sim.submit_session_at(
            base + Duration::from_millis(400),
            SessionOp::schedule_media(*gid, *teacher, "slide-deck", SimTime::from_secs(8)),
        )
        .unwrap();
        sim.submit_session_at(
            base + Duration::from_millis(800),
            SessionOp::chat(
                *gid,
                students[2],
                "does this apply to nets with priorities?",
            ),
        )
        .unwrap();
    }

    // Mid-lecture, the host serving shard 1 crashes; its standby replays
    // snapshot + log and takes over 400 ms later.
    sim.schedule_crash(
        SimTime::from_secs(3),
        ShardId(1),
        Duration::from_millis(400),
    );
    sim.run_to_idle();

    println!(
        "\ntraffic: {} floor decisions, {} session acks, {} messages dropped, {} failover(s), {} retransmit(s)",
        sim.decisions().len(),
        sim.session_acks().len(),
        sim.network().dropped().len(),
        sim.failovers(),
        sim.retransmits(),
    );
    sim.cluster()
        .check_invariants()
        .expect("floor invariants hold after failover");
    println!("floor invariants: OK (unique token holders, sound suspensions)");

    // The session state survived the crash: shard 1's groups were recovered
    // by snapshot+replay, chat logs and playback schedules intact.
    let delivered = sim
        .session_acks()
        .iter()
        .filter(|(_, _, o)| o.is_delivered())
        .count();
    let rejected = sim.session_acks().len() - delivered;
    println!("sessions: {delivered} ops delivered, {rejected} floor-denied (Equal Control)");
    let (sample_gid, ..) = lectures[0];
    let view = sim
        .cluster()
        .session_view(sample_gid)
        .expect("lecture 0 exists");
    println!(
        "  lecture-0 after failover: {} chat line(s), {} stroke(s), {} scheduled playback(s)\n",
        view.chat.len(),
        view.whiteboard.len(),
        view.media.len(),
    );

    println!("per-shard grant latency (request -> decision over the simulated LAN):");
    for s in 0..SHARDS {
        let shard = ShardId(s);
        let stats = GrantLatencyStats::from_samples(sim.latencies(shard));
        let view = sim.cluster().shard_view(shard);
        println!(
            "  s{s}: {:4} samples  mean {:>9.3?}  p95 {:>9.3?}  max {:>9.3?}  | granted {:4} queued {:3} denied {:2} aborted {:2}{}",
            stats.samples,
            stats.mean,
            stats.p95,
            stats.max,
            view.stats.granted,
            view.stats.queued,
            view.stats.denied,
            view.stats.aborted,
            if view.recoveries > 0 {
                "  [recovered by standby]"
            } else {
                ""
            },
        );
    }

    // ----- scale-out: add a shard and rebalance the live campus onto it -----
    //
    // Many lectures still hold their floor tokens (Equal Control teachers and
    // students mid-pass), so the idle pass alone cannot spread the load; the
    // two-phase live handoff migrates the token-pinned groups too, with no
    // lost or duplicated decision.
    // `ClusterSim::add_shard` (not the bare cluster call) so the new shard
    // also gets its primary + standby hosts on the simulated network.
    let new = sim.add_shard(Link::lan());
    println!("\nscale-out: shard s{} joins the ring", new.0);
    let idle_pass = sim
        .cluster_mut()
        .rebalance_idle()
        .expect("directory intact");
    println!(
        "  rebalance_idle:   {:2} idle groups migrated, {:2} token-pinned deferred",
        idle_pass.migrated.len(),
        idle_pass.deferred.len(),
    );
    let live_pass = sim
        .cluster_mut()
        .rebalance_active()
        .expect("directory intact");
    println!(
        "  rebalance_active: {:2} live handoffs (held tokens + queues moved), {} deferred",
        live_pass.migrated.len(),
        live_pass.deferred.len(),
    );
    assert!(
        live_pass.deferred.is_empty(),
        "a healthy cluster drains its deferred list"
    );
    sim.cluster()
        .check_invariants()
        .expect("floor invariants hold after live migration");
    let view = sim.cluster().shard_view(new);
    println!(
        "  s{} now serves {} groups ({} with session content), invariants OK\n",
        new.0,
        sim.cluster().groups_on(new).len(),
        view.session_groups,
    );
    // A migrated lecture keeps working where it landed: its state — token
    // queues, chat logs, schedules — moved with it.
    if let Some(&moved) = live_pass.migrated.first() {
        let placement = sim.cluster().placement(moved).expect("group exists");
        let view = sim.cluster().session_view(moved).expect("group exists");
        println!(
            "  e.g. {moved} now lives on {:?} with its token state, {} chat line(s) and {} scheduled playback(s) intact",
            placement.shard,
            view.chat.len(),
            view.media.len(),
        );
    }
}
