//! Group discussion and direct contact: the paper's third and fourth floor
//! control modes, exercised directly against the floor control arbiter.
//!
//! A student creates a breakout sub-group by invitation, the invitees accept
//! or decline, the sub-group chats privately, and two students open a
//! direct-contact window — all while the main session stays in equal control
//! with the teacher holding the floor.
//!
//! Run with: `cargo run --example group_discussion_breakout`

use dmps_floor::{ArbitrationOutcome, FcmMode, FloorArbiter, FloorRequest, Member, Resource, Role};

fn main() {
    let mut arbiter = FloorArbiter::with_defaults();
    let session = arbiter.create_group("seminar", FcmMode::EqualControl);
    let teacher = arbiter
        .add_member(session, Member::new("teacher", Role::Chair))
        .unwrap();
    let alice = arbiter
        .add_member(session, Member::new("alice", Role::Participant))
        .unwrap();
    let bob = arbiter
        .add_member(session, Member::new("bob", Role::Participant))
        .unwrap();
    let carol = arbiter
        .add_member(session, Member::new("carol", Role::Participant))
        .unwrap();

    // The teacher takes the floor in the main group.
    let outcome = arbiter
        .arbitrate(&FloorRequest::speak(session, teacher))
        .unwrap();
    println!("teacher floor request: granted={}", outcome.is_granted());
    let queued = arbiter
        .arbitrate(&FloorRequest::speak(session, alice))
        .unwrap();
    println!("alice floor request while teacher holds the floor: {queued:?}");

    // Alice starts a breakout discussion and invites bob and carol.
    let (breakout, invite_bob) = arbiter
        .invite(session, alice, bob, FcmMode::GroupDiscussion)
        .unwrap();
    arbiter.respond_invitation(invite_bob, bob, true).unwrap();
    let (_, invite_carol) = arbiter
        .invite(session, alice, carol, FcmMode::GroupDiscussion)
        .unwrap();
    // Carol declines; she stays only in the main session.
    arbiter
        .respond_invitation(invite_carol, carol, false)
        .unwrap();
    // Bob also joins alice's original breakout group explicitly.
    arbiter.join_group(breakout, bob).unwrap();

    println!(
        "breakout group: {} (chair {:?})",
        arbiter.group(breakout).unwrap(),
        arbiter.group(breakout).unwrap().chair
    );

    // Inside the breakout everyone qualified may deliver together.
    let outcome = arbiter
        .arbitrate(&FloorRequest::speak(breakout, alice))
        .unwrap();
    match &outcome {
        ArbitrationOutcome::Granted { speakers, .. } => {
            println!("breakout speakers: {speakers:?}");
        }
        other => println!("unexpected breakout outcome: {other:?}"),
    }

    // Bob and carol open a direct-contact window within the main session.
    let (pair, invite) = arbiter
        .invite(session, bob, carol, FcmMode::DirectContact)
        .unwrap();
    arbiter.respond_invitation(invite, carol, true).unwrap();
    let outcome = arbiter
        .arbitrate(&FloorRequest::direct_contact(pair, bob, carol))
        .unwrap();
    println!("direct contact bob↔carol: {outcome:?}");

    // Resource pressure: the session drops into the degraded regime, so a
    // teacher grant suspends lower-priority members' media first.
    arbiter.set_resource(Resource::new(0.35, 0.9, 0.9));
    let outcome = arbiter
        .arbitrate(&FloorRequest::speak(session, teacher))
        .unwrap();
    println!(
        "teacher grant under resource pressure: suspensions={:?}",
        outcome.suspensions()
    );
    println!(
        "currently suspended members: {:?}",
        arbiter.suspended_members().collect::<Vec<_>>()
    );

    // Recovery lifts the suspensions.
    arbiter.set_resource(Resource::full());
    println!(
        "after recovery, suspended members: {:?}",
        arbiter.suspended_members().collect::<Vec<_>>()
    );
    println!("final arbitration stats: {:?}", arbiter.stats());
}
