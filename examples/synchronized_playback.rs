//! Synchronized playback: the global-clock admission rule in action.
//!
//! The same presentation is played twice over the same network and the same
//! badly drifting client clocks — once with the paper's admission rule
//! ("a fast client waits for the global clock, a slow client fires at once")
//! and once without it. The cross-client skew report shows why the paper
//! introduces the centralized global clock.
//!
//! Run with: `cargo run --example synchronized_playback`

use std::time::Duration;

use dmps::{PresentationDriver, Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
use dmps_simnet::{Link, LocalClock};

fn presentation() -> PresentationDocument {
    let mut doc = PresentationDocument::new("news-broadcast");
    let mut prev = None;
    for (i, secs) in [8u64, 12, 6, 10].into_iter().enumerate() {
        let seg = doc.add_object(MediaObject::new(
            format!("segment-{i}"),
            MediaKind::Video,
            Duration::from_secs(secs),
        ));
        if let Some(p) = prev {
            doc.relate(p, TemporalRelation::Meets, seg).unwrap();
        }
        prev = Some(seg);
    }
    doc
}

fn run(admission: bool) -> dmps::PlaybackSkewReport {
    let mut config = SessionConfig::new(4242, FcmMode::FreeAccess);
    if !admission {
        config = config.without_admission_control();
    }
    let mut session = Session::new(config);
    session.add_client("lab-pc", Role::Chair, Link::lan(), LocalClock::perfect());
    session.add_client(
        "dorm-laptop",
        Role::Participant,
        Link::dsl(),
        LocalClock::new(600.0, 30_000_000), // fast clock, +30 ms
    );
    session.add_client(
        "library-kiosk",
        Role::Participant,
        Link::wan(),
        LocalClock::new(-500.0, -40_000_000), // slow clock, −40 ms
    );
    session.pump();

    let driver = PresentationDriver::from_document(&presentation()).unwrap();
    let start = session.now() + Duration::from_secs(5);
    driver.run(&mut session, start, Duration::from_secs(2))
}

fn main() {
    let with_admission = run(true);
    let without_admission = run(false);

    println!("== with the global-clock admission rule (DOCPN) ==");
    println!("{}", with_admission.to_table());
    println!("== without admission control (clients start on message arrival) ==");
    println!("{}", without_admission.to_table());

    println!(
        "admission control reduces the maximum skew from {} us to {} us ({}x)",
        without_admission.overall.max.as_micros(),
        with_admission.overall.max.as_micros(),
        without_admission.overall.max.as_micros().max(1)
            / with_admission.overall.max.as_micros().max(1)
    );
}
