//! Quickstart: a three-participant DMPS session with free-access floor
//! control, a chat exchange, a whiteboard stroke and a teacher annotation,
//! finishing with the rendered communication windows (Figure 2 style).
//!
//! Run with: `cargo run --example quickstart`

use dmps::render::render_session;
use dmps::{Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_simnet::{Link, LocalClock};

fn main() {
    // A deterministic session: same seed, same run.
    let mut session = Session::new(SessionConfig::new(2001, FcmMode::FreeAccess));

    // The teacher is on the campus LAN; the two students dial in over DSL and
    // a long-haul WAN link, with slightly drifting clocks.
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let alice = session.add_client(
        "alice",
        Role::Participant,
        Link::dsl(),
        LocalClock::new(250.0, 1_000_000),
    );
    let bob = session.add_client(
        "bob",
        Role::Participant,
        Link::wan(),
        LocalClock::new(-180.0, -2_000_000),
    );

    // Complete the join handshakes and the first clock-sync rounds.
    session.pump();
    println!(
        "joined: teacher={:?} alice={:?} bob={:?}",
        session.member_of(teacher).unwrap(),
        session.member_of(alice).unwrap(),
        session.member_of(bob).unwrap()
    );

    // Free access: everyone may deliver.
    session.send_chat(teacher, "Welcome to distributed systems, lecture 7.");
    session.send_annotation(teacher, "Today: floor control and global clocks.");
    session.send_chat(alice, "Good morning!");
    session.send_whiteboard(bob, "arrow(client, server)");
    session.pump();

    println!("{}", render_session(&session));

    println!(
        "server saw {} chat lines, {} annotations, {} whiteboard strokes",
        session.server().chat_log().len(),
        session.server().annotation_log().len(),
        session.server().whiteboard_log().len()
    );
    println!(
        "floor arbitration stats: {:?}",
        session.server().arbiter().stats()
    );
}
