//! Backpressure integration: bounded shard queues under storm.
//!
//! Three contracts from the ingest redesign are exercised end to end:
//!
//! * **Shed is loud and exactly-once** — with [`OverloadPolicy::Shed`], a
//!   full queue answers the submission with [`ClusterError::Overloaded`] on
//!   the submitting gateway's stream (never a silent drop), a resubmission
//!   under the same request id eventually applies exactly once, and the
//!   queue's high-water mark never exceeds the configured capacity: the
//!   memory bound holds no matter how hard the storm pushes.
//! * **Block never drops** — with [`OverloadPolicy::Block`] a 4-gateway
//!   storm through a tiny queue delivers every single decision without a
//!   shed, the storm merely throttling to the workers' drain rate.
//! * **Control plane outruns the data plane** — a live two-phase handoff of
//!   a frozen group completes while its source shard's ingest queue is
//!   saturated, because control commands are exempt from the ingest bound.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dmps_cluster::{
    Cluster, ClusterConfig, ClusterError, GlobalGroupId, GlobalMemberId, GlobalRequest,
    OverloadPolicy, ShardId,
};
use dmps_floor::{FcmMode, Member, Role};

const GATEWAYS: usize = 4;

fn build(
    shards: usize,
    groups: usize,
    queue_capacity: usize,
    overload: OverloadPolicy,
) -> (Cluster, Vec<GlobalGroupId>, Vec<Vec<GlobalMemberId>>) {
    let mut cluster = Cluster::new(ClusterConfig {
        queue_capacity,
        overload,
        snapshot_every: 64,
        dedup_window: 1 << 16,
        ..ClusterConfig::with_shards(shards)
    });
    let mut gids = Vec::new();
    let mut rosters = Vec::new();
    for g in 0..groups {
        let gid = cluster
            .create_group(format!("g{g}"), FcmMode::EqualControl)
            .unwrap();
        let roster: Vec<GlobalMemberId> = (0..GATEWAYS)
            .map(|m| {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).unwrap();
                member
            })
            .collect();
        gids.push(gid);
        rosters.push(roster);
    }
    (cluster, gids, rosters)
}

#[test]
fn shed_storm_is_bounded_loud_and_exactly_once() {
    // Queue capacity 8 with batched submissions of 64: every burst
    // overflows, so sheds are guaranteed, and every shed must surface as an
    // `Overloaded` decision that a same-id resubmission heals exactly once.
    const CAPACITY: usize = 8;
    const ROUNDS: usize = 12;
    let (cluster, gids, rosters) = build(4, 16, CAPACITY, OverloadPolicy::Shed);
    let total_sheds = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread in 0..GATEWAYS {
            let gateway = cluster.gateway();
            let gids = &gids;
            let rosters = &rosters;
            let total_sheds = &total_sheds;
            scope.spawn(move || {
                // The storm wave: speak + release per group per round, all
                // submitted in oversized batches.
                let mut requests = Vec::new();
                for _ in 0..ROUNDS {
                    for (gi, &gid) in gids.iter().enumerate() {
                        let me = rosters[gi][thread];
                        requests.push(GlobalRequest::speak(gid, me));
                        requests.push(GlobalRequest::release_floor(gid, me));
                    }
                }
                let mut by_seq: BTreeMap<u64, GlobalRequest> = BTreeMap::new();
                for chunk in requests.chunks(64) {
                    for (seq, request) in gateway.submit_batch(chunk).into_iter().zip(chunk) {
                        assert!(by_seq.insert(seq, *request).is_none());
                    }
                }
                // Drain: every id resolves to exactly one applied decision;
                // sheds are answered (loudly) and retried under the same id.
                let mut applied: BTreeMap<u64, bool> = BTreeMap::new();
                let mut sheds = 0u64;
                while applied.len() < by_seq.len() {
                    let decision = gateway.recv_decision().unwrap();
                    match decision.outcome {
                        Err(ClusterError::Overloaded(_)) => {
                            sheds += 1;
                            std::thread::yield_now();
                            gateway
                                .resubmit(decision.seq, by_seq[&decision.seq])
                                .unwrap();
                        }
                        _ => {
                            assert!(
                                applied.insert(decision.seq, decision.replayed).is_none(),
                                "one applied decision per request id"
                            );
                        }
                    }
                }
                assert!(gateway.try_recv_decision().is_none(), "no stray decisions");
                total_sheds.fetch_add(sheds, Ordering::Relaxed);
                // Exactly-once across shed/retry races: a fresh resubmission
                // of an applied id replays from the journal.
                let (&seq, request) = by_seq.iter().next().unwrap();
                gateway.resubmit(seq, *request).unwrap();
                let replay = gateway.recv_decision().unwrap();
                assert_eq!(replay.seq, seq);
                assert!(replay.replayed, "applied id answered from the journal");
            });
        }
    });
    assert!(
        total_sheds.load(Ordering::Relaxed) > 0,
        "64-request batches through a capacity-8 queue must shed"
    );
    // The memory bound: no queue ever held more than its capacity.
    for s in 0..cluster.shard_count() {
        let stats = cluster.queue_stats(ShardId(s));
        assert_eq!(stats.capacity, CAPACITY);
        assert!(
            stats.peak_queued <= CAPACITY,
            "shard {s} peaked at {} > capacity {CAPACITY}",
            stats.peak_queued
        );
        assert_eq!(stats.queued, 0, "storm fully drained");
    }
    cluster.check_invariants().unwrap();
    for s in 0..cluster.shard_count() {
        cluster.arbiter(ShardId(s)).check_invariants().unwrap();
    }
}

#[test]
fn block_storm_never_drops_through_a_tiny_queue() {
    const CAPACITY: usize = 8;
    const ROUNDS: usize = 20;
    let (cluster, gids, rosters) = build(4, 12, CAPACITY, OverloadPolicy::Block);
    std::thread::scope(|scope| {
        for thread in 0..GATEWAYS {
            let gateway = cluster.gateway();
            let gids = &gids;
            let rosters = &rosters;
            scope.spawn(move || {
                let mut submitted = 0usize;
                for round in 0..ROUNDS {
                    for (gi, &gid) in gids.iter().enumerate() {
                        let me = rosters[gi][thread];
                        // Mix the scalar and vectored paths; both must block
                        // (not shed, not drop) on the full queue.
                        if round % 2 == 0 {
                            gateway.submit(GlobalRequest::speak(gid, me)).unwrap();
                            gateway
                                .submit(GlobalRequest::release_floor(gid, me))
                                .unwrap();
                            submitted += 2;
                        } else {
                            submitted += gateway
                                .submit_batch(&[
                                    GlobalRequest::speak(gid, me),
                                    GlobalRequest::release_floor(gid, me),
                                ])
                                .len();
                        }
                    }
                }
                let decisions = gateway.collect_decisions(submitted).unwrap();
                assert_eq!(decisions.len(), submitted, "nothing dropped");
                for decision in &decisions {
                    assert!(
                        !matches!(decision.outcome, Err(ClusterError::Overloaded(_))),
                        "Block never sheds"
                    );
                    assert!(decision.outcome.is_ok(), "storm requests all routable");
                }
            });
        }
    });
    for s in 0..cluster.shard_count() {
        let stats = cluster.queue_stats(ShardId(s));
        assert!(
            stats.peak_queued <= CAPACITY,
            "blocked producers must not overshoot capacity"
        );
        assert_eq!(stats.queued, 0);
    }
    cluster.check_invariants().unwrap();
    for s in 0..cluster.shard_count() {
        cluster.arbiter(ShardId(s)).check_invariants().unwrap();
    }
}

#[test]
fn handoff_completes_while_the_source_queue_is_saturated() {
    // A live migration must not wait in line behind a data-plane storm:
    // control commands (freeze, export, commit bookkeeping) are exempt from
    // the ingest bound.
    const CAPACITY: usize = 4;
    let (mut cluster, gids, rosters) = build(2, 12, CAPACITY, OverloadPolicy::Shed);
    // The group to migrate: floor-active (held token + queued requester) so
    // only the two-phase handoff can move it.
    let group = gids[0];
    let idx = 0usize;
    assert!(cluster
        .request(GlobalRequest::speak(group, rosters[idx][0]))
        .unwrap()
        .is_granted());
    cluster
        .request(GlobalRequest::speak(group, rosters[idx][1]))
        .unwrap();
    let source = cluster.placement(group).unwrap().shard;
    // Storm fodder: every other group living on the same source shard.
    let fodder: Vec<usize> = (1..gids.len())
        .filter(|&gi| cluster.placement(gids[gi]).unwrap().shard == source)
        .collect();
    assert!(!fodder.is_empty(), "some group shares the source shard");

    let target = cluster.add_shard();
    let stop = AtomicBool::new(false);
    let observed_sheds = AtomicU64::new(0);
    let handoff_result = std::thread::scope(|scope| {
        // Storm threads keep the source shard's tiny queue saturated.
        for thread in 0..2 {
            let gateway = cluster.gateway();
            let stop = &stop;
            let observed_sheds = &observed_sheds;
            let gids = &gids;
            let rosters = &rosters;
            let fodder = &fodder;
            scope.spawn(move || {
                let mut outstanding = 0usize;
                let mut sheds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for &gi in fodder {
                        let me = rosters[gi][thread];
                        gateway.submit(GlobalRequest::speak(gids[gi], me)).unwrap();
                        gateway
                            .submit(GlobalRequest::release_floor(gids[gi], me))
                            .unwrap();
                        outstanding += 2;
                    }
                    while let Some(decision) = gateway.try_recv_decision() {
                        if matches!(decision.outcome, Err(ClusterError::Overloaded(_))) {
                            sheds += 1;
                        }
                        outstanding -= 1;
                    }
                }
                // Every submission is answered — applied or shed, never lost.
                for _ in 0..outstanding {
                    let decision = gateway.recv_decision().unwrap();
                    if matches!(decision.outcome, Err(ClusterError::Overloaded(_))) {
                        sheds += 1;
                    }
                }
                observed_sheds.fetch_add(sheds, Ordering::Relaxed);
            });
        }
        // Meanwhile: park a submission for the migrating group, then run the
        // two-phase handoff through the saturated shard.
        let parked_gateway = cluster.gateway();
        // Give the storm a moment to saturate the queue.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ticket = cluster.handoff_prepare(group, Some(target)).unwrap();
        let parked_seq = parked_gateway
            .submit(GlobalRequest::speak(group, rosters[idx][2]))
            .unwrap();
        assert!(
            parked_gateway.try_recv_decision().is_none(),
            "frozen group: the submission parks instead of deciding"
        );
        let commit = cluster.handoff_commit(ticket);
        stop.store(true, Ordering::Relaxed);
        (commit, parked_seq, parked_gateway)
    });
    let (commit, parked_seq, parked_gateway) = handoff_result;
    commit.unwrap();
    // The group moved, token intact, while the source queue was full.
    let placement = cluster.placement(group).unwrap();
    assert_eq!(placement.shard, target);
    let holder_local = cluster.local_member(rosters[idx][0], target).unwrap();
    assert_eq!(
        cluster
            .arbiter(target)
            .token(placement.local)
            .unwrap()
            .holder(),
        Some(holder_local),
        "held token survived the under-pressure migration"
    );
    // The parked submission was re-driven to the new owner and decided.
    let decision = parked_gateway.recv_decision().unwrap();
    assert_eq!(decision.seq, parked_seq);
    assert!(decision.outcome.is_ok(), "parked op decided after commit");
    assert!(
        observed_sheds.load(Ordering::Relaxed) > 0,
        "the storm must actually have saturated the source queue"
    );
    let stats = cluster.queue_stats(source);
    assert!(stats.peak_queued <= CAPACITY);
    cluster.check_invariants().unwrap();
}
