//! Cluster failover: a shard host crashes mid-token-pass and a standby
//! recovers it from snapshot + log replay without violating the floor-state
//! invariants (unique token holder, no double grant, suspension order
//! preserved), deterministically in the seed.

use std::time::Duration;

use dmps_cluster::{
    ClusterConfig, ClusterSim, GlobalGroupId, GlobalMemberId, GlobalRequest, ShardId,
};
use dmps_floor::suspend::SuspensionOrder;
use dmps_floor::{ArbitrationOutcome, FcmMode, Member, Resource, Role};
use dmps_simnet::{Link, SimTime};

const SHARDS: usize = 4;
const GROUPS: usize = 120;
const MEMBERS_PER_GROUP: usize = 4;

/// Builds a 4-shard cluster serving 120 Equal Control lecture groups with
/// four members each, and schedules a round-robin of speak requests.
fn build(seed: u64) -> (ClusterSim, Vec<GlobalGroupId>, Vec<Vec<GlobalMemberId>>) {
    let mut sim = ClusterSim::new(ClusterConfig::with_shards(SHARDS), seed, Link::lan());
    let mut groups = Vec::new();
    let mut rosters = Vec::new();
    for g in 0..GROUPS {
        let gid = sim
            .cluster_mut()
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .unwrap();
        let mut roster = Vec::new();
        for m in 0..MEMBERS_PER_GROUP {
            let role = if m == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let member = sim
                .cluster_mut()
                .register_member(Member::new(format!("u{g}-{m}"), role));
            sim.cluster_mut().join_group(gid, member).unwrap();
            roster.push(member);
        }
        groups.push(gid);
        rosters.push(roster);
    }
    (sim, groups, rosters)
}

/// The shard state fingerprint used for determinism comparisons.
fn fingerprint(sim: &ClusterSim, shard: ShardId) -> String {
    dmps_wire::to_string(&sim.cluster().arbiter(shard))
}

fn run_crash_scenario(seed: u64) -> (ClusterSim, ShardId, GlobalGroupId, Vec<GlobalMemberId>) {
    let (mut sim, groups, rosters) = build(seed);
    // Traffic: every group requests, passes and releases the token in a
    // round-robin, interleaved across shards over two simulated seconds.
    for (i, (g, roster)) in groups.iter().zip(&rosters).enumerate() {
        let base = SimTime::from_millis(5 * i as u64);
        sim.submit_at(base, GlobalRequest::speak(*g, roster[0]))
            .unwrap();
        sim.submit_at(
            base + Duration::from_millis(400),
            GlobalRequest::speak(*g, roster[1]),
        )
        .unwrap();
        sim.submit_at(
            base + Duration::from_millis(800),
            GlobalRequest::pass_floor(*g, roster[0], roster[2]),
        )
        .unwrap();
        sim.submit_at(
            base + Duration::from_millis(1_200),
            GlobalRequest::release_floor(*g, roster[2]),
        )
        .unwrap();
    }
    // Pick the victim: the shard owning group 0, crashed mid-token-pass (the
    // pass wave lands between 800 and 1400 ms) and recovered 250 ms later.
    let victim_group = groups[0];
    let victim = sim.cluster().placement(victim_group).unwrap().shard;
    sim.schedule_crash(
        SimTime::from_millis(1_000),
        victim,
        Duration::from_millis(250),
    );
    sim.run_to_idle();
    (sim, victim, victim_group, rosters[0].clone())
}

#[test]
fn cluster_serves_many_groups_across_shards() {
    let (sim, groups, _) = build(1);
    assert_eq!(sim.cluster().shard_count(), SHARDS);
    assert_eq!(sim.cluster().group_count(), GROUPS);
    // Consistent hashing spreads the groups over every shard, reasonably.
    for s in 0..SHARDS {
        let owned = sim.cluster().groups_on(ShardId(s)).len();
        assert!(
            (GROUPS / 10..GROUPS / 2).contains(&owned),
            "shard {s} owns {owned} of {GROUPS} groups"
        );
    }
    let _ = groups;
}

#[test]
fn shard_crash_mid_token_pass_recovers_with_unique_holder() {
    let (sim, victim, victim_group, _) = run_crash_scenario(42);
    assert_eq!(sim.failovers(), 1);
    // The whole cluster satisfies the floor invariants after failover.
    sim.cluster().check_invariants().unwrap();
    // Every group on the recovered shard has at most one token holder, and
    // the holder is a group member (double-grant freedom).
    let arbiter = sim.cluster().arbiter(victim);
    for (gid, token) in arbiter.tokens_iter() {
        if let Some(holder) = token.holder() {
            assert!(
                arbiter.group(gid).unwrap().contains(holder),
                "holder of {gid} must be a member"
            );
        }
    }
    // Groups on unaffected shards were fully served: token released, empty
    // queue (the release wave went through).
    let placement = sim.cluster().placement(victim_group).unwrap();
    assert_eq!(placement.shard, victim);
    // The victim shard still answered requests before the crash and after
    // recovery.
    assert!(!sim.latencies(victim).is_empty());
    // Some traffic died with the host.
    assert!(sim
        .network()
        .dropped()
        .iter()
        .any(|d| d.reason == dmps_simnet::DropReason::HostDown));
}

#[test]
fn failover_recovery_is_deterministic_in_the_seed() {
    let (a, victim_a, ..) = run_crash_scenario(7);
    let (b, victim_b, ..) = run_crash_scenario(7);
    assert_eq!(victim_a, victim_b);
    // Same seed ⇒ byte-identical post-failover arbiter state on every shard,
    // same decision stream, same drop record.
    for s in 0..SHARDS {
        assert_eq!(
            fingerprint(&a, ShardId(s)),
            fingerprint(&b, ShardId(s)),
            "shard {s} state must reproduce exactly"
        );
    }
    assert_eq!(a.decisions(), b.decisions());
    assert_eq!(a.network().dropped().len(), b.network().dropped().len());
}

#[test]
fn suspension_state_survives_failover() {
    // Direct (in-process) cluster: degrade resources so a grant suspends
    // lower-priority members, then crash and recover the shard.
    let mut cluster = dmps_cluster::Cluster::new(ClusterConfig::with_shards(SHARDS));
    let g = cluster
        .create_group("lecture", FcmMode::FreeAccess)
        .unwrap();
    let shard = cluster.placement(g).unwrap().shard;
    let teacher = cluster.register_member(Member::new("teacher", Role::Chair));
    cluster.join_group(g, teacher).unwrap();
    let students: Vec<_> = (0..3)
        .map(|i| {
            let m = cluster.register_member(Member::new(format!("s{i}"), Role::Participant));
            cluster.join_group(g, m).unwrap();
            m
        })
        .collect();
    cluster.arbiter(shard).check_invariants().unwrap();
    cluster
        .set_shard_resource(shard, Resource::new(0.3, 1.0, 1.0))
        .unwrap();
    let outcome = cluster.request(GlobalRequest::speak(g, teacher)).unwrap();
    let ArbitrationOutcome::Granted { suspensions, .. } = &outcome else {
        panic!("expected grant, got {outcome:?}");
    };
    assert!(
        !suspensions.is_empty(),
        "degraded resources must suspend students"
    );
    // Suspension priority order: only priorities below the teacher's.
    assert!(suspensions.iter().all(|s| s.priority < 3));
    let suspended_before: Vec<_> = cluster.arbiter(shard).suspended_members().collect();
    cluster.crash_shard(shard);
    cluster.recover_shard(shard).unwrap();
    let suspended_after: Vec<_> = cluster.arbiter(shard).suspended_members().collect();
    assert_eq!(
        suspended_before, suspended_after,
        "the suspension set (and its priority order) survives failover"
    );
    assert_eq!(
        cluster.arbiter(shard).suspension_order(),
        SuspensionOrder::PriorityAscending
    );
    let _ = students;
}

#[test]
fn retransmission_after_failover_is_exactly_once_at_scale() {
    // The full 120-group campus with gateway retransmission on: the crash
    // strands a wave of requests on the victim shard, the gateway re-sends
    // them under their original ids after the standby takes over, and the
    // shard dedup window keeps already-applied events from double-applying.
    let (mut sim, groups, rosters) = build(42);
    sim.enable_retransmission(Duration::from_millis(30));
    let mut submitted = Vec::new();
    for (i, (g, roster)) in groups.iter().zip(&rosters).enumerate() {
        let base = SimTime::from_millis(5 * i as u64);
        submitted.push(
            sim.submit_at(base, GlobalRequest::speak(*g, roster[0]))
                .unwrap(),
        );
        submitted.push(
            sim.submit_at(
                base + Duration::from_millis(400),
                GlobalRequest::speak(*g, roster[1]),
            )
            .unwrap(),
        );
        submitted.push(
            sim.submit_at(
                base + Duration::from_millis(800),
                GlobalRequest::pass_floor(*g, roster[0], roster[2]),
            )
            .unwrap(),
        );
        submitted.push(
            sim.submit_at(
                base + Duration::from_millis(1_200),
                GlobalRequest::release_floor(*g, roster[2]),
            )
            .unwrap(),
        );
    }
    let victim = sim.cluster().placement(groups[0]).unwrap().shard;
    sim.schedule_crash(
        SimTime::from_millis(1_000),
        victim,
        Duration::from_millis(250),
    );
    sim.run_to_idle();
    assert_eq!(sim.failovers(), 1);
    assert!(
        sim.retransmits() > 0,
        "the crash must strand requests for the gateway to re-send"
    );
    // Exactly one decision per submission: nothing lost, nothing doubled.
    let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
    answered.sort_unstable();
    submitted.sort_unstable();
    assert_eq!(answered, submitted);
    sim.cluster().check_invariants().unwrap();
    // The victim shard still holds the no-double-grant invariant.
    let arbiter = sim.cluster().arbiter(victim);
    for (gid, token) in arbiter.tokens_iter() {
        if let Some(holder) = token.holder() {
            assert!(arbiter.group(gid).unwrap().contains(holder));
        }
    }
}
