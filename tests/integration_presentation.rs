//! Integration: authoring a presentation, compiling it under all three
//! models, verifying it, and checking the schedule evaluation end to end.

use std::time::Duration;

use dmps_docpn::schedule::evaluate;
use dmps_docpn::{
    compile, verify_presentation, CompileOptions, InteractionBehavior, ModelKind, TimedExecution,
};
use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
use dmps_petri::dot::{to_dot, DotOptions};

fn lecture() -> PresentationDocument {
    let mut doc = PresentationDocument::new("integration-lecture");
    let video = doc.add_object(MediaObject::new(
        "video",
        MediaKind::Video,
        Duration::from_secs(60),
    ));
    let audio = doc.add_object(MediaObject::new(
        "audio",
        MediaKind::Audio,
        Duration::from_secs(60),
    ));
    let slides = doc.add_object(MediaObject::new(
        "slides",
        MediaKind::Slide,
        Duration::from_secs(45),
    ));
    let demo = doc.add_object(MediaObject::new(
        "demo",
        MediaKind::Image,
        Duration::from_secs(15),
    ));
    let quiz = doc.add_object(MediaObject::new(
        "quiz",
        MediaKind::Text,
        Duration::from_secs(20),
    ));
    doc.relate(video, TemporalRelation::Equals, audio).unwrap();
    doc.relate(video, TemporalRelation::StartedBy, slides)
        .unwrap();
    doc.relate(slides, TemporalRelation::Meets, demo).unwrap();
    doc.relate(video, TemporalRelation::Meets, quiz).unwrap();
    doc.add_interaction(
        "mid-lecture-poll",
        Duration::from_secs(30),
        Duration::from_secs(10),
    );
    doc
}

#[test]
fn every_model_compiles_verifies_and_completes() {
    let doc = lecture();
    for model in ModelKind::all() {
        let compiled = compile(&doc, &CompileOptions::new(model)).unwrap();
        let verification = verify_presentation(&compiled).unwrap();
        assert!(
            verification.is_valid(),
            "{model} failed verification: {verification:?}"
        );
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        assert_eq!(
            exec.makespan(),
            Duration::from_secs(80),
            "{model} nominal makespan"
        );
        let report = evaluate(&compiled, &exec, Duration::from_millis(50)).unwrap();
        assert!(
            report.on_schedule(),
            "{model} must be on schedule nominally"
        );
        assert_eq!(report.deadline_misses, 0);
    }
}

#[test]
fn the_figure_1_net_exports_to_dot() {
    let doc = lecture();
    let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
    let dot = to_dot(
        compiled.net.net(),
        &DotOptions {
            title: Some("Figure 1: DOCPN of a distributed multimedia presentation".into()),
            horizontal: true,
            marking: Some(compiled.initial.clone()),
        },
    );
    assert!(dot.contains("digraph"));
    assert!(dot.contains("play:video"));
    assert!(dot.contains("clock@"));
    assert!(dot.contains("Figure 1"));
}

#[test]
fn late_delivery_comparison_matches_the_papers_claim() {
    // The paper's argument: OCPN/XOCPN stall on late media, DOCPN holds the
    // schedule via the priority global clock.
    let doc = lecture();
    let slides = doc.objects().find(|(_, o)| o.name == "slides").unwrap().0;
    let delay = Duration::from_secs(7);

    let xocpn = compile(
        &doc,
        &CompileOptions::new(ModelKind::Xocpn).with_transfer_delay(slides, delay),
    )
    .unwrap();
    let exec = TimedExecution::run_to_completion(&xocpn.net, &xocpn.initial).unwrap();
    let xocpn_report = evaluate(&xocpn, &exec, Duration::from_millis(50)).unwrap();

    let docpn = compile(
        &doc,
        &CompileOptions::new(ModelKind::Docpn).with_transfer_delay(slides, delay),
    )
    .unwrap();
    let exec = TimedExecution::run_to_completion(&docpn.net, &docpn.initial).unwrap();
    let docpn_report = evaluate(&docpn, &exec, Duration::from_millis(50)).unwrap();

    assert!(
        xocpn_report.max_stall >= delay,
        "XOCPN stalls at least as long as the delay"
    );
    assert!(
        xocpn_report.deadline_misses >= 2,
        "the stall cascades to later objects"
    );
    assert!(docpn_report.on_schedule(), "DOCPN never stalls");
    assert_eq!(
        docpn_report.deadline_misses, 1,
        "only the late object misses under DOCPN"
    );
    assert!(docpn_report.priority_firings >= 1);
    assert!(docpn_report.makespan < xocpn_report.makespan);
}

#[test]
fn interaction_points_follow_user_or_timeout() {
    let doc = lecture();
    // Timeout path.
    let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
    let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
    let (t_user, t_timeout) = compiled.interaction_transitions["mid-lecture-poll"];
    assert!(exec.firing_of(t_user).is_none());
    assert_eq!(
        exec.firing_of(t_timeout).unwrap().at,
        Duration::from_secs(40)
    );

    // User path.
    let options = CompileOptions::new(ModelKind::Docpn).with_interaction(
        "mid-lecture-poll",
        InteractionBehavior::ActedAt(Duration::from_secs(33)),
    );
    let compiled = compile(&doc, &options).unwrap();
    let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
    let (t_user, t_timeout) = compiled.interaction_transitions["mid-lecture-poll"];
    assert_eq!(exec.firing_of(t_user).unwrap().at, Duration::from_secs(33));
    assert!(exec.firing_of(t_timeout).is_none());
}

#[test]
fn synchronous_sets_match_active_objects_on_the_timeline() {
    let doc = lecture();
    let timeline = doc.timeline().unwrap();
    let sets = doc.synchronous_sets().unwrap();
    // Every synchronous set is exactly the active set at some instant — its
    // witness instant is the latest start time among its members.
    for set in &sets {
        let probe = set
            .iter()
            .map(|&id| timeline.interval(id).unwrap().start)
            .max()
            .unwrap();
        let mut active = timeline.active_at(probe);
        active.sort();
        assert_eq!(&active, set);
    }
    assert!(sets.len() >= 2);
}
