//! CI-scale macro-workload integration: a ~5k-group trace spanning all four
//! session archetypes is replayed against a real sharded cluster, with every
//! streamed decision checked against the trace's stamped expectation and the
//! final per-group content counts verified exactly — then again with a
//! seeded mid-run shard crash, proving the exactly-one-decision contract at
//! macro scale (zero lost, zero duplicated decisions).

use dmps_workload::{generate, replay, CrashPlan, ReplayOptions, Trace, WorkloadSpec};

const SEED: u64 = 2001;
const SHARDS: usize = 8;

fn ci_trace() -> Trace {
    let trace = generate(&WorkloadSpec::ci(SEED));
    trace.check_well_formed().expect("ci trace is well-formed");
    trace
}

#[test]
fn ci_scale_trace_covers_every_archetype() {
    let trace = ci_trace();
    assert!(trace.groups.len() >= 5_000, "ci spec stands up ~5k groups");
    let per_arch = trace.ops_per_archetype();
    for (i, &count) in per_arch.iter().enumerate() {
        assert!(count > 0, "archetype index {i} generated no streamed ops");
    }
    let subs = trace.groups.iter().filter(|g| g.parent.is_some()).count();
    assert!(subs > 0, "breakout plenaries spawned sub-sessions");
}

#[test]
fn ci_scale_replay_is_faithful_and_exactly_once() {
    let trace = ci_trace();
    let mut opts = ReplayOptions::new(SHARDS);
    opts.flush_batch = 256; // stay well inside the 1024-entry dedup window
    let report = replay(&trace, &opts);

    assert!(
        report.is_clean(),
        "mismatches: {:?} / invariants: {:?}",
        report.mismatches,
        report.invariants
    );
    // Exactly one decision per streamed op — none lost, none duplicated.
    assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
    assert_eq!(report.mismatch_count, 0);
    // Every group's end-state content counts matched the reference model.
    assert_eq!(report.verified_groups, trace.groups.len());
    assert!(report.invariants.is_ok());
    // All four archetypes actually streamed traffic through the cluster.
    for arch in &report.per_archetype {
        assert!(arch.ops > 0);
    }
    // The memory axes are live: deterministic byte accounting plus (on
    // Linux) RSS probes.
    assert!(report.state_bytes.total() > 0);
    assert!(report.state_bytes_per_group() > 0.0);
}

#[test]
fn ci_scale_replay_survives_mid_run_crash_exactly_once() {
    let trace = ci_trace();
    let mut opts = ReplayOptions::new(SHARDS);
    opts.flush_batch = 128;
    opts.crashes = vec![CrashPlan {
        at_op: trace.ops.len() / 2,
        shard: 3,
    }];
    let report = replay(&trace, &opts);

    assert!(
        report.is_clean(),
        "mismatches: {:?} / invariants: {:?}",
        report.mismatches,
        report.invariants
    );
    // The crash forced the retry path: in-flight ops on the dead shard came
    // back as errors and were resubmitted under their original ids.
    assert!(report.resubmits > 0, "crash produced no resubmits");
    // Still exactly one decision per streamed op, and the end state is
    // byte-for-byte what the reference model predicts — nothing was lost in
    // the crash and the dedup window absorbed every replayed commit.
    assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
    assert_eq!(report.verified_groups, trace.groups.len());
}
