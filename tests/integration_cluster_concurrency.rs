//! Concurrency stress: N gateway threads storm speak/release/pass requests
//! against shared groups — with injected retries and a shard crash/recovery
//! in the middle — then every shard must satisfy the floor invariants and
//! decision accounting must be exactly-once:
//!
//! * every submission (and every injected retry) yields exactly one decision
//!   on the submitting gateway's stream;
//! * a retry of an applied request is answered from the shard's dedup window
//!   (`replayed == true`, identical outcome) instead of double-applying;
//! * a retry of a request refused while its shard was down applies freshly
//!   after recovery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use dmps_cluster::{
    Cluster, ClusterConfig, Decision, Gateway, GlobalGroupId, GlobalMemberId, GlobalRequest,
    ShardId,
};
use dmps_floor::{FcmMode, Member, Role};

const SHARDS: usize = 8;
const GATEWAYS: usize = 4;
const GROUPS: usize = 24;
/// One member per gateway thread per group, so every thread storms every
/// group under its own identity.
const MEMBERS: usize = GATEWAYS;
const ROUNDS: usize = 40;

fn build() -> (Cluster, Vec<GlobalGroupId>, Vec<Vec<GlobalMemberId>>) {
    let mut cluster = Cluster::new(ClusterConfig {
        shards: SHARDS,
        snapshot_every: 64,
        // Large enough to cover a full storm, so late retries always replay.
        dedup_window: 1 << 16,
        ..ClusterConfig::with_shards(SHARDS)
    });
    let mut groups = Vec::new();
    let mut rosters = Vec::new();
    for g in 0..GROUPS {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .unwrap();
        let mut roster = Vec::new();
        for m in 0..MEMBERS {
            let role = if m == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
            cluster.join_group(gid, member).unwrap();
            roster.push(member);
        }
        groups.push(gid);
        rosters.push(roster);
    }
    (cluster, groups, rosters)
}

/// One submission's record: request id, the request, and its first decision.
type StormRecord = (u64, GlobalRequest, Decision);
/// A gateway thread's result: its records plus how many retries replayed.
type StormResult = (Vec<StormRecord>, usize);

/// One gateway thread's storm: submit, collect, then inject retries.
fn storm(
    gateway: &Gateway,
    thread: usize,
    groups: &[GlobalGroupId],
    rosters: &[Vec<GlobalMemberId>],
) -> StormResult {
    let mut submitted: Vec<(u64, GlobalRequest)> = Vec::new();
    for round in 0..ROUNDS {
        for (gi, &group) in groups.iter().enumerate() {
            let me = rosters[gi][thread];
            let speak = GlobalRequest::speak(group, me);
            submitted.push((gateway.submit(speak).unwrap(), speak));
            if round % 3 == thread % 3 {
                let to = rosters[gi][(thread + 1) % MEMBERS];
                let pass = GlobalRequest::pass_floor(group, me, to);
                submitted.push((gateway.submit(pass).unwrap(), pass));
            }
            let release = GlobalRequest::release_floor(group, me);
            submitted.push((gateway.submit(release).unwrap(), release));
        }
    }
    // Exactly one decision per submission, each tagged with a submitted id.
    let mut by_seq: std::collections::BTreeMap<u64, Decision> = std::collections::BTreeMap::new();
    for _ in 0..submitted.len() {
        let decision = gateway.recv_decision().unwrap();
        assert!(
            by_seq.insert(decision.seq, decision).is_none(),
            "one decision per request id"
        );
    }
    assert!(
        gateway.try_recv_decision().is_none(),
        "no stray decisions on this gateway"
    );
    assert_eq!(by_seq.len(), submitted.len());

    // Inject retries: every 5th request is resubmitted under its original
    // id, as a gateway would after losing the decision. A retry refused
    // because the victim shard is mid-crash is itself retried — exactly the
    // production retry loop — until the standby answers.
    let mut replays = 0;
    for (seq, request) in submitted.iter().step_by(5) {
        let retry = loop {
            gateway.resubmit(*seq, *request).unwrap();
            let retry = gateway.recv_decision().unwrap();
            assert_eq!(retry.seq, *seq);
            if !matches!(retry.outcome, Err(dmps_cluster::ClusterError::ShardDown(_))) {
                break retry;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let original = &by_seq[seq];
        if original.outcome.is_ok() {
            // Applied once already: the retry must replay the journaled
            // decision, not re-apply the event.
            assert!(retry.replayed, "retry of applied request {seq} replays");
            assert_eq!(retry.outcome, original.outcome);
            replays += 1;
        }
    }
    (
        submitted
            .into_iter()
            .map(|(seq, request)| {
                let decision = by_seq.remove(&seq).unwrap();
                (seq, request, decision)
            })
            .collect(),
        replays,
    )
}

#[test]
fn concurrent_gateway_storms_preserve_invariants_and_exactly_once() {
    let (mut cluster, groups, rosters) = build();
    let victim = ShardId(0);
    let barrier = Arc::new(Barrier::new(GATEWAYS + 1));
    let results: Vec<StormResult> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..GATEWAYS {
            let gateway = cluster.gateway();
            let barrier = barrier.clone();
            let groups = &groups;
            let rosters = &rosters;
            handles.push(scope.spawn(move || {
                barrier.wait();
                storm(&gateway, thread, groups, rosters)
            }));
        }
        // Crash and recover one shard while the storm is in flight, so some
        // requests are refused with ShardDown and must be retried.
        barrier.wait();
        std::thread::sleep(Duration::from_millis(5));
        cluster.crash_shard(victim);
        std::thread::sleep(Duration::from_millis(10));
        cluster.recover_shard(victim).unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Cluster-unique ids: no two submissions (across all gateways) shared one.
    let mut all_seqs: Vec<u64> = results
        .iter()
        .flat_map(|(records, _)| records.iter().map(|(seq, ..)| *seq))
        .collect();
    let total = all_seqs.len();
    all_seqs.sort_unstable();
    all_seqs.dedup();
    assert_eq!(all_seqs.len(), total, "request ids are cluster-unique");
    let expected: usize = (0..GATEWAYS)
        .map(|t| {
            let pass_rounds = (0..ROUNDS).filter(|r| r % 3 == t % 3).count();
            ROUNDS * GROUPS * 2 + pass_rounds * GROUPS
        })
        .sum();
    assert_eq!(total, expected);
    let total_replays: usize = results.iter().map(|(_, replays)| *replays).sum();
    assert!(
        total_replays > 0,
        "injected retries must exercise the dedup window"
    );

    // Requests refused while the victim shard was down apply cleanly (and
    // freshly — they were never applied) once retried after recovery.
    let retry_gateway = cluster.gateway();
    let mut down_retries = 0;
    for (seq, request, decision) in results.iter().flat_map(|(records, _)| records.iter()) {
        if matches!(
            decision.outcome,
            Err(dmps_cluster::ClusterError::ShardDown(_))
        ) {
            retry_gateway.resubmit(*seq, *request).unwrap();
            let retry = retry_gateway.recv_decision().unwrap();
            assert_eq!(retry.seq, *seq);
            assert!(
                !matches!(retry.outcome, Err(dmps_cluster::ClusterError::ShardDown(_))),
                "retry after recovery must reach the shard"
            );
            // `retry.replayed` may be either way here: the storm's injected
            // retry of the same id may itself have landed after recovery and
            // applied the request; this retry then replays it — still
            // exactly-once.
            down_retries += 1;
        }
    }
    // The interleaving decides how many requests hit the down window (often
    // zero on a fast machine); whatever happened, state must be sound.
    let _ = down_retries;

    // Every shard satisfies the floor invariants after the storm.
    cluster.check_invariants().unwrap();
    for s in 0..SHARDS {
        cluster.arbiter(ShardId(s)).check_invariants().unwrap();
    }
    // Every group still has a coherent token: at most one holder, and the
    // holder is a member of the group.
    for &g in &groups {
        let placement = cluster.placement(g).unwrap();
        let arbiter = cluster.arbiter(placement.shard);
        if let Some(holder) = arbiter.token(placement.local).unwrap().holder() {
            assert!(arbiter.group(placement.local).unwrap().contains(holder));
        }
    }
}

#[test]
fn control_plane_churn_races_ingest_safely() {
    // One thread storms floor requests while others churn the directory
    // (new groups, new members, joins, cross-shard invitations). The striped
    // directory must keep every path consistent without a global lock.
    let (cluster, groups, rosters) = build();
    let churners = 3;
    let created = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..churners {
            let gateway = cluster.gateway();
            let created = created.clone();
            let groups = &groups;
            let rosters = &rosters;
            scope.spawn(move || {
                for i in 0..60 {
                    let gid = gateway
                        .create_group(format!("breakout-{t}-{i}"), FcmMode::GroupDiscussion)
                        .unwrap();
                    let m = gateway
                        .register_member(Member::new(format!("guest-{t}-{i}"), Role::Participant));
                    gateway.join_group(gid, m).unwrap();
                    created.fetch_add(1, Ordering::Relaxed);
                    // Cross-shard invitation churn against the shared groups.
                    let parent = groups[i % groups.len()];
                    let from = rosters[i % groups.len()][t % MEMBERS];
                    let to = rosters[i % groups.len()][(t + 1) % MEMBERS];
                    let (_, inv) = gateway
                        .invite(parent, from, to, FcmMode::DirectContact, None)
                        .unwrap();
                    gateway.respond_invitation(inv, to, i % 2 == 0).unwrap();
                }
            });
        }
        let gateway = cluster.gateway();
        let groups = &groups;
        let rosters = &rosters;
        scope.spawn(move || {
            for round in 0..120 {
                for (gi, &group) in groups.iter().enumerate() {
                    let me = rosters[gi][round % MEMBERS];
                    gateway.submit(GlobalRequest::speak(group, me)).unwrap();
                    gateway
                        .submit(GlobalRequest::release_floor(group, me))
                        .unwrap();
                }
            }
            for _ in 0..(120 * groups.len() * 2) {
                gateway.recv_decision().unwrap();
            }
        });
    });
    assert_eq!(created.load(Ordering::Relaxed), churners * 60);
    assert_eq!(cluster.group_count(), GROUPS + churners * 60 * 2);
    cluster.check_invariants().unwrap();
    for s in 0..SHARDS {
        cluster.arbiter(ShardId(s)).check_invariants().unwrap();
    }
}
