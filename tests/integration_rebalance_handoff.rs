//! Live migration of active groups: the two-phase token handoff, end to end.
//!
//! The acceptance properties of the `rebalance_active` surface:
//!
//! * a group whose token is **held** (and whose queue is non-empty) migrates
//!   shards with no lost or duplicated decision;
//! * `FloorArbiter::check_invariants` passes on source and destination after
//!   every phase;
//! * a seeded mid-handoff crash of either side recovers deterministically;
//! * `RebalanceReport::deferred` is empty after `rebalance_active` on a busy
//!   cluster.

use std::collections::BTreeSet;
use std::time::Duration;

use dmps_cluster::{
    Cluster, ClusterConfig, ClusterSim, Decision, GlobalGroupId, GlobalMemberId, GlobalRequest,
    SessionOp, ShardId,
};
use dmps_floor::{ArbitrationOutcome, FcmMode, Member, Role};
use dmps_simnet::{Link, SimTime};

const SHARDS: usize = 4;
const GROUPS: usize = 96;
const MEMBERS_PER_GROUP: usize = 3;

/// A decision journaled before the migration: `(request id, request, the
/// original decision)`.
type JournaledDecision = (u64, GlobalRequest, Decision);

/// A campus where every group is floor-active: member 0 holds the token,
/// members 1.. queue behind it, and a chat line is journaled per group.
fn busy_campus(
    shards: usize,
    groups: usize,
) -> (
    Cluster,
    Vec<GlobalGroupId>,
    Vec<Vec<GlobalMemberId>>,
    Vec<JournaledDecision>,
) {
    let mut cluster = Cluster::new(ClusterConfig::with_shards(shards));
    let mut gids = Vec::new();
    let mut rosters = Vec::new();
    for g in 0..groups {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .unwrap();
        let mut roster = Vec::new();
        for m in 0..MEMBERS_PER_GROUP {
            let role = if m == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
            cluster.join_group(gid, member).unwrap();
            roster.push(member);
        }
        gids.push(gid);
        rosters.push(roster);
    }
    // Token state + journaled decisions: every member speaks, so member 0
    // holds and the rest queue; the decisions land in the dedup journals.
    let mut journaled = Vec::new();
    for (g, roster) in gids.iter().zip(&rosters) {
        for &m in roster {
            let speak = GlobalRequest::speak(*g, m);
            let seq = cluster.submit(speak).unwrap();
            journaled.push((seq, speak));
        }
        cluster
            .session(SessionOp::chat(*g, roster[0], "pre-handoff line"))
            .unwrap();
    }
    let decisions: std::collections::BTreeMap<u64, Decision> =
        cluster.flush().into_iter().map(|d| (d.seq, d)).collect();
    let journaled = journaled
        .into_iter()
        .map(|(seq, req)| (seq, req, decisions[&seq].clone()))
        .collect();
    (cluster, gids, rosters, journaled)
}

fn total_granted(cluster: &Cluster) -> u64 {
    cluster
        .shard_stats()
        .iter()
        .map(|(_, stats)| stats.granted)
        .sum()
}

#[test]
fn busy_cluster_drains_deferred_with_exact_accounting() {
    let (mut cluster, gids, rosters, journaled) = busy_campus(SHARDS, GROUPS);
    let new = cluster.add_shard();
    let granted_before = total_granted(&cluster);

    // The idle pass can move nothing: every group is token-pinned.
    let idle_pass = cluster.rebalance_idle().unwrap();
    assert!(idle_pass.migrated.is_empty(), "every group is floor-active");
    assert!(!idle_pass.deferred.is_empty(), "scale-out displaces groups");

    // The live pass drains the deferred list completely.
    let live_pass = cluster.rebalance_active().unwrap();
    assert_eq!(live_pass.migrated, idle_pass.deferred);
    assert!(
        live_pass.deferred.is_empty(),
        "deferred must be empty after rebalance_active on a healthy cluster"
    );
    cluster.check_invariants().unwrap();

    // No decision was lost or duplicated by the migration: arbitration
    // counters are untouched (the handoff moves state via logged install
    // events, not by re-arbitrating), and every pre-handoff request id still
    // replays its original decision from the migrated journal slice.
    assert_eq!(total_granted(&cluster), granted_before);
    let gateway = cluster.gateway();
    let migrated: BTreeSet<GlobalGroupId> = live_pass.migrated.iter().copied().collect();
    for (seq, request, original) in &journaled {
        if !migrated.contains(&request.group) {
            continue;
        }
        gateway.resubmit(*seq, *request).unwrap();
        let retry = gateway.recv_decision().unwrap();
        assert_eq!(retry.seq, *seq);
        assert!(
            retry.replayed,
            "journal slice must have moved with {}",
            request.group
        );
        assert_eq!(retry.outcome, original.outcome);
    }
    assert_eq!(total_granted(&cluster), granted_before, "replays only");

    // Token state survived intact: the holder still holds on the new shard,
    // the queue kept FIFO order, and releasing promotes the next member.
    for g in &live_pass.migrated {
        let roster = &rosters[g.0 as usize];
        let placement = cluster.placement(*g).unwrap();
        assert_eq!(placement.shard, new);
        let token = cluster.arbiter(new).token(placement.local).unwrap().clone();
        let locals: Vec<_> = roster
            .iter()
            .map(|&m| cluster.local_member(m, new).unwrap())
            .collect();
        assert_eq!(token.holder(), Some(locals[0]));
        assert_eq!(token.queue().collect::<Vec<_>>(), locals[1..].to_vec());
        let next = cluster
            .request(GlobalRequest::release_floor(*g, roster[0]))
            .unwrap();
        assert!(
            matches!(next, ArbitrationOutcome::Granted { ref speakers, .. } if *speakers == vec![locals[1]]),
            "queued member must be promoted on the destination"
        );
        // The session content followed the group.
        assert_eq!(cluster.session_view(*g).unwrap().chat.len(), 1);
    }
    // Nothing was migrated twice and nothing displaced was left behind.
    let displaced: BTreeSet<GlobalGroupId> = gids
        .iter()
        .filter(|g| cluster.placement(**g).unwrap().shard == new)
        .copied()
        .collect();
    assert_eq!(displaced, migrated);
    cluster.check_invariants().unwrap();
}

#[test]
fn invariants_hold_on_both_shards_after_every_phase() {
    let (mut cluster, _gids, rosters, _) = busy_campus(2, 24);
    let new = cluster.add_shard();
    // Every group is busy, so the idle pass migrates nothing — its deferred
    // list is exactly the ring-displaced set; hand off the first of them.
    let displaced = cluster.rebalance_idle().unwrap().deferred;
    let group = *displaced.first().expect("scale-out displaces some group");
    let roster = &rosters[group.0 as usize];

    // Phase 1: frozen on the source, invariants green everywhere.
    let ticket = cluster.handoff_prepare(group, None).unwrap();
    cluster.check_invariants().unwrap();
    assert_eq!(ticket.token_holder(), Some(roster[0]));
    assert_eq!(ticket.token_queue(), &roster[1..]);
    assert!(ticket.pinned_seq() > 0);

    // Abort: invariants green, group serves on the source again.
    cluster.handoff_abort(ticket).unwrap();
    cluster.check_invariants().unwrap();
    let outcome = cluster
        .request(GlobalRequest::speak(group, roster[0]))
        .unwrap();
    assert!(outcome.is_granted(), "holder still holds after abort");

    // Prepare → commit: invariants green after each phase, on every shard.
    let ticket = cluster.handoff_prepare(group, None).unwrap();
    cluster.check_invariants().unwrap();
    cluster.handoff_commit(ticket).unwrap();
    cluster.check_invariants().unwrap();
    assert_eq!(cluster.placement(group).unwrap().shard, new);
    cluster.check_invariants().unwrap();
}

/// The shard state fingerprint used for determinism comparisons.
fn fingerprint(sim: &ClusterSim, shard: ShardId) -> String {
    dmps_wire::to_string(&sim.cluster().arbiter(shard))
}

/// Seeded sim: 2 shards + 1 added mid-run, one busy group handed off under
/// traffic, with a crash of `victim` landing between prepare and commit.
fn crash_mid_handoff(seed: u64, crash_source: bool) -> (Vec<String>, usize, u64, u64, ShardId) {
    let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), seed, Link::lan());
    sim.enable_retransmission(Duration::from_millis(40));
    let g = sim
        .cluster_mut()
        .create_group("lecture", FcmMode::EqualControl)
        .unwrap();
    let source = sim.cluster().placement(g).unwrap().shard;
    let speakers: Vec<_> = (0..4)
        .map(|i| {
            let m = sim
                .cluster_mut()
                .register_member(Member::new(format!("m{i}"), Role::Participant));
            sim.cluster_mut().join_group(g, m).unwrap();
            m
        })
        .collect();
    let target = sim.add_shard(Link::lan());
    for i in 0..50u64 {
        sim.submit_at(
            SimTime::from_millis(40 * i),
            GlobalRequest::speak(g, speakers[(i % 4) as usize]),
        )
        .unwrap();
    }
    sim.schedule_handoff(
        SimTime::from_millis(800),
        g,
        Some(target),
        Duration::from_millis(400),
    );
    let victim = if crash_source { source } else { target };
    sim.schedule_crash(
        SimTime::from_millis(900),
        victim,
        Duration::from_millis(600),
    );
    sim.run_to_idle();
    sim.cluster().check_invariants().unwrap();
    let shards = (0..sim.cluster().shard_count())
        .map(|s| fingerprint(&sim, ShardId(s)))
        .collect();
    let owner = sim.cluster().placement(g).unwrap().shard;
    (
        shards,
        sim.decisions().len(),
        sim.handoffs_committed(),
        sim.handoffs_aborted(),
        owner,
    )
}

#[test]
fn mid_handoff_source_crash_is_deterministic_and_consistent() {
    let (shards, decisions, committed, aborted, owner) = crash_mid_handoff(23, true);
    // The commit ran while the source was down: the destination serves.
    assert_eq!(committed, 1);
    assert_eq!(aborted, 0);
    assert_eq!(owner, ShardId(2));
    assert_eq!(decisions, 50, "every request answered exactly once");
    // Bit-for-bit determinism across reruns of the same seed.
    let rerun = crash_mid_handoff(23, true);
    assert_eq!((shards, decisions, committed, aborted, owner), rerun);
}

#[test]
fn mid_handoff_destination_crash_is_deterministic_and_consistent() {
    let (shards, decisions, committed, aborted, owner) = crash_mid_handoff(23, false);
    // The destination was down at commit time: the handoff aborted and the
    // source kept serving.
    assert_eq!(committed, 0);
    assert_eq!(aborted, 1);
    assert!(owner.0 < 2, "the original source kept the group");
    assert_eq!(decisions, 50, "every request answered exactly once");
    let rerun = crash_mid_handoff(23, false);
    assert_eq!((shards, decisions, committed, aborted, owner), rerun);
}
