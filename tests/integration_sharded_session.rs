//! Integration: a complete DMPS presentation session — floor control, chat,
//! whiteboard, annotations, a Group Discussion sub-session and synchronized
//! playback — runs sharded over `dmps-cluster`, survives a mid-session shard
//! crash by snapshot+replay, and preserves the floor invariants on every
//! shard.

use std::time::Duration;

use dmps::{ClusterSession, ClusterSessionConfig};
use dmps_cluster::ClusterConfig;
use dmps_floor::{FcmMode, Role};
use dmps_simnet::SimTime;

fn lecture(seed: u64) -> ClusterSession {
    // A low snapshot cadence makes the standby's recovery exercise both
    // halves of the durability machinery: snapshot restore *and* log-suffix
    // replay.
    let mut cluster = ClusterConfig::with_shards(4);
    cluster.snapshot_every = 8;
    // Pin the event cadence: the default byte cadence would never fire on
    // a session this small, and the test needs a checkpoint before the
    // crash.
    cluster.snapshot_every_bytes = 0;
    ClusterSession::new(
        ClusterSessionConfig::new(seed, FcmMode::EqualControl).with_cluster(cluster),
    )
}

#[test]
fn full_session_runs_sharded_with_mid_session_crash() {
    let mut session = lecture(42);
    let teacher = session.add_participant("teacher", Role::Chair).unwrap();
    let students: Vec<usize> = (0..5)
        .map(|i| {
            session
                .add_participant(format!("student-{i}"), Role::Participant)
                .unwrap()
        })
        .collect();

    // Act 1 — before the crash: the teacher takes the floor, uses every
    // communication window, and schedules the synchronized playback.
    session
        .request_floor_at(SimTime::from_millis(10), teacher)
        .unwrap();
    session
        .chat_at(SimTime::from_millis(100), teacher, "welcome to the lecture")
        .unwrap();
    session
        .whiteboard_at(SimTime::from_millis(200), teacher, "axes(0,0,10,10)")
        .unwrap();
    session
        .annotate_at(SimTime::from_millis(300), teacher, "see equation 3")
        .unwrap();
    session
        .schedule_playback_at(
            SimTime::from_millis(400),
            teacher,
            "intro-video",
            SimTime::from_secs(6),
        )
        .unwrap();
    // A student chats while the teacher holds the floor: floor-denied, and
    // the denial does not pollute the session log.
    session
        .chat_at(SimTime::from_millis(500), students[0], "premature")
        .unwrap();

    // A Group Discussion breakout spawns (placed by the ring, typically on a
    // different shard than the main group) and carries private chat.
    let sub = session
        .spawn_subsession(teacher, students[1], FcmMode::GroupDiscussion)
        .unwrap();
    session
        .chat_in_at(
            SimTime::from_millis(600),
            sub,
            students[1],
            "quick question",
        )
        .unwrap();
    session
        .chat_in_at(SimTime::from_millis(700), sub, teacher, "good catch")
        .unwrap();

    // Mid-session, the host serving the main group's shard crashes; its
    // standby completes snapshot-plus-log-replay recovery 400 ms later.
    let main = session.main_group();
    let victim = session.shard_of(main).unwrap();
    session.schedule_crash(SimTime::from_secs(1), victim, Duration::from_millis(400));

    // Act 2 — traffic spanning the outage: these requests die with the host
    // and are retransmitted (under their original ids) after failover.
    for (i, &s) in students.iter().enumerate() {
        session
            .request_floor_at(SimTime::from_millis(1_050 + 40 * i as u64), s)
            .unwrap();
    }
    session
        .release_floor_at(SimTime::from_secs(2), teacher)
        .unwrap();
    // After the release exactly one student holds the floor; everybody
    // tries to chat, and floor control lets exactly that one line through.
    for (i, &s) in students.iter().enumerate() {
        session
            .chat_at(
                SimTime::from_millis(2_500 + 50 * i as u64),
                s,
                format!("my turn now ({i})"),
            )
            .unwrap();
    }
    session.run_to_idle();

    // The crash happened and was healed by the standby.
    assert_eq!(session.failovers(), 1);
    assert!(session.retransmits() > 0, "the crash must strand traffic");
    let shard_view = session.sim().cluster().shard_view(victim);
    assert_eq!(shard_view.recoveries, 1, "standby recovery ran");
    assert!(
        shard_view.has_snapshot,
        "recovery restored a cadence snapshot before replaying the log"
    );

    // The floor invariants hold on every shard, and the directory is sound.
    session.check_invariants().unwrap();

    // The pre-crash session state survived snapshot+replay: every window, in
    // order, plus the durable playback schedule.
    let view = session.session_view(main).unwrap();
    assert_eq!(view.chat.len(), 2, "teacher's line + exactly one student");
    assert_eq!(view.chat[0].1, "welcome to the lecture");
    assert!(view.chat[1].1.starts_with("my turn now"));
    assert_eq!(view.whiteboard.len(), 1);
    assert_eq!(view.annotations.len(), 1);
    assert_eq!(
        view.media,
        vec![("intro-video".to_string(), SimTime::from_secs(6))]
    );

    // Synchronized playback: one record per member, all starting at the same
    // global instant.
    let playbacks = session.playbacks(main).unwrap();
    assert_eq!(playbacks.len(), 6);
    assert!(playbacks
        .iter()
        .all(|(_, media, start)| media == "intro-video" && *start == SimTime::from_secs(6)));

    // The sub-session's private chat is intact on its own shard.
    let sub_view = session.session_view(sub).unwrap();
    assert_eq!(sub_view.chat.len(), 2);
    assert_eq!(sub_view.chat[0].1, "quick question");

    // Exactly-once accounting: every submission — floor and session — was
    // answered exactly once despite drops and retries.
    let mut floor_seqs: Vec<u64> = session.decisions().iter().map(|(s, ..)| *s).collect();
    floor_seqs.sort_unstable();
    floor_seqs.dedup();
    assert_eq!(floor_seqs.len(), 7, "1 + 5 speaks + 1 release");
    let mut ack_seqs: Vec<u64> = session.session_acks().iter().map(|(s, ..)| *s).collect();
    ack_seqs.sort_unstable();
    ack_seqs.dedup();
    assert_eq!(ack_seqs.len(), 12, "5 main ops + 2 sub ops + 5 chat races");
    // Of the five post-release chat attempts, exactly one was delivered.
    let delivered_races = session
        .session_acks()
        .iter()
        .filter(|(_, g, o)| *g == main && o.is_delivered())
        .count();
    assert_eq!(delivered_races, 5, "welcome + wb + annot + media + 1 race");
}

#[test]
fn sharded_sessions_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut session = lecture(seed);
        let teacher = session.add_participant("teacher", Role::Chair).unwrap();
        let alice = session.add_participant("alice", Role::Participant).unwrap();
        session
            .request_floor_at(SimTime::from_millis(10), teacher)
            .unwrap();
        session
            .chat_at(SimTime::from_millis(50), teacher, "hello")
            .unwrap();
        session
            .chat_at(SimTime::from_millis(60), alice, "blocked")
            .unwrap();
        let victim = session.shard_of(session.main_group()).unwrap();
        session.schedule_crash(
            SimTime::from_millis(100),
            victim,
            Duration::from_millis(200),
        );
        session
            .release_floor_at(SimTime::from_millis(400), teacher)
            .unwrap();
        session.run_to_idle();
        session.check_invariants().unwrap();
        (
            session.session_view(session.main_group()).unwrap(),
            session.decisions().to_vec(),
            session.session_acks().to_vec(),
            session.retransmits(),
        )
    };
    assert_eq!(run(2024), run(2024), "identical seeds reproduce exactly");
}
