//! Integration: the four floor control modes exercised end to end over a
//! distributed session (server + clients + network), not just against the
//! arbiter in isolation.

use std::time::Duration;

use dmps::workload::WorkloadAction;
use dmps::{Session, SessionConfig, Workload, WorkloadKind};
use dmps_floor::{FcmMode, FloorRequest, Member, Resource, Role};
use dmps_simnet::{Link, LocalClock};

fn session_with(mode: FcmMode, students: usize) -> (Session, usize, Vec<usize>) {
    let mut session = Session::new(SessionConfig::new(33, mode));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let student_idx: Vec<usize> = (0..students)
        .map(|i| {
            session.add_client(
                format!("student-{i}"),
                Role::Participant,
                Link::dsl(),
                LocalClock::new(((i as f64) - 1.0) * 100.0, 0),
            )
        })
        .collect();
    session.pump();
    (session, teacher, student_idx)
}

#[test]
fn free_access_lets_everyone_deliver() {
    let (mut session, teacher, students) = session_with(FcmMode::FreeAccess, 3);
    session.send_chat(teacher, "anyone can talk");
    for &s in &students {
        session.send_chat(s, "indeed");
    }
    session.pump();
    // Every client received every other client's messages.
    for &s in &students {
        assert_eq!(session.client(s).message_window().len(), 3);
        assert_eq!(session.client(s).rejections(), 0);
    }
    assert_eq!(session.server().chat_log().len(), 4);
    assert_eq!(session.server().rejected_deliveries(), 0);
}

#[test]
fn equal_control_serializes_and_passes_the_floor_fairly() {
    let (mut session, teacher, students) = session_with(FcmMode::EqualControl, 3);
    // Everyone requests the floor; the first requester gets it, the rest queue.
    session.request_floor(teacher);
    session.pump();
    for &s in &students {
        session.request_floor(s);
        session.pump();
    }
    assert!(session.client(teacher).may_speak());
    for &s in &students {
        assert!(session.client(s).queued_behind().is_some());
    }
    // The floor circulates in FIFO order as each holder releases.
    session.release_floor(teacher);
    session.pump();
    assert!(session.client(students[0]).may_speak());
    session.release_floor(students[0]);
    session.pump();
    assert!(session.client(students[1]).may_speak());
    // A non-holder's chat is rejected, the holder's is delivered.
    session.send_chat(students[2], "not my turn yet");
    session.send_chat(students[1], "my turn");
    session.pump();
    assert_eq!(session.client(students[2]).rejections(), 1);
    assert!(session
        .client(teacher)
        .message_window()
        .iter()
        .any(|l| l.contains("my turn")));
    assert!(!session
        .client(teacher)
        .message_window()
        .iter()
        .any(|l| l.contains("not my turn")));
}

#[test]
fn group_discussion_and_direct_contact_stay_private() {
    // Sub-group traffic is arbitrated by the server's arbiter directly; this
    // test drives the arbiter owned by a live session.
    let (mut session, _teacher, students) = session_with(FcmMode::FreeAccess, 3);
    let group = session.server().group();
    let m0 = session.member_of(students[0]).unwrap();
    let m1 = session.member_of(students[1]).unwrap();
    let m2 = session.member_of(students[2]).unwrap();

    let arbiter = session.server_mut().arbiter_mut();
    let (sub, inv) = arbiter
        .invite(group, m0, m1, FcmMode::GroupDiscussion)
        .unwrap();
    arbiter.respond_invitation(inv, m1, true).unwrap();
    let outcome = arbiter.arbitrate(&FloorRequest::speak(sub, m0)).unwrap();
    let speakers = match outcome {
        dmps_floor::ArbitrationOutcome::Granted { speakers, .. } => speakers,
        other => panic!("expected grant, got {other:?}"),
    };
    assert!(speakers.contains(&m0) && speakers.contains(&m1));
    assert!(
        !speakers.contains(&m2),
        "non-invited member must stay outside"
    );

    let (pair, inv) = arbiter
        .invite(group, m1, m2, FcmMode::DirectContact)
        .unwrap();
    arbiter.respond_invitation(inv, m2, true).unwrap();
    let outcome = arbiter
        .arbitrate(&FloorRequest::direct_contact(pair, m1, m2))
        .unwrap();
    assert!(outcome.is_granted());
}

#[test]
fn degraded_resources_suspend_students_not_the_teacher() {
    let (mut session, teacher, students) = session_with(FcmMode::FreeAccess, 4);
    let teacher_member = session.member_of(teacher).unwrap();
    session
        .server_mut()
        .arbiter_mut()
        .set_resource(Resource::new(0.3, 1.0, 1.0));
    let group = session.server().group();
    let outcome = session
        .server_mut()
        .arbiter_mut()
        .arbitrate(&FloorRequest::speak(group, teacher_member))
        .unwrap();
    assert!(outcome.is_granted());
    assert!(!outcome.suspensions().is_empty());
    assert!(outcome
        .suspensions()
        .iter()
        .all(|s| s.member != teacher_member));
    // All suspended members are students.
    let student_members: Vec<_> = students
        .iter()
        .map(|&s| session.member_of(s).unwrap())
        .collect();
    assert!(outcome
        .suspensions()
        .iter()
        .all(|s| student_members.contains(&s.member)));
}

#[test]
fn critical_resources_abort_and_recovery_restores_service() {
    let mut arbiter = dmps_floor::FloorArbiter::with_defaults();
    let group = arbiter.create_group("session", FcmMode::FreeAccess);
    let m = arbiter
        .add_member(group, Member::new("alice", Role::Participant))
        .unwrap();
    arbiter.set_resource(Resource::new(0.05, 0.05, 0.05));
    let outcome = arbiter.arbitrate(&FloorRequest::speak(group, m)).unwrap();
    assert!(matches!(
        outcome,
        dmps_floor::ArbitrationOutcome::Aborted { .. }
    ));
    arbiter.set_resource(Resource::full());
    let outcome = arbiter.arbitrate(&FloorRequest::speak(group, m)).unwrap();
    assert!(outcome.is_granted());
}

#[test]
fn scripted_workloads_run_to_completion_over_a_session() {
    for (kind, mode) in [
        (WorkloadKind::Lecture, FcmMode::FreeAccess),
        (WorkloadKind::QuestionAnswer, FcmMode::EqualControl),
        (WorkloadKind::Discussion, FcmMode::FreeAccess),
    ] {
        let clients = 4usize;
        let (mut session, teacher, students) = session_with(mode, clients - 1);
        let indices: Vec<usize> = std::iter::once(teacher).chain(students).collect();
        let workload = Workload::generate(kind, clients, Duration::from_secs(20), 2.0, 5);
        assert!(!workload.is_empty());
        for event in &workload.events {
            let idx = indices[event.client];
            match &event.action {
                WorkloadAction::RequestFloor => session.request_floor(idx),
                WorkloadAction::ReleaseFloor => session.release_floor(idx),
                WorkloadAction::Chat(text) => session.send_chat(idx, text.clone()),
                WorkloadAction::Whiteboard(s) => session.send_whiteboard(idx, s.clone()),
                WorkloadAction::Annotation(t) => session.send_annotation(idx, t.clone()),
            }
            session.pump();
        }
        let stats = session.server().arbiter().stats();
        let total_content = session.server().chat_log().len()
            + session.server().whiteboard_log().len()
            + session.server().annotation_log().len()
            + session.server().rejected_deliveries() as usize;
        assert!(
            total_content > 0 || stats.granted + stats.queued + stats.denied > 0,
            "workload {kind:?} must produce observable activity"
        );
    }
}
