//! Integration: the centralized global clock keeps distributed playback
//! synchronous across clients with drifting clocks and asymmetric links —
//! the paper's Section 3 claim, measured end to end.

use std::time::Duration;

use dmps::{PresentationDriver, Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
use dmps_simnet::{Link, LocalClock};

fn presentation(segments: usize) -> PresentationDocument {
    let mut doc = PresentationDocument::new("clock-sync-presentation");
    let mut prev = None;
    for i in 0..segments {
        let seg = doc.add_object(MediaObject::new(
            format!("seg-{i}"),
            MediaKind::Video,
            Duration::from_secs(6),
        ));
        if let Some(p) = prev {
            doc.relate(p, TemporalRelation::Meets, seg).unwrap();
        }
        prev = Some(seg);
    }
    doc
}

fn run(admission: bool, drift_offsets_ms: &[i64], seed: u64) -> dmps::PlaybackSkewReport {
    let mut config = SessionConfig::new(seed, FcmMode::FreeAccess);
    if !admission {
        config = config.without_admission_control();
    }
    let mut session = Session::new(config);
    session.add_client("reference", Role::Chair, Link::lan(), LocalClock::perfect());
    for (i, &offset_ms) in drift_offsets_ms.iter().enumerate() {
        let link = if i % 2 == 0 { Link::dsl() } else { Link::wan() };
        session.add_client(
            format!("client-{i}"),
            Role::Participant,
            link,
            LocalClock::new(offset_ms as f64 * 5.0, offset_ms * 1_000_000),
        );
    }
    session.pump();
    let driver = PresentationDriver::from_document(&presentation(4)).unwrap();
    let start = session.now() + Duration::from_secs(5);
    driver.run(&mut session, start, Duration::from_secs(2))
}

#[test]
fn admission_control_bounds_skew_despite_large_clock_offsets() {
    let offsets = [40i64, -35, 25, -50];
    let report = run(true, &offsets, 100);
    assert_eq!(report.overall.samples, 4 * 5, "4 segments x 5 clients");
    // The admission rule bounds skew by the clock-sync estimation error
    // (≈ rtt/2 asymmetry), far below the tens-of-milliseconds clock offsets.
    assert!(
        report.overall.max < Duration::from_millis(60),
        "max skew {:?} should be bounded by the sync error",
        report.overall.max
    );
    assert!(report.admission_control);
}

#[test]
fn without_admission_control_skew_is_dominated_by_lead_time_and_offsets() {
    let offsets = [40i64, -35, 25, -50];
    let with = run(true, &offsets, 200);
    let without = run(false, &offsets, 200);
    assert!(
        without.overall.max > with.overall.max * 4,
        "without admission ({:?}) should be much worse than with ({:?})",
        without.overall.max,
        with.overall.max
    );
}

#[test]
fn skew_grows_with_link_latency_when_uncontrolled_but_not_when_controlled() {
    // One client on a fast link, one on a very slow link.
    let build = |admission: bool, slow_latency_ms: u64| {
        let mut config = SessionConfig::new(7, FcmMode::FreeAccess);
        if !admission {
            config = config.without_admission_control();
        }
        let mut session = Session::new(config);
        session.add_client("near", Role::Chair, Link::lan(), LocalClock::perfect());
        session.add_client(
            "far",
            Role::Participant,
            Link::lan().with_latency(Duration::from_millis(slow_latency_ms)),
            LocalClock::perfect(),
        );
        session.pump();
        let driver = PresentationDriver::from_document(&presentation(2)).unwrap();
        let start = session.now() + Duration::from_secs(5);
        driver.run(&mut session, start, Duration::from_secs(2))
    };
    let uncontrolled_fast = build(false, 20);
    let uncontrolled_slow = build(false, 400);
    assert!(
        uncontrolled_slow.overall.spread > uncontrolled_fast.overall.spread,
        "without the rule, skew tracks the link asymmetry"
    );
    let controlled_slow = build(true, 400);
    assert!(
        controlled_slow.overall.max < Duration::from_millis(60),
        "with the rule, even a 400 ms link stays synchronous: {:?}",
        controlled_slow.overall.max
    );
}

#[test]
fn repeated_sync_rounds_keep_clients_synchronized() {
    let mut session = Session::new(SessionConfig::new(3, FcmMode::FreeAccess));
    let drifty = session.add_client(
        "drifty",
        Role::Participant,
        Link::dsl(),
        LocalClock::new(800.0, 10_000_000),
    );
    session.pump();
    let first_offset = session.client(drifty).sync().estimated_offset_nanos();
    // Let time pass so the drift accumulates, then re-synchronize.
    let later = session.now() + Duration::from_secs(120);
    session.run_until(later);
    session.sync_clock(drifty);
    session.pump();
    let second_offset = session.client(drifty).sync().estimated_offset_nanos();
    assert_ne!(
        first_offset, second_offset,
        "the new round must re-estimate the offset"
    );
    assert!(session.client(drifty).sync().rounds_completed() >= 2);
}
