//! Integration: fault injection — link failures, lossy links, and recovery —
//! reproducing the connection-status behaviour of Figure 3 and checking the
//! system degrades the way the paper describes.

use std::time::Duration;

use dmps::render::render_connection_lights;
use dmps::{Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_simnet::{DropReason, Link, LocalClock};

fn lecture_session(seed: u64) -> (Session, usize, usize, usize) {
    let mut session = Session::new(SessionConfig::new(seed, FcmMode::FreeAccess));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let alice = session.add_client(
        "alice",
        Role::Participant,
        Link::dsl(),
        LocalClock::perfect(),
    );
    let bob = session.add_client("bob", Role::Participant, Link::wan(), LocalClock::perfect());
    session.pump();
    (session, teacher, alice, bob)
}

#[test]
fn link_failure_turns_light_red_and_recovery_turns_it_green() {
    let (mut session, _teacher, alice, _bob) = lecture_session(1);
    let alice_member = session.member_of(alice).unwrap();
    let light_of = |session: &Session, member| {
        session
            .server()
            .connection_lights(session.now())
            .into_iter()
            .find(|(m, _)| *m == member)
            .map(|(_, green)| green)
            .unwrap()
    };
    assert!(
        light_of(&session, alice_member),
        "green right after joining"
    );

    // Figure 3c: the link drops, heartbeats stop, the light turns red.
    session.set_client_link_up(alice, false);
    let until = session.now() + Duration::from_secs(10);
    session.run_until(until);
    assert!(!light_of(&session, alice_member), "red after the failure");
    assert!(session
        .network()
        .dropped()
        .iter()
        .any(|d| d.reason == DropReason::LinkDown));

    // The teacher can see the status panel and identify the failed client.
    let panel = render_connection_lights(session.server(), session.now());
    assert!(panel.contains("RED"));
    assert!(panel.contains("GREEN"));

    // Recovery: the link comes back, heartbeats resume, the light goes green.
    session.set_client_link_up(alice, true);
    let until = session.now() + Duration::from_secs(10);
    session.run_until(until);
    assert!(
        light_of(&session, alice_member),
        "green again after recovery"
    );
}

#[test]
fn annotation_broadcast_during_failure_reaches_only_connected_clients() {
    let (mut session, teacher, alice, bob) = lecture_session(2);
    session.set_client_link_up(bob, false);
    session.send_annotation(teacher, "please read section 3.2");
    session.pump();
    assert_eq!(session.client(alice).annotations().len(), 1);
    assert_eq!(
        session.client(bob).annotations().len(),
        0,
        "the disconnected client missed the annotation"
    );
    // The drop is visible to the operator through the network's drop record.
    assert!(!session.network().dropped().is_empty());
}

#[test]
fn lossy_links_lose_some_content_but_the_session_survives() {
    let mut session = Session::new(SessionConfig::new(9, FcmMode::FreeAccess));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let flaky = session.add_client(
        "flaky",
        Role::Participant,
        Link::dsl().with_loss_rate(0.4),
        LocalClock::perfect(),
    );
    session.pump();
    // The flaky client may need several attempts to complete the join
    // handshake; keep nudging until it has a member id.
    let mut attempts = 0;
    while session.member_of(flaky).is_err() && attempts < 20 {
        session.sync_clock(teacher);
        let join = session.client(flaky).join_message();
        let host = session.client(flaky).host();
        let server = session.server().host();
        let size = join.size_bytes();
        let _ = session.network_mut().send(host, server, join, size);
        session.pump();
        attempts += 1;
    }
    assert!(
        session.member_of(flaky).is_ok(),
        "join should eventually succeed"
    );
    // Send a burst of teacher messages; some are lost, the rest arrive.
    for i in 0..50 {
        session.send_chat(teacher, format!("line-{i}"));
    }
    session.pump();
    let received = session.client(flaky).message_window().len();
    assert!(received > 0, "some messages must get through");
    assert!(received < 50, "a 40% lossy link must lose something");
    assert!(!session.network().dropped().is_empty());
}

#[test]
fn equal_control_token_survives_a_member_disconnect() {
    let mut session = Session::new(SessionConfig::new(4, FcmMode::EqualControl));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let alice = session.add_client(
        "alice",
        Role::Participant,
        Link::dsl(),
        LocalClock::perfect(),
    );
    session.pump();
    let alice_member = session.member_of(alice).unwrap();
    // Alice takes the floor, then her machine drops off the network.
    session.request_floor(alice);
    session.pump();
    assert!(session.client(alice).may_speak());
    session.set_client_link_up(alice, false);
    // The server-side group administration removes her, releasing the token.
    let group = session.server().group();
    session
        .server_mut()
        .arbiter_mut()
        .leave_group(group, alice_member)
        .unwrap();
    // The teacher can now take the floor.
    session.request_floor(teacher);
    session.pump();
    assert!(session.client(teacher).may_speak());
}
