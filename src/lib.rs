//! Umbrella crate for the DMPS reproduction workspace.
//!
//! The root package exists so the repository-level `examples/` and `tests/`
//! directories build against every sub-crate with plain `cargo build` /
//! `cargo test` from the repo root. The actual functionality lives in the
//! workspace crates:
//!
//! * [`dmps_media`] — media objects, temporal relations, QoS,
//! * [`dmps_petri`] — Petri-net substrate,
//! * [`dmps_simnet`] — deterministic network simulator,
//! * [`dmps_floor`] — the floor control mechanism,
//! * [`dmps_docpn`] — the DOCPN presentation model,
//! * [`dmps`] — server, clients and sessions,
//! * [`dmps_cluster`] — the sharded multi-arbiter control plane.

#![forbid(unsafe_code)]

pub use dmps;
pub use dmps_cluster;
pub use dmps_docpn;
pub use dmps_floor;
pub use dmps_media;
pub use dmps_petri;
pub use dmps_simnet;
