//! Property-based tests over the floor control mechanism.

use dmps_floor::arbiter::{ArbitrationOutcome, RequestKind};
use dmps_floor::suspend::{plan_suspensions, total_freed_kbps, SuspensionOrder};
use dmps_floor::{
    FcmMode, FloorArbiter, FloorRequest, FloorToken, Member, MemberId, Resource, Role,
};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = FcmMode> {
    prop_oneof![
        Just(FcmMode::FreeAccess),
        Just(FcmMode::EqualControl),
        Just(FcmMode::GroupDiscussion),
    ]
}

proptest! {
    /// Equal Control safety: at any point in an arbitrary request/release
    /// trace, at most one member holds the floor, and the holder is always a
    /// group member.
    #[test]
    fn equal_control_has_at_most_one_speaker(
        ops in proptest::collection::vec((0usize..6, proptest::bool::ANY), 1..80),
        students in 2usize..6,
    ) {
        let (mut arbiter, group, teacher, student_ids) =
            FloorArbiter::lecture(students, FcmMode::EqualControl);
        let mut all = vec![teacher];
        all.extend(student_ids.iter().copied());
        for (idx, release) in ops {
            let member = all[idx % all.len()];
            let request = if release {
                FloorRequest::release_floor(group, member)
            } else {
                FloorRequest::speak(group, member)
            };
            let outcome = arbiter.arbitrate(&request).unwrap();
            // Regardless of the outcome, the token invariant holds.
            let token = arbiter.token(group).unwrap();
            if let Some(holder) = token.holder() {
                prop_assert!(all.contains(&holder));
            }
            // Granted speak outcomes under equal control name exactly one
            // speaker (the holder), or the next holder after a release.
            if let ArbitrationOutcome::Granted { speakers, .. } = outcome {
                prop_assert!(speakers.len() <= 1);
            }
        }
    }

    /// Token fairness: with FIFO requests and releases, every member
    /// eventually gets the floor in request order.
    #[test]
    fn token_is_fifo(members in 2usize..12) {
        let mut token = FloorToken::new();
        let ids: Vec<MemberId> = (0..members).map(MemberId).collect();
        for &m in &ids {
            token.request(m);
        }
        let mut served = vec![token.holder().unwrap()];
        while let Some(next) = token.release(served[served.len() - 1]).unwrap() {
            served.push(next);
        }
        prop_assert_eq!(served, ids);
    }

    /// The suspension planner never selects a member whose priority is
    /// greater than or equal to the requester's, and under priority order the
    /// selected victims are the globally lowest-priority eligible members.
    #[test]
    fn suspensions_respect_priority(
        priorities in proptest::collection::vec(1i32..6, 1..20),
        requester_priority in 2i32..7,
        required in 1u32..5_000,
    ) {
        let members: Vec<(MemberId, Member, u32)> = priorities
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (
                    MemberId(i),
                    Member::new(format!("m{i}"), Role::Participant).with_priority(p),
                    100 + (i as u32 % 7) * 50,
                )
            })
            .collect();
        let views: Vec<(MemberId, &Member, u32)> =
            members.iter().map(|(id, m, k)| (*id, m, *k)).collect();
        let plan = plan_suspensions(&views, requester_priority, required, SuspensionOrder::PriorityAscending);
        for s in &plan {
            prop_assert!(s.priority < requester_priority);
        }
        // Priority order: no un-suspended eligible member has a strictly
        // lower priority than a suspended one unless the plan already freed
        // enough bandwidth before reaching them.
        let suspended: Vec<MemberId> = plan.iter().map(|s| s.member).collect();
        if total_freed_kbps(&plan) < required {
            // Every eligible member must have been suspended.
            for (id, m, _) in &views {
                if m.priority < requester_priority {
                    prop_assert!(suspended.contains(id));
                }
            }
        }
    }

    /// Arbitration is total for well-formed speak requests: it never panics
    /// and always returns one of the four outcomes; aggregate counters add
    /// up.
    #[test]
    fn arbitration_is_total(
        mode in arb_mode(),
        students in 1usize..8,
        availability in 0.0f64..1.0,
        requests in proptest::collection::vec(0usize..8, 1..50),
    ) {
        let (mut arbiter, group, teacher, student_ids) = FloorArbiter::lecture(students, mode);
        arbiter.set_resource(Resource::new(availability, 1.0, 1.0));
        let mut all = vec![teacher];
        all.extend(student_ids.iter().copied());
        for r in requests {
            let member = all[r % all.len()];
            let outcome = arbiter.arbitrate(&FloorRequest::speak(group, member)).unwrap();
            match outcome {
                ArbitrationOutcome::Granted { ref speakers, .. } => {
                    prop_assert!(!speakers.is_empty());
                }
                ArbitrationOutcome::Queued { .. } => {
                    prop_assert_eq!(mode, FcmMode::EqualControl);
                }
                ArbitrationOutcome::Denied { .. } | ArbitrationOutcome::Aborted { .. } => {}
            }
        }
        let stats = arbiter.stats();
        prop_assert_eq!(
            stats.granted + stats.queued + stats.denied + stats.aborted,
            requests_len(&arbiter, students) as u64
        );
    }

    /// Speak requests never return RequestKind-related errors for non
    /// direct-contact modes.
    #[test]
    fn speak_never_errors_outside_direct_contact(mode in arb_mode(), students in 1usize..5) {
        let (mut arbiter, group, teacher, _) = FloorArbiter::lecture(students, mode);
        let request = FloorRequest {
            group,
            member: teacher,
            kind: RequestKind::Speak,
        };
        prop_assert!(arbiter.arbitrate(&request).is_ok());
    }
}

/// Helper: the total number of requests recorded by the stats counters is the
/// number we issued; recomputed here to keep the proptest body readable.
fn requests_len(arbiter: &FloorArbiter, _students: usize) -> usize {
    let s = arbiter.stats();
    (s.granted + s.queued + s.denied + s.aborted) as usize
}
