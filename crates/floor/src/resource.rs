//! The resource model of the Z specification:
//! `Resource == Network × CPU × Memory`, with the basic availability level α
//! and the minimal availability level β (`α > β`).

use serde::{Deserialize, Serialize};

use crate::error::{FloorError, Result};
use crate::mode::PolicyFactor;

/// A snapshot of resource availability. Each component is a fraction in
/// `[0, 1]`: 1.0 means the resource is fully available, 0.0 means exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Available network capacity.
    pub network: f64,
    /// Available CPU capacity.
    pub cpu: f64,
    /// Available memory.
    pub memory: f64,
}

impl Resource {
    /// Creates a snapshot, clamping each component into `[0, 1]`.
    pub fn new(network: f64, cpu: f64, memory: f64) -> Self {
        Resource {
            network: network.clamp(0.0, 1.0),
            cpu: cpu.clamp(0.0, 1.0),
            memory: memory.clamp(0.0, 1.0),
        }
    }

    /// Full availability on every dimension.
    pub fn full() -> Self {
        Resource::new(1.0, 1.0, 1.0)
    }

    /// The scalar availability used by the arbiter: the *scarcest* dimension,
    /// because any exhausted dimension blocks media delivery.
    pub fn availability(&self) -> f64 {
        self.network.min(self.cpu).min(self.memory)
    }

    /// The bottleneck dimension (the Z policy factor).
    pub fn bottleneck(&self) -> PolicyFactor {
        if self.network <= self.cpu && self.network <= self.memory {
            PolicyFactor::NetworkBound
        } else if self.cpu <= self.memory {
            PolicyFactor::CpuBound
        } else {
            PolicyFactor::MemoryBound
        }
    }

    /// Returns a copy with the network component replaced.
    pub fn with_network(mut self, network: f64) -> Self {
        self.network = network.clamp(0.0, 1.0);
        self
    }
}

impl Default for Resource {
    fn default() -> Self {
        Resource::full()
    }
}

/// The α (basic) and β (minimal) availability thresholds of the Z
/// specification, with `α > β ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceThresholds {
    alpha: f64,
    beta: f64,
}

impl ResourceThresholds {
    /// Creates thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::InvalidThresholds`] unless `α > β ≥ 0`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !(alpha > beta && beta >= 0.0) || alpha.is_nan() || beta.is_nan() {
            return Err(FloorError::InvalidThresholds { alpha, beta });
        }
        Ok(ResourceThresholds { alpha, beta })
    }

    /// The paper does not give concrete numbers; the defaults used throughout
    /// the reproduction are α = 0.5 (enough headroom to admit new media) and
    /// β = 0.1 (below this the session cannot continue).
    pub fn defaults() -> Self {
        ResourceThresholds {
            alpha: 0.5,
            beta: 0.1,
        }
    }

    /// The basic availability level α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The minimal availability level β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Classifies a resource snapshot against the thresholds.
    pub fn classify(&self, resource: &Resource) -> ResourceLevel {
        let a = resource.availability();
        if a >= self.alpha {
            ResourceLevel::Sufficient
        } else if a >= self.beta {
            ResourceLevel::Degraded
        } else {
            ResourceLevel::Critical
        }
    }
}

impl Default for ResourceThresholds {
    fn default() -> Self {
        ResourceThresholds::defaults()
    }
}

impl dmps_wire::Wire for Resource {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.network.encode(w);
        self.cpu.encode(w);
        self.memory.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Resource {
            network: f64::decode(r)?,
            cpu: f64::decode(r)?,
            memory: f64::decode(r)?,
        })
    }
}

impl dmps_wire::Wire for ResourceThresholds {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.alpha.encode(w);
        self.beta.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        let alpha = f64::decode(r)?;
        let beta = f64::decode(r)?;
        ResourceThresholds::new(alpha, beta).map_err(|e| dmps_wire::WireError::BadToken {
            expected: "valid thresholds",
            token: e.to_string(),
        })
    }
}

/// The three regimes of the Z specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceLevel {
    /// `Resource-Available ≥ α`: grant requests normally.
    Sufficient,
    /// `β ≤ Resource-Available < α`: keep the session alive but suspend the
    /// media of lower-priority members.
    Degraded,
    /// `Resource-Available < β`: abort the arbitration.
    Critical,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_the_minimum_component() {
        let r = Resource::new(0.9, 0.4, 0.7);
        assert!((r.availability() - 0.4).abs() < f64::EPSILON);
        assert_eq!(r.bottleneck(), PolicyFactor::CpuBound);
        let r = Resource::new(0.2, 0.4, 0.7);
        assert_eq!(r.bottleneck(), PolicyFactor::NetworkBound);
        let r = Resource::new(0.9, 0.8, 0.1);
        assert_eq!(r.bottleneck(), PolicyFactor::MemoryBound);
    }

    #[test]
    fn components_are_clamped() {
        let r = Resource::new(1.5, -0.2, 0.5);
        assert!((r.network - 1.0).abs() < f64::EPSILON);
        assert!((r.cpu - 0.0).abs() < f64::EPSILON);
        let r = Resource::full().with_network(2.0);
        assert!((r.network - 1.0).abs() < f64::EPSILON);
        assert_eq!(Resource::default(), Resource::full());
    }

    #[test]
    fn thresholds_validate_alpha_greater_than_beta() {
        assert!(ResourceThresholds::new(0.5, 0.1).is_ok());
        assert!(ResourceThresholds::new(0.1, 0.5).is_err());
        assert!(ResourceThresholds::new(0.5, -0.1).is_err());
        assert!(ResourceThresholds::new(f64::NAN, 0.1).is_err());
        assert!(ResourceThresholds::new(0.5, 0.5).is_err());
        let d = ResourceThresholds::defaults();
        assert!(d.alpha() > d.beta());
        assert_eq!(ResourceThresholds::default(), d);
    }

    #[test]
    fn classification_matches_the_z_regimes() {
        let t = ResourceThresholds::defaults();
        assert_eq!(t.classify(&Resource::full()), ResourceLevel::Sufficient);
        assert_eq!(
            t.classify(&Resource::new(0.5, 1.0, 1.0)),
            ResourceLevel::Sufficient,
            "exactly alpha counts as sufficient"
        );
        assert_eq!(
            t.classify(&Resource::new(0.3, 1.0, 1.0)),
            ResourceLevel::Degraded
        );
        assert_eq!(
            t.classify(&Resource::new(0.1, 1.0, 1.0)),
            ResourceLevel::Degraded,
            "exactly beta is still degraded"
        );
        assert_eq!(
            t.classify(&Resource::new(0.05, 1.0, 1.0)),
            ResourceLevel::Critical
        );
    }
}
