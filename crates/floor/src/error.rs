//! Error types for the floor control mechanism.

use std::fmt;

use crate::group::GroupId;
use crate::invite::InvitationId;
use crate::member::MemberId;

/// Convenience result alias for the crate.
pub type Result<T> = std::result::Result<T, FloorError>;

/// Errors raised by the floor control mechanism.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FloorError {
    /// A group identifier is unknown.
    UnknownGroup(GroupId),
    /// A member identifier is unknown.
    UnknownMember(MemberId),
    /// The member is not part of the group the request names.
    NotAMember {
        /// The member making the request.
        member: MemberId,
        /// The group the request names.
        group: GroupId,
    },
    /// An invitation identifier is unknown.
    UnknownInvitation(InvitationId),
    /// An invitation was answered by somebody other than its recipient.
    NotTheInvitee(MemberId),
    /// An invitation was already answered.
    AlreadyAnswered(InvitationId),
    /// A direct-contact request did not name a destination member.
    MissingDestination,
    /// The thresholds are invalid (α must exceed β and both must be
    /// non-negative).
    InvalidThresholds {
        /// The basic availability level α.
        alpha: f64,
        /// The minimal availability level β.
        beta: f64,
    },
    /// A member attempted to pass or release a token they do not hold.
    NotTokenHolder(MemberId),
    /// An arbiter snapshot failed to decode during restore.
    CorruptSnapshot(String),
}

impl fmt::Display for FloorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            FloorError::UnknownMember(m) => write!(f, "unknown member {m}"),
            FloorError::NotAMember { member, group } => {
                write!(f, "member {member} has not joined group {group}")
            }
            FloorError::UnknownInvitation(i) => write!(f, "unknown invitation {i}"),
            FloorError::NotTheInvitee(m) => write!(f, "member {m} is not the invitee"),
            FloorError::AlreadyAnswered(i) => write!(f, "invitation {i} was already answered"),
            FloorError::MissingDestination => {
                write!(f, "direct contact requires a destination member")
            }
            FloorError::InvalidThresholds { alpha, beta } => {
                write!(f, "invalid thresholds: alpha {alpha} must exceed beta {beta} and both must be non-negative")
            }
            FloorError::NotTokenHolder(m) => write!(f, "member {m} does not hold the floor token"),
            FloorError::CorruptSnapshot(msg) => write!(f, "corrupt arbiter snapshot: {msg}"),
        }
    }
}

impl std::error::Error for FloorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            FloorError::UnknownGroup(GroupId(1)),
            FloorError::UnknownMember(MemberId(2)),
            FloorError::NotAMember {
                member: MemberId(1),
                group: GroupId(0),
            },
            FloorError::UnknownInvitation(InvitationId(3)),
            FloorError::NotTheInvitee(MemberId(4)),
            FloorError::AlreadyAnswered(InvitationId(5)),
            FloorError::MissingDestination,
            FloorError::InvalidThresholds {
                alpha: 0.1,
                beta: 0.5,
            },
            FloorError::NotTokenHolder(MemberId(6)),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<FloorError>();
    }
}
