//! # dmps-floor
//!
//! The floor control mechanism (FCM) of the DMPS paper: four floor control
//! modes, the Z-notation arbitration algorithm, resource-threshold admission
//! with the α/β levels, priority-ordered media suspension, floor-token
//! passing for equal control, and invitation handling for group discussion.
//!
//! The paper's Section 3 specifies the mechanism in Z; this crate implements
//! that specification executably:
//!
//! * [`FcmMode`] — Free Access, Equal Control, Group Discussion, Direct
//!   Contact,
//! * [`Resource`] / [`ResourceThresholds`] — `Network × CPU × Memory` with
//!   the basic level α and the minimal level β (`α > β`),
//! * [`FloorArbiter`] — `FCM-Arbitrate`: grants media, suspends
//!   lowest-priority members when resources dip below α, aborts below β,
//! * [`suspend::plan_suspensions`] — `Media-Suspend`: the priority-ordered
//!   victim selection,
//! * [`FloorToken`] — the speaking token of Equal Control,
//! * [`invite`] — invitations that spawn the private sub-groups of Group
//!   Discussion and Direct Contact.
//!
//! # Example
//!
//! ```
//! use dmps_floor::{FcmMode, FloorArbiter, FloorRequest, Member, Resource, Role};
//!
//! let mut arbiter = FloorArbiter::with_defaults();
//! let group = arbiter.create_group("lecture", FcmMode::FreeAccess);
//! let teacher = arbiter.add_member(group, Member::new("teacher", Role::Chair)).unwrap();
//! let student = arbiter.add_member(group, Member::new("alice", Role::Participant)).unwrap();
//!
//! arbiter.set_resource(Resource::new(1.0, 1.0, 1.0));
//! let outcome = arbiter.arbitrate(&FloorRequest::speak(group, student)).unwrap();
//! assert!(outcome.is_granted());
//! # let _ = teacher;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod error;
pub mod group;
pub mod invite;
pub mod member;
pub mod mode;
pub mod resource;
pub mod snapshot;
pub mod suspend;
pub mod token;

pub use arbiter::{ArbitrationOutcome, FloorArbiter, FloorRequest, GroupFloorExport, RequestKind};
pub use error::{FloorError, Result};
pub use group::{Group, GroupId};
pub use invite::{Invitation, InvitationId, InvitationStatus};
pub use member::{Member, MemberId, Role};
pub use mode::{FcmMode, PolicyFactor};
pub use resource::{Resource, ResourceThresholds};
pub use snapshot::{ArbiterDelta, ArbiterDirty, ArbiterEvent, ArbiterSnapshot, EventOutcome};
pub use suspend::{plan_suspensions, Suspension};
pub use token::FloorToken;
