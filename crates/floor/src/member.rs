//! Members (participants) of a DMPS session.

use std::fmt;

use serde::{Deserialize, Serialize};

use dmps_media::ChannelKind;

/// Identifier of a member within a [`crate::FloorArbiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemberId(pub usize);

impl MemberId {
    /// The dense index of the member.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The role of a member in the distance-learning session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The session chair (the teacher in the paper's scenario).
    Chair,
    /// A regular participant (student).
    Participant,
    /// A passive observer who may watch but never holds the floor.
    Observer,
}

impl Role {
    /// The default priority of the role. The Z predicates require priority
    /// ≥ 2 for every controlled mode, so observers (priority 1) can never
    /// claim the floor while chairs outrank participants.
    pub fn default_priority(self) -> i32 {
        match self {
            Role::Chair => 3,
            Role::Participant => 2,
            Role::Observer => 1,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Chair => "chair",
            Role::Participant => "participant",
            Role::Observer => "observer",
        };
        f.write_str(s)
    }
}

/// One participant of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Member {
    /// Display name.
    pub name: String,
    /// The member's role.
    pub role: Role,
    /// The member's floor priority (the Z `Priority : INTEGER`).
    pub priority: i32,
    /// The media channels the member enabled in their communication window.
    pub channels: Vec<ChannelKind>,
    /// The host station identifier the member is connected from (the Z
    /// `Host-Station`).
    pub station: usize,
}

impl Member {
    /// Creates a member with the role's default priority, a default channel
    /// set (message window, whiteboard, audio) and station 0.
    pub fn new(name: impl Into<String>, role: Role) -> Self {
        Member {
            name: name.into(),
            role,
            priority: role.default_priority(),
            channels: vec![
                ChannelKind::MessageWindow,
                ChannelKind::Whiteboard,
                ChannelKind::AudioStream,
            ],
            station: 0,
        }
    }

    /// Overrides the member's priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Overrides the member's channel selection.
    pub fn with_channels(mut self, channels: Vec<ChannelKind>) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the host station the member connects from.
    pub fn with_station(mut self, station: usize) -> Self {
        self.station = station;
        self
    }

    /// Whether the member satisfies the Z predicates' minimum priority.
    pub fn meets_minimum_priority(&self) -> bool {
        self.priority >= crate::mode::FcmMode::MIN_PRIORITY
    }

    /// Whether the member is the session chair.
    pub fn is_chair(&self) -> bool {
        self.role == Role::Chair
    }
}

impl dmps_wire::Wire for MemberId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(MemberId(usize::decode(r)?))
    }
}

impl dmps_wire::Wire for Role {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        let tag: u8 = match self {
            Role::Chair => 0,
            Role::Participant => 1,
            Role::Observer => 2,
        };
        tag.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(Role::Chair),
            1 => Ok(Role::Participant),
            2 => Ok(Role::Observer),
            other => Err(dmps_wire::WireError::BadToken {
                expected: "Role tag",
                token: other.to_string(),
            }),
        }
    }
}

impl dmps_wire::Wire for Member {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.name.encode(w);
        self.role.encode(w);
        self.priority.encode(w);
        self.channels.encode(w);
        self.station.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Member {
            name: String::decode(r)?,
            role: Role::decode(r)?,
            priority: i32::decode(r)?,
            channels: Vec::<ChannelKind>::decode(r)?,
            station: usize::decode(r)?,
        })
    }
}

impl fmt::Display for Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, priority {})",
            self.name, self.role, self.priority
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_priorities_are_ordered() {
        assert!(Role::Chair.default_priority() > Role::Participant.default_priority());
        assert!(Role::Participant.default_priority() > Role::Observer.default_priority());
    }

    #[test]
    fn default_member_meets_minimum_unless_observer() {
        assert!(Member::new("t", Role::Chair).meets_minimum_priority());
        assert!(Member::new("s", Role::Participant).meets_minimum_priority());
        assert!(!Member::new("o", Role::Observer).meets_minimum_priority());
    }

    #[test]
    fn builder_overrides() {
        let m = Member::new("alice", Role::Participant)
            .with_priority(5)
            .with_station(3)
            .with_channels(vec![ChannelKind::VideoStream]);
        assert_eq!(m.priority, 5);
        assert_eq!(m.station, 3);
        assert_eq!(m.channels, vec![ChannelKind::VideoStream]);
        assert!(!m.is_chair());
        assert!(Member::new("t", Role::Chair).is_chair());
    }

    #[test]
    fn display_mentions_name_role_priority() {
        let m = Member::new("bob", Role::Observer);
        let s = m.to_string();
        assert!(s.contains("bob"));
        assert!(s.contains("observer"));
        assert!(s.contains('1'));
        assert_eq!(MemberId(4).to_string(), "u4");
        assert_eq!(Role::Chair.to_string(), "chair");
    }
}
