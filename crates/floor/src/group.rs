//! Communication groups and sub-groups.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::member::MemberId;
use crate::mode::FcmMode;

/// Identifier of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub usize);

impl GroupId {
    /// The dense index of the group.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A communication group: the main session group or a private sub-group
/// created by invitation (group discussion / direct contact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Display name.
    pub name: String,
    /// The group's current floor control mode.
    pub mode: FcmMode,
    /// The members that have joined.
    members: BTreeSet<MemberId>,
    /// The session chair of the group, if any (the inviter for sub-groups).
    pub chair: Option<MemberId>,
    /// The parent group for sub-groups created by invitation.
    pub parent: Option<GroupId>,
}

impl Group {
    /// Creates an empty group.
    pub fn new(name: impl Into<String>, mode: FcmMode) -> Self {
        Group {
            name: name.into(),
            mode,
            members: BTreeSet::new(),
            chair: None,
            parent: None,
        }
    }

    /// Creates a sub-group of `parent` chaired by `chair`.
    pub fn subgroup(
        name: impl Into<String>,
        mode: FcmMode,
        parent: GroupId,
        chair: MemberId,
    ) -> Self {
        let mut g = Group::new(name, mode);
        g.parent = Some(parent);
        g.chair = Some(chair);
        g.members.insert(chair);
        g
    }

    /// Adds a member; the first chair-less member to join a main group does
    /// not automatically become chair (that is decided by role at the
    /// arbiter level).
    pub fn join(&mut self, member: MemberId) {
        self.members.insert(member);
    }

    /// Removes a member. Clears the chair if the chair left.
    pub fn leave(&mut self, member: MemberId) {
        self.members.remove(&member);
        if self.chair == Some(member) {
            self.chair = None;
        }
    }

    /// Whether the member has joined this group.
    pub fn contains(&self, member: MemberId) -> bool {
        self.members.contains(&member)
    }

    /// The members of the group in id order.
    pub fn members(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.members.iter().copied()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether this is a private sub-group.
    pub fn is_subgroup(&self) -> bool {
        self.parent.is_some()
    }
}

impl dmps_wire::Wire for GroupId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(GroupId(usize::decode(r)?))
    }
}

impl dmps_wire::Wire for Group {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.name.encode(w);
        self.mode.encode(w);
        self.members.encode(w);
        self.chair.encode(w);
        self.parent.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Group {
            name: String::decode(r)?,
            mode: FcmMode::decode(r)?,
            members: BTreeSet::<MemberId>::decode(r)?,
            chair: Option::<MemberId>::decode(r)?,
            parent: Option::<GroupId>::decode(r)?,
        })
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group `{}` ({}, {} members{})",
            self.name,
            self.mode,
            self.members.len(),
            if self.is_subgroup() { ", private" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leave() {
        let mut g = Group::new("lecture", FcmMode::FreeAccess);
        assert!(g.is_empty());
        g.join(MemberId(0));
        g.join(MemberId(1));
        g.join(MemberId(1));
        assert_eq!(g.len(), 2);
        assert!(g.contains(MemberId(0)));
        g.leave(MemberId(0));
        assert!(!g.contains(MemberId(0)));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn subgroup_contains_its_chair() {
        let g = Group::subgroup(
            "breakout",
            FcmMode::GroupDiscussion,
            GroupId(0),
            MemberId(3),
        );
        assert!(g.is_subgroup());
        assert_eq!(g.chair, Some(MemberId(3)));
        assert_eq!(g.parent, Some(GroupId(0)));
        assert!(g.contains(MemberId(3)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn chair_leaving_clears_chair() {
        let mut g = Group::subgroup(
            "breakout",
            FcmMode::GroupDiscussion,
            GroupId(0),
            MemberId(3),
        );
        g.leave(MemberId(3));
        assert_eq!(g.chair, None);
        assert!(g.is_empty());
    }

    #[test]
    fn members_iterate_in_id_order() {
        let mut g = Group::new("x", FcmMode::EqualControl);
        g.join(MemberId(5));
        g.join(MemberId(1));
        g.join(MemberId(3));
        let ids: Vec<_> = g.members().collect();
        assert_eq!(ids, vec![MemberId(1), MemberId(3), MemberId(5)]);
    }

    #[test]
    fn display_mentions_mode_and_size() {
        let g = Group::subgroup("pair", FcmMode::DirectContact, GroupId(1), MemberId(0));
        let s = g.to_string();
        assert!(s.contains("direct-contact"));
        assert!(s.contains("private"));
        assert_eq!(GroupId(2).to_string(), "g2");
    }
}
