//! The speaking token of the Equal Control mode.
//!
//! *"In this mode, there is only one (session chair or participant) \[who\] can
//! deliver at the same time until the floor control token \[is\] passed by the
//! holder."* The token keeps a FIFO queue of pending requests so passing the
//! floor is fair; the holder may also pass it to a specific member directly.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::{FloorError, Result};
use crate::member::MemberId;

/// The floor token of one Equal Control group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorToken {
    holder: Option<MemberId>,
    queue: VecDeque<MemberId>,
    grants: u64,
}

impl FloorToken {
    /// Creates a free token with no holder.
    pub fn new() -> Self {
        FloorToken::default()
    }

    /// Reassembles a token from exported parts — the live-migration path:
    /// the destination arbiter rebuilds the source group's token with its
    /// own (translated) member ids while preserving holder, queue order and
    /// the fairness counter.
    pub fn from_parts(
        holder: Option<MemberId>,
        queue: impl IntoIterator<Item = MemberId>,
        grants: u64,
    ) -> Self {
        FloorToken {
            holder,
            queue: queue.into_iter().collect(),
            grants,
        }
    }

    /// The current holder.
    pub fn holder(&self) -> Option<MemberId> {
        self.holder
    }

    /// The pending requesters in arrival order.
    pub fn queue(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.queue.iter().copied()
    }

    /// Number of members waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total number of grants handed out so far (fairness accounting).
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// A member requests the floor. If the token is free it is granted
    /// immediately (returns `true`); otherwise the member is queued (returns
    /// `false`). Requests from the current holder or from members already in
    /// the queue are idempotent.
    pub fn request(&mut self, member: MemberId) -> bool {
        if self.holder == Some(member) {
            return true;
        }
        if self.holder.is_none() {
            self.holder = Some(member);
            self.grants += 1;
            return true;
        }
        if !self.queue.contains(&member) {
            self.queue.push_back(member);
        }
        false
    }

    /// The holder releases the floor; the next queued member (if any) becomes
    /// the holder. Returns the new holder.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::NotTokenHolder`] when `member` does not hold the
    /// token.
    pub fn release(&mut self, member: MemberId) -> Result<Option<MemberId>> {
        if self.holder != Some(member) {
            return Err(FloorError::NotTokenHolder(member));
        }
        self.holder = self.queue.pop_front();
        if self.holder.is_some() {
            self.grants += 1;
        }
        Ok(self.holder)
    }

    /// The holder passes the token directly to another member, jumping the
    /// queue (the paper lets the holder choose whom to pass to). The
    /// recipient is removed from the queue if they were waiting.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::NotTokenHolder`] when `from` does not hold the
    /// token.
    pub fn pass(&mut self, from: MemberId, to: MemberId) -> Result<()> {
        if self.holder != Some(from) {
            return Err(FloorError::NotTokenHolder(from));
        }
        self.queue.retain(|&m| m != to);
        self.holder = Some(to);
        self.grants += 1;
        Ok(())
    }

    /// Removes a member entirely (they left the session). If they held the
    /// token it moves on to the next queued member.
    pub fn remove_member(&mut self, member: MemberId) {
        self.queue.retain(|&m| m != member);
        if self.holder == Some(member) {
            self.holder = self.queue.pop_front();
            if self.holder.is_some() {
                self.grants += 1;
            }
        }
    }

    /// Whether a member may currently deliver (holds the token).
    pub fn may_speak(&self, member: MemberId) -> bool {
        self.holder == Some(member)
    }
}

impl dmps_wire::Wire for FloorToken {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.holder.encode(w);
        self.queue.encode(w);
        self.grants.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(FloorToken {
            holder: Option::<MemberId>::decode(r)?,
            queue: VecDeque::<MemberId>::decode(r)?,
            grants: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_token_is_granted_immediately() {
        let mut token = FloorToken::new();
        assert_eq!(token.holder(), None);
        assert!(token.request(MemberId(1)));
        assert!(token.may_speak(MemberId(1)));
        assert!(!token.may_speak(MemberId(2)));
        assert_eq!(token.grant_count(), 1);
    }

    #[test]
    fn busy_token_queues_requests_fifo() {
        let mut token = FloorToken::new();
        token.request(MemberId(1));
        assert!(!token.request(MemberId(2)));
        assert!(!token.request(MemberId(3)));
        assert!(
            !token.request(MemberId(2)),
            "duplicate request is idempotent"
        );
        assert_eq!(token.queue_len(), 2);
        assert_eq!(token.release(MemberId(1)).unwrap(), Some(MemberId(2)));
        assert_eq!(token.release(MemberId(2)).unwrap(), Some(MemberId(3)));
        assert_eq!(token.release(MemberId(3)).unwrap(), None);
        assert_eq!(token.grant_count(), 3);
    }

    #[test]
    fn holder_request_is_idempotent() {
        let mut token = FloorToken::new();
        token.request(MemberId(1));
        assert!(token.request(MemberId(1)));
        assert_eq!(token.queue_len(), 0);
        assert_eq!(token.grant_count(), 1);
    }

    #[test]
    fn only_the_holder_may_release_or_pass() {
        let mut token = FloorToken::new();
        token.request(MemberId(1));
        assert_eq!(
            token.release(MemberId(2)).unwrap_err(),
            FloorError::NotTokenHolder(MemberId(2))
        );
        assert_eq!(
            token.pass(MemberId(2), MemberId(3)).unwrap_err(),
            FloorError::NotTokenHolder(MemberId(2))
        );
    }

    #[test]
    fn pass_jumps_the_queue_and_dedups() {
        let mut token = FloorToken::new();
        token.request(MemberId(1));
        token.request(MemberId(2));
        token.request(MemberId(3));
        token.pass(MemberId(1), MemberId(3)).unwrap();
        assert!(token.may_speak(MemberId(3)));
        // Member 3 is no longer queued; member 2 is next.
        assert_eq!(token.queue().collect::<Vec<_>>(), vec![MemberId(2)]);
        assert_eq!(token.release(MemberId(3)).unwrap(), Some(MemberId(2)));
    }

    #[test]
    fn removing_the_holder_promotes_the_next_requester() {
        let mut token = FloorToken::new();
        token.request(MemberId(1));
        token.request(MemberId(2));
        token.remove_member(MemberId(1));
        assert!(token.may_speak(MemberId(2)));
        token.remove_member(MemberId(2));
        assert_eq!(token.holder(), None);
        // Removing a queued (non-holder) member just drops them.
        token.request(MemberId(5));
        token.request(MemberId(6));
        token.remove_member(MemberId(6));
        assert_eq!(token.queue_len(), 0);
        assert!(token.may_speak(MemberId(5)));
    }
}
