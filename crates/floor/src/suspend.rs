//! `Media-Suspend`: priority-ordered victim selection when resources dip
//! below the basic level α.
//!
//! The Z specification selects a member set `MS` such that every member of
//! `MS` has lower priority than the member whose request triggered the check,
//! and suspends their media until resource availability recovers. This module
//! implements that selection as a pure function so it can be property-tested
//! and ablated (priority order vs. FIFO order, experiment E7).

use serde::{Deserialize, Serialize};

use crate::member::{Member, MemberId};

/// One planned suspension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suspension {
    /// The member whose media are suspended.
    pub member: MemberId,
    /// The member's priority at the time of suspension.
    pub priority: i32,
    /// The bandwidth (kbps) freed by suspending this member's media.
    pub freed_kbps: u32,
}

/// The victim-selection order (the ablation axis of experiment E7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SuspensionOrder {
    /// Suspend the lowest-priority members first (the paper's rule).
    #[default]
    PriorityAscending,
    /// Suspend members in join order regardless of priority (baseline).
    JoinOrder,
}

impl dmps_wire::Wire for Suspension {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.member.encode(w);
        self.priority.encode(w);
        self.freed_kbps.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Suspension {
            member: MemberId::decode(r)?,
            priority: i32::decode(r)?,
            freed_kbps: u32::decode(r)?,
        })
    }
}

impl dmps_wire::Wire for SuspensionOrder {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        let tag: u8 = match self {
            SuspensionOrder::PriorityAscending => 0,
            SuspensionOrder::JoinOrder => 1,
        };
        tag.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(SuspensionOrder::PriorityAscending),
            1 => Ok(SuspensionOrder::JoinOrder),
            other => Err(dmps_wire::WireError::BadToken {
                expected: "SuspensionOrder tag",
                token: other.to_string(),
            }),
        }
    }
}

/// Plans which members to suspend so that at least `required_kbps` of
/// bandwidth is freed.
///
/// * Only members with priority strictly below `requester_priority` are
///   eligible (the Z constraint `∀M' ∈ MS • M'.Priority < M.Priority`).
/// * Victims are taken in the given order until enough bandwidth is freed or
///   no eligible member remains.
///
/// The returned plan may free less than `required_kbps` when there are not
/// enough eligible victims; the caller (the arbiter) decides whether that is
/// acceptable or the arbitration must abort.
pub fn plan_suspensions(
    members: &[(MemberId, &Member, u32)],
    requester_priority: i32,
    required_kbps: u32,
    order: SuspensionOrder,
) -> Vec<Suspension> {
    let mut eligible: Vec<&(MemberId, &Member, u32)> = members
        .iter()
        .filter(|(_, m, _)| m.priority < requester_priority)
        .collect();
    match order {
        SuspensionOrder::PriorityAscending => {
            eligible.sort_by_key(|(id, m, _)| (m.priority, *id));
        }
        SuspensionOrder::JoinOrder => {
            eligible.sort_by_key(|(id, _, _)| *id);
        }
    }
    let mut plan = Vec::new();
    let mut freed: u32 = 0;
    for (id, member, kbps) in eligible {
        if freed >= required_kbps {
            break;
        }
        plan.push(Suspension {
            member: *id,
            priority: member.priority,
            freed_kbps: *kbps,
        });
        freed = freed.saturating_add(*kbps);
    }
    plan
}

/// The total bandwidth a suspension plan frees.
pub fn total_freed_kbps(plan: &[Suspension]) -> u32 {
    plan.iter().map(|s| s.freed_kbps).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::Role;

    fn members() -> Vec<(MemberId, Member, u32)> {
        vec![
            (MemberId(0), Member::new("teacher", Role::Chair), 1_500),
            (MemberId(1), Member::new("alice", Role::Participant), 800),
            (
                MemberId(2),
                Member::new("bob", Role::Participant).with_priority(2),
                600,
            ),
            (MemberId(3), Member::new("carol", Role::Observer), 400),
            (MemberId(4), Member::new("dave", Role::Observer), 300),
        ]
    }

    fn views(list: &[(MemberId, Member, u32)]) -> Vec<(MemberId, &Member, u32)> {
        list.iter().map(|(id, m, k)| (*id, m, *k)).collect()
    }

    #[test]
    fn lowest_priority_members_are_suspended_first() {
        let list = members();
        let plan = plan_suspensions(&views(&list), 3, 500, SuspensionOrder::PriorityAscending);
        // Observers (priority 1) go first; a single observer frees 400 < 500,
        // so two are suspended.
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].member, MemberId(3));
        assert_eq!(plan[1].member, MemberId(4));
        assert_eq!(total_freed_kbps(&plan), 700);
        assert!(plan.iter().all(|s| s.priority < 3));
    }

    #[test]
    fn only_lower_priority_members_are_eligible() {
        let list = members();
        // Requester priority 2: only the observers (priority 1) are eligible,
        // even if they cannot free enough bandwidth.
        let plan = plan_suspensions(&views(&list), 2, 10_000, SuspensionOrder::PriorityAscending);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|s| s.priority < 2));
        assert_eq!(total_freed_kbps(&plan), 700);
    }

    #[test]
    fn no_eligible_members_yields_empty_plan() {
        let list = members();
        let plan = plan_suspensions(&views(&list), 1, 100, SuspensionOrder::PriorityAscending);
        assert!(plan.is_empty());
        assert_eq!(total_freed_kbps(&plan), 0);
    }

    #[test]
    fn stops_once_enough_bandwidth_is_freed() {
        let list = members();
        let plan = plan_suspensions(&views(&list), 4, 300, SuspensionOrder::PriorityAscending);
        assert_eq!(plan.len(), 1, "one observer already frees 400 >= 300");
        assert_eq!(plan[0].member, MemberId(3));
    }

    #[test]
    fn join_order_ablation_ignores_priority() {
        let list = members();
        let plan = plan_suspensions(&views(&list), 4, 500, SuspensionOrder::JoinOrder);
        // Join order: the teacher (1500 kbps, priority 3) is suspended first
        // even though observers have lower priority — the behaviour the
        // paper's rule avoids.
        assert_eq!(plan[0].member, MemberId(0));
        assert_eq!(total_freed_kbps(&plan), 1_500);
        assert_eq!(
            SuspensionOrder::default(),
            SuspensionOrder::PriorityAscending
        );
    }
}
