//! `FCM-Arbitrate`: the floor control arbiter of the DMPS server.
//!
//! The arbiter owns the groups, members, per-group floor tokens, pending
//! invitations, the resource snapshot and the α/β thresholds, and implements
//! the paper's Z-notation arbitration algorithm:
//!
//! * resource availability **≥ α** — the request is handled according to the
//!   group's floor control mode (`Media-Available`);
//! * **β ≤ availability < α** — the request may still be granted, but the
//!   media of lower-priority members are suspended first (`Media-Suspend`);
//! * availability **< β** — the arbitration aborts (`Abort-Arbitrate`);
//! * in every regime, a request from a member who has not joined the group
//!   aborts.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::error::{FloorError, Result};
use crate::group::{Group, GroupId};
use crate::invite::{Invitation, InvitationId, InvitationStatus};
use crate::member::{Member, MemberId, Role};
use crate::mode::FcmMode;
use crate::resource::{Resource, ResourceLevel, ResourceThresholds};
use crate::suspend::{plan_suspensions, Suspension, SuspensionOrder};
use crate::token::FloorToken;

/// A floor control request sent to the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorRequest {
    /// The group the request concerns.
    pub group: GroupId,
    /// The requesting member.
    pub member: MemberId,
    /// What the member wants to do.
    pub kind: RequestKind,
}

impl FloorRequest {
    /// A request to deliver (speak / write / stream) in the group under its
    /// current mode.
    pub fn speak(group: GroupId, member: MemberId) -> Self {
        FloorRequest {
            group,
            member,
            kind: RequestKind::Speak,
        }
    }

    /// A request to open a direct-contact channel to another member.
    pub fn direct_contact(group: GroupId, member: MemberId, to: MemberId) -> Self {
        FloorRequest {
            group,
            member,
            kind: RequestKind::DirectContact { to },
        }
    }

    /// Release the equal-control floor token.
    pub fn release_floor(group: GroupId, member: MemberId) -> Self {
        FloorRequest {
            group,
            member,
            kind: RequestKind::ReleaseFloor,
        }
    }

    /// Pass the equal-control floor token to a specific member.
    pub fn pass_floor(group: GroupId, member: MemberId, to: MemberId) -> Self {
        FloorRequest {
            group,
            member,
            kind: RequestKind::PassFloor { to },
        }
    }
}

/// The kinds of floor control requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Deliver on the group's channels under the current mode.
    Speak,
    /// Open a private direct-contact channel with another member.
    DirectContact {
        /// The destination member.
        to: MemberId,
    },
    /// Release the floor token (Equal Control).
    ReleaseFloor,
    /// Pass the floor token to a specific member (Equal Control).
    PassFloor {
        /// The member to pass the token to.
        to: MemberId,
    },
}

/// Why a request was denied without aborting the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenialReason {
    /// The member's priority is below the mode's minimum (the Z `Priority ≥ 2`).
    InsufficientPriority,
    /// Another member holds the floor token; the request was queued.
    FloorBusy,
    /// The member does not hold the floor token they tried to release/pass.
    NotTokenHolder,
}

/// Why an arbitration aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The requester has not joined the group (`G ∉ Joined-Groups(G, X)`).
    NotJoined,
    /// Resource availability fell below the minimal level β.
    ResourceCritical,
}

/// The outcome of one arbitration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArbitrationOutcome {
    /// Media are available to the listed members (for Free Access this is
    /// everyone in the group; for Equal Control the single token holder; for
    /// Group Discussion the sub-group members; for Direct Contact the pair).
    Granted {
        /// The members who may deliver.
        speakers: Vec<MemberId>,
        /// Members whose media were suspended to make room (non-empty only in
        /// the degraded regime).
        suspensions: Vec<Suspension>,
    },
    /// The request was queued behind the current floor holder (Equal
    /// Control).
    Queued {
        /// The member currently holding the floor.
        current_holder: MemberId,
        /// Position in the waiting queue (1 = next).
        position: usize,
    },
    /// The request was denied.
    Denied {
        /// Why.
        reason: DenialReason,
    },
    /// The arbitration aborted.
    Aborted {
        /// Why.
        reason: AbortReason,
    },
}

impl ArbitrationOutcome {
    /// Whether the outcome granted the floor to the requester (possibly with
    /// suspensions).
    pub fn is_granted(&self) -> bool {
        matches!(self, ArbitrationOutcome::Granted { .. })
    }

    /// The suspensions carried by a granted outcome.
    pub fn suspensions(&self) -> &[Suspension] {
        match self {
            ArbitrationOutcome::Granted { suspensions, .. } => suspensions,
            _ => &[],
        }
    }
}

/// Aggregate counters kept by the arbiter (experiment E6/E8 output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterStats {
    /// Requests granted.
    pub granted: u64,
    /// Requests queued behind the token holder.
    pub queued: u64,
    /// Requests denied.
    pub denied: u64,
    /// Arbitrations aborted.
    pub aborted: u64,
    /// Individual member-media suspensions performed.
    pub suspensions: u64,
}

/// The complete live floor state of one group, exported for a shard-to-shard
/// handoff: everything the destination arbiter needs to recreate the group
/// *mid-arbitration* — roster, mode, chair, and the token with its holder and
/// FIFO queue intact.
///
/// Member ids are dense ids of the **exporting** arbiter; the coordinator
/// translates them to the destination's ids before calling
/// [`FloorArbiter::restore_token`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFloorExport {
    /// Display name of the group.
    pub name: String,
    /// Its floor control mode.
    pub mode: FcmMode,
    /// The joined members, in id order.
    pub members: Vec<MemberId>,
    /// The session chair, if any.
    pub chair: Option<MemberId>,
    /// The floor token: holder, pending-request queue, fairness counter.
    pub token: FloorToken,
}

/// The floor control arbiter (the "group administration of the DMPS server").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloorArbiter {
    members: Vec<Member>,
    groups: Vec<Group>,
    tokens: BTreeMap<GroupId, FloorToken>,
    invitations: Vec<Invitation>,
    resource: Resource,
    thresholds: ResourceThresholds,
    suspension_order: SuspensionOrder,
    suspended: BTreeSet<MemberId>,
    stats: ArbiterStats,
}

impl FloorArbiter {
    /// Creates an arbiter with full resources and the default α/β thresholds.
    pub fn with_defaults() -> Self {
        FloorArbiter::default()
    }

    /// Creates an arbiter with explicit thresholds.
    pub fn new(thresholds: ResourceThresholds) -> Self {
        FloorArbiter {
            thresholds,
            ..Default::default()
        }
    }

    /// Sets the victim-selection order used in the degraded regime
    /// (the E7 ablation switch).
    pub fn set_suspension_order(&mut self, order: SuspensionOrder) {
        self.suspension_order = order;
    }

    /// The victim-selection order in force.
    pub fn suspension_order(&self) -> SuspensionOrder {
        self.suspension_order
    }

    /// Updates the resource snapshot. When availability recovers to the
    /// sufficient level, previously suspended members are resumed.
    pub fn set_resource(&mut self, resource: Resource) {
        self.resource = resource;
        if self.thresholds.classify(&self.resource) == ResourceLevel::Sufficient {
            self.suspended.clear();
        }
    }

    /// The current resource snapshot.
    pub fn resource(&self) -> Resource {
        self.resource
    }

    /// The α/β thresholds in force.
    pub fn thresholds(&self) -> ResourceThresholds {
        self.thresholds
    }

    /// The aggregate counters.
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// The members whose media are currently suspended.
    pub fn suspended_members(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.suspended.iter().copied()
    }

    // ----- membership ------------------------------------------------------

    /// Creates a new top-level group and returns its id.
    pub fn create_group(&mut self, name: impl Into<String>, mode: FcmMode) -> GroupId {
        self.groups.push(Group::new(name, mode));
        let id = GroupId(self.groups.len() - 1);
        self.tokens.insert(id, FloorToken::new());
        id
    }

    /// Adds a member to a group; the first chair-role member to join becomes
    /// the group's chair.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group.
    pub fn add_member(&mut self, group: GroupId, member: Member) -> Result<MemberId> {
        let is_chair = member.is_chair();
        // Validate before mutating: a failed add must leave the member list
        // untouched, or event-log replay (which skips failed events) would
        // assign different dense ids than the live arbiter did.
        if group.0 >= self.groups.len() {
            return Err(FloorError::UnknownGroup(group));
        }
        self.members.push(member);
        let id = MemberId(self.members.len() - 1);
        let g = &mut self.groups[group.0];
        g.join(id);
        if is_chair && g.chair.is_none() {
            g.chair = Some(id);
        }
        Ok(id)
    }

    /// Adds an existing member to another (sub-)group.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] / [`FloorError::UnknownMember`]
    /// for unknown identifiers.
    pub fn join_group(&mut self, group: GroupId, member: MemberId) -> Result<()> {
        if member.0 >= self.members.len() {
            return Err(FloorError::UnknownMember(member));
        }
        let g = self
            .groups
            .get_mut(group.0)
            .ok_or(FloorError::UnknownGroup(group))?;
        g.join(member);
        Ok(())
    }

    /// Removes a member from a group (and from its floor token).
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group.
    pub fn leave_group(&mut self, group: GroupId, member: MemberId) -> Result<()> {
        let g = self
            .groups
            .get_mut(group.0)
            .ok_or(FloorError::UnknownGroup(group))?;
        g.leave(member);
        if let Some(token) = self.tokens.get_mut(&group) {
            token.remove_member(member);
        }
        Ok(())
    }

    /// The member with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownMember`] for an unknown id.
    pub fn member(&self, id: MemberId) -> Result<&Member> {
        self.members.get(id.0).ok_or(FloorError::UnknownMember(id))
    }

    /// The group with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown id.
    pub fn group(&self, id: GroupId) -> Result<&Group> {
        self.groups.get(id.0).ok_or(FloorError::UnknownGroup(id))
    }

    /// Changes the floor control mode of a group.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group.
    pub fn set_mode(&mut self, group: GroupId, mode: FcmMode) -> Result<()> {
        let g = self
            .groups
            .get_mut(group.0)
            .ok_or(FloorError::UnknownGroup(group))?;
        g.mode = mode;
        Ok(())
    }

    /// The floor token of an Equal Control group.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group.
    pub fn token(&self, group: GroupId) -> Result<&FloorToken> {
        self.group(group)?;
        Ok(self.tokens.get(&group).expect("every group has a token"))
    }

    /// Every group's floor token, in group-id order.
    pub fn tokens_iter(&self) -> impl Iterator<Item = (GroupId, &FloorToken)> {
        self.tokens.iter().map(|(&g, t)| (g, t))
    }

    /// Exports the complete live floor state of one group — roster, mode,
    /// chair and token (holder + queue) — for a live migration to another
    /// arbiter. The export is a copy; this arbiter's state is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group.
    pub fn export_group_floor(&self, group: GroupId) -> Result<GroupFloorExport> {
        let g = self.group(group)?;
        Ok(GroupFloorExport {
            name: g.name.clone(),
            mode: g.mode,
            members: g.members().collect(),
            chair: g.chair,
            token: self.token(group)?.clone(),
        })
    }

    /// Replaces a group's floor token with imported state — the destination
    /// half of a live migration ([`crate::ArbiterEvent::RestoreToken`]). The
    /// imported token is validated so the Z-spec invariants
    /// ([`FloorArbiter::check_invariants`]) cannot be violated by a restore:
    /// the holder and every queued member must belong to the group, the
    /// queue must be duplicate-free, and the holder must not also be queued.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group,
    /// [`FloorError::NotAMember`] when the holder or a queued member is not
    /// in the group, and [`FloorError::CorruptSnapshot`] for a structurally
    /// unsound queue. A failed restore leaves the existing token untouched.
    pub fn restore_token(&mut self, group: GroupId, token: FloorToken) -> Result<()> {
        let g = self.group(group)?;
        if let Some(holder) = token.holder() {
            if !g.contains(holder) {
                return Err(FloorError::NotAMember {
                    member: holder,
                    group,
                });
            }
        }
        let mut seen = BTreeSet::new();
        for queued in token.queue() {
            if !g.contains(queued) {
                return Err(FloorError::NotAMember {
                    member: queued,
                    group,
                });
            }
            if Some(queued) == token.holder() || !seen.insert(queued) {
                return Err(FloorError::CorruptSnapshot(format!(
                    "imported token for {group} queues {queued} unsoundly"
                )));
            }
        }
        self.tokens.insert(group, token);
        Ok(())
    }

    /// Sets a group's session chair to imported state — the destination half
    /// of a live migration ([`crate::ArbiterEvent::RestoreChair`]). Needed
    /// because the ordinary add/join path only elects a chair by role, while
    /// an exported group's chair may be any member (sub-groups are chaired
    /// by their inviter).
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownGroup`] for an unknown group and
    /// [`FloorError::NotAMember`] when the chair is not in the group; a
    /// failed restore leaves the existing chair untouched.
    pub fn restore_chair(&mut self, group: GroupId, chair: Option<MemberId>) -> Result<()> {
        let g = self.group(group)?;
        if let Some(chair) = chair {
            if !g.contains(chair) {
                return Err(FloorError::NotAMember {
                    member: chair,
                    group,
                });
            }
        }
        self.groups[group.0].chair = chair;
        Ok(())
    }

    /// Whether `member` may currently deliver content (chat, whiteboard,
    /// annotations) in `group` under its floor control mode, without changing
    /// any arbitration state.
    ///
    /// Free Access always permits delivery; Equal Control requires holding
    /// the floor token; the sub-session modes (Group Discussion / Direct
    /// Contact) follow the free-access rule inside the sub-group, because the
    /// moderation already happened when the sub-group was spawned by
    /// invitation. Unknown groups and non-members never deliver.
    pub fn may_deliver(&self, group: GroupId, member: MemberId) -> bool {
        let Ok(g) = self.group(group) else {
            return false;
        };
        if !g.contains(member) {
            return false;
        }
        match g.mode {
            FcmMode::FreeAccess => true,
            FcmMode::EqualControl => self
                .token(group)
                .map(|t| t.may_speak(member))
                .unwrap_or(false),
            FcmMode::GroupDiscussion | FcmMode::DirectContact => true,
        }
    }

    /// Number of groups (including sub-groups).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of members across all groups.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    // ----- invitations ------------------------------------------------------

    /// A member invites another into a new private sub-group (Group
    /// Discussion) or a two-person direct-contact window. Returns the new
    /// sub-group and the pending invitation.
    ///
    /// # Errors
    ///
    /// Returns unknown-identifier errors, and
    /// [`FloorError::NotAMember`] when either party is not in the parent
    /// group.
    pub fn invite(
        &mut self,
        parent: GroupId,
        from: MemberId,
        to: MemberId,
        mode: FcmMode,
    ) -> Result<(GroupId, InvitationId)> {
        let parent_group = self.group(parent)?;
        if !parent_group.contains(from) {
            return Err(FloorError::NotAMember {
                member: from,
                group: parent,
            });
        }
        if !parent_group.contains(to) {
            return Err(FloorError::NotAMember {
                member: to,
                group: parent,
            });
        }
        let from_name = self.member(from)?.name.clone();
        let name = format!("{}-{}", from_name, mode);
        self.groups.push(Group::subgroup(name, mode, parent, from));
        let sub = GroupId(self.groups.len() - 1);
        self.tokens.insert(sub, FloorToken::new());
        self.invitations.push(Invitation::new(from, to, sub));
        Ok((sub, InvitationId(self.invitations.len() - 1)))
    }

    /// The invitee answers an invitation. Accepting joins them to the
    /// sub-group.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownInvitation`],
    /// [`FloorError::NotTheInvitee`] when somebody else answers, and
    /// [`FloorError::AlreadyAnswered`] when the invitation is not pending.
    pub fn respond_invitation(
        &mut self,
        invitation: InvitationId,
        responder: MemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        let inv = self
            .invitations
            .get_mut(invitation.0)
            .ok_or(FloorError::UnknownInvitation(invitation))?;
        if inv.to != responder {
            return Err(FloorError::NotTheInvitee(responder));
        }
        if !inv.is_pending() {
            return Err(FloorError::AlreadyAnswered(invitation));
        }
        inv.status = if accept {
            InvitationStatus::Accepted
        } else {
            InvitationStatus::Declined
        };
        let status = inv.status;
        let subgroup = inv.subgroup;
        if accept {
            self.join_group(subgroup, responder)?;
        }
        Ok(status)
    }

    /// The invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: InvitationId) -> Result<&Invitation> {
        self.invitations
            .get(id.0)
            .ok_or(FloorError::UnknownInvitation(id))
    }

    /// Number of invitations ever issued (answered ones are kept).
    pub fn invitation_count(&self) -> usize {
        self.invitations.len()
    }

    // ----- arbitration ------------------------------------------------------

    /// Runs `FCM-Arbitrate` for one request.
    ///
    /// # Errors
    ///
    /// Returns unknown-identifier errors and
    /// [`FloorError::MissingDestination`] for a direct-contact request with
    /// no destination. Policy outcomes (denied, queued, aborted) are returned
    /// inside [`ArbitrationOutcome`], not as errors.
    pub fn arbitrate(&mut self, request: &FloorRequest) -> Result<ArbitrationOutcome> {
        let group = self.group(request.group)?.clone();
        let member = self.member(request.member)?.clone();

        // Membership check comes first in the Z specification: a request from
        // outside the group aborts regardless of resources.
        if !group.contains(request.member) {
            self.stats.aborted += 1;
            return Ok(ArbitrationOutcome::Aborted {
                reason: AbortReason::NotJoined,
            });
        }

        // Resource regime.
        let level = self.thresholds.classify(&self.resource);
        if level == ResourceLevel::Critical {
            self.stats.aborted += 1;
            return Ok(ArbitrationOutcome::Aborted {
                reason: AbortReason::ResourceCritical,
            });
        }

        // Token bookkeeping requests are handled before the mode dispatch.
        match request.kind {
            RequestKind::ReleaseFloor => {
                let token = self.tokens.get_mut(&request.group).expect("token exists");
                return match token.release(request.member) {
                    Ok(next) => {
                        self.stats.granted += 1;
                        Ok(ArbitrationOutcome::Granted {
                            speakers: next.into_iter().collect(),
                            suspensions: Vec::new(),
                        })
                    }
                    Err(_) => {
                        self.stats.denied += 1;
                        Ok(ArbitrationOutcome::Denied {
                            reason: DenialReason::NotTokenHolder,
                        })
                    }
                };
            }
            RequestKind::PassFloor { to } => {
                let token = self.tokens.get_mut(&request.group).expect("token exists");
                return match token.pass(request.member, to) {
                    Ok(()) => {
                        self.stats.granted += 1;
                        Ok(ArbitrationOutcome::Granted {
                            speakers: vec![to],
                            suspensions: Vec::new(),
                        })
                    }
                    Err(_) => {
                        self.stats.denied += 1;
                        Ok(ArbitrationOutcome::Denied {
                            reason: DenialReason::NotTokenHolder,
                        })
                    }
                };
            }
            RequestKind::Speak | RequestKind::DirectContact { .. } => {}
        }

        // Priority predicate: every mode except Free Access requires the
        // minimum priority.
        if group.mode.requires_priority() && !member.meets_minimum_priority() {
            self.stats.denied += 1;
            return Ok(ArbitrationOutcome::Denied {
                reason: DenialReason::InsufficientPriority,
            });
        }

        // Mode dispatch (Media-Available).
        let speakers: Vec<MemberId> = match (group.mode, request.kind) {
            (FcmMode::FreeAccess, _) => group.members().collect(),
            (FcmMode::EqualControl, _) => {
                let token = self.tokens.get_mut(&request.group).expect("token exists");
                if token.request(request.member) {
                    vec![request.member]
                } else {
                    let holder = token.holder().expect("busy token has a holder");
                    let position = token
                        .queue()
                        .position(|m| m == request.member)
                        .map(|p| p + 1)
                        .unwrap_or(0);
                    self.stats.queued += 1;
                    return Ok(ArbitrationOutcome::Queued {
                        current_holder: holder,
                        position,
                    });
                }
            }
            (FcmMode::GroupDiscussion, _) => {
                // Every member of the (private) group with sufficient
                // priority may deliver together.
                let mut speakers = Vec::new();
                for m in group.members() {
                    if self.member(m)?.meets_minimum_priority() {
                        speakers.push(m);
                    }
                }
                speakers
            }
            (FcmMode::DirectContact, RequestKind::DirectContact { to }) => {
                if !group.contains(to) {
                    self.stats.aborted += 1;
                    return Ok(ArbitrationOutcome::Aborted {
                        reason: AbortReason::NotJoined,
                    });
                }
                vec![request.member, to]
            }
            (FcmMode::DirectContact, RequestKind::Speak) => {
                return Err(FloorError::MissingDestination);
            }
            (_, RequestKind::ReleaseFloor | RequestKind::PassFloor { .. }) => unreachable!(),
        };

        // Degraded regime: suspend lower-priority members' media first.
        let suspensions = if level == ResourceLevel::Degraded {
            let demand = Self::member_demand_kbps(&member);
            let candidates: Vec<(MemberId, &Member, u32)> = group
                .members()
                .filter(|&m| m != request.member && !self.suspended.contains(&m))
                .filter_map(|m| {
                    self.members
                        .get(m.0)
                        .map(|mm| (m, mm, Self::member_demand_kbps(mm)))
                })
                .collect();
            let plan =
                plan_suspensions(&candidates, member.priority, demand, self.suspension_order);
            for s in &plan {
                self.suspended.insert(s.member);
            }
            self.stats.suspensions += plan.len() as u64;
            plan
        } else {
            Vec::new()
        };

        self.stats.granted += 1;
        Ok(ArbitrationOutcome::Granted {
            speakers,
            suspensions,
        })
    }

    /// The aggregate bandwidth demand (kbps) of a member's enabled channels.
    fn member_demand_kbps(member: &Member) -> u32 {
        member
            .channels
            .iter()
            .flat_map(|c| c.carries())
            .map(|k| k.default_qos().bandwidth_kbps)
            .sum()
    }

    /// Convenience constructor used by benches and examples: a lecture group
    /// with one teacher (chair) and `students` participants.
    pub fn lecture(students: usize, mode: FcmMode) -> (Self, GroupId, MemberId, Vec<MemberId>) {
        let mut arbiter = FloorArbiter::with_defaults();
        let group = arbiter.create_group("lecture", mode);
        let teacher = arbiter
            .add_member(group, Member::new("teacher", Role::Chair))
            .expect("group exists");
        let student_ids = (0..students)
            .map(|i| {
                arbiter
                    .add_member(
                        group,
                        Member::new(format!("student-{i}"), Role::Participant),
                    )
                    .expect("group exists")
            })
            .collect();
        (arbiter, group, teacher, student_ids)
    }
}

fn bad_tag(expected: &'static str, tag: u8) -> dmps_wire::WireError {
    dmps_wire::WireError::BadToken {
        expected,
        token: tag.to_string(),
    }
}

impl dmps_wire::Wire for RequestKind {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        match self {
            RequestKind::Speak => 0u8.encode(w),
            RequestKind::DirectContact { to } => {
                1u8.encode(w);
                to.encode(w);
            }
            RequestKind::ReleaseFloor => 2u8.encode(w),
            RequestKind::PassFloor { to } => {
                3u8.encode(w);
                to.encode(w);
            }
        }
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(RequestKind::Speak),
            1 => Ok(RequestKind::DirectContact {
                to: MemberId::decode(r)?,
            }),
            2 => Ok(RequestKind::ReleaseFloor),
            3 => Ok(RequestKind::PassFloor {
                to: MemberId::decode(r)?,
            }),
            other => Err(bad_tag("RequestKind tag", other)),
        }
    }
}

impl dmps_wire::Wire for FloorRequest {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.group.encode(w);
        self.member.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(FloorRequest {
            group: GroupId::decode(r)?,
            member: MemberId::decode(r)?,
            kind: RequestKind::decode(r)?,
        })
    }
}

impl dmps_wire::Wire for DenialReason {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        let tag: u8 = match self {
            DenialReason::InsufficientPriority => 0,
            DenialReason::FloorBusy => 1,
            DenialReason::NotTokenHolder => 2,
        };
        tag.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(DenialReason::InsufficientPriority),
            1 => Ok(DenialReason::FloorBusy),
            2 => Ok(DenialReason::NotTokenHolder),
            other => Err(bad_tag("DenialReason tag", other)),
        }
    }
}

impl dmps_wire::Wire for AbortReason {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        let tag: u8 = match self {
            AbortReason::NotJoined => 0,
            AbortReason::ResourceCritical => 1,
        };
        tag.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(AbortReason::NotJoined),
            1 => Ok(AbortReason::ResourceCritical),
            other => Err(bad_tag("AbortReason tag", other)),
        }
    }
}

impl dmps_wire::Wire for ArbitrationOutcome {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        match self {
            ArbitrationOutcome::Granted {
                speakers,
                suspensions,
            } => {
                0u8.encode(w);
                speakers.encode(w);
                suspensions.encode(w);
            }
            ArbitrationOutcome::Queued {
                current_holder,
                position,
            } => {
                1u8.encode(w);
                current_holder.encode(w);
                position.encode(w);
            }
            ArbitrationOutcome::Denied { reason } => {
                2u8.encode(w);
                reason.encode(w);
            }
            ArbitrationOutcome::Aborted { reason } => {
                3u8.encode(w);
                reason.encode(w);
            }
        }
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(ArbitrationOutcome::Granted {
                speakers: Vec::<MemberId>::decode(r)?,
                suspensions: Vec::<Suspension>::decode(r)?,
            }),
            1 => Ok(ArbitrationOutcome::Queued {
                current_holder: MemberId::decode(r)?,
                position: usize::decode(r)?,
            }),
            2 => Ok(ArbitrationOutcome::Denied {
                reason: DenialReason::decode(r)?,
            }),
            3 => Ok(ArbitrationOutcome::Aborted {
                reason: AbortReason::decode(r)?,
            }),
            other => Err(bad_tag("ArbitrationOutcome tag", other)),
        }
    }
}

impl dmps_wire::Wire for ArbiterStats {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.granted.encode(w);
        self.queued.encode(w);
        self.denied.encode(w);
        self.aborted.encode(w);
        self.suspensions.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(ArbiterStats {
            granted: u64::decode(r)?,
            queued: u64::decode(r)?,
            denied: u64::decode(r)?,
            aborted: u64::decode(r)?,
            suspensions: u64::decode(r)?,
        })
    }
}

/// The wire payload of an [`ArbiterDelta`](crate::snapshot::ArbiterDelta):
/// full replacement values for every dirty entry (ascending id order) plus
/// the small global fields shipped wholesale.
struct DeltaPayload {
    members: Vec<(MemberId, Member)>,
    groups: Vec<(GroupId, Group, FloorToken)>,
    invitations: Vec<(InvitationId, Invitation)>,
    resource: Resource,
    thresholds: ResourceThresholds,
    suspension_order: SuspensionOrder,
    suspended: BTreeSet<MemberId>,
    stats: ArbiterStats,
}

impl dmps_wire::Wire for DeltaPayload {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.members.encode(w);
        self.groups.encode(w);
        self.invitations.encode(w);
        self.resource.encode(w);
        self.thresholds.encode(w);
        self.suspension_order.encode(w);
        self.suspended.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(DeltaPayload {
            members: Vec::<(MemberId, Member)>::decode(r)?,
            groups: Vec::<(GroupId, Group, FloorToken)>::decode(r)?,
            invitations: Vec::<(InvitationId, Invitation)>::decode(r)?,
            resource: Resource::decode(r)?,
            thresholds: ResourceThresholds::decode(r)?,
            suspension_order: SuspensionOrder::decode(r)?,
            suspended: BTreeSet::<MemberId>::decode(r)?,
            stats: ArbiterStats::decode(r)?,
        })
    }
}

impl FloorArbiter {
    /// Records which identifiers a successfully applied event dirtied. The
    /// owning shard calls this right after [`FloorArbiter::apply`] and feeds
    /// the accumulated set to [`FloorArbiter::export_delta`] at the next
    /// checkpoint.
    ///
    /// Global fields (resource, thresholds, suspension order, the suspended
    /// set, stats) need no marking: every delta ships them wholesale, they
    /// are a few dozen bytes.
    pub fn mark_touched(
        &self,
        event: &crate::snapshot::ArbiterEvent,
        outcome: &crate::snapshot::EventOutcome,
        dirty: &mut crate::snapshot::ArbiterDirty,
    ) {
        use crate::snapshot::{ArbiterEvent, EventOutcome};
        match event {
            ArbiterEvent::CreateGroup { .. } => {
                if let EventOutcome::GroupCreated(g) = outcome {
                    dirty.groups.insert(*g);
                }
            }
            ArbiterEvent::AddMember { group, .. } => {
                if let EventOutcome::MemberAdded(m) = outcome {
                    dirty.members.insert(*m);
                }
                dirty.groups.insert(*group);
            }
            ArbiterEvent::JoinGroup { group, .. }
            | ArbiterEvent::LeaveGroup { group, .. }
            | ArbiterEvent::SetMode { group, .. }
            | ArbiterEvent::RestoreToken { group, .. }
            | ArbiterEvent::RestoreChair { group, .. } => {
                dirty.groups.insert(*group);
            }
            // Arbitration mutates the request group's token (and possibly
            // the global suspended set / stats, which ship wholesale).
            ArbiterEvent::Arbitrate { request } => {
                dirty.groups.insert(request.group);
            }
            // Pure-global mutations: nothing to mark.
            ArbiterEvent::SetResource { .. } | ArbiterEvent::SetSuspensionOrder { .. } => {}
            // Invite creates the sub-group + invitation; the parent group is
            // validated but never mutated.
            ArbiterEvent::Invite { .. } => {
                if let EventOutcome::SubgroupCreated(sub, inv) = outcome {
                    dirty.groups.insert(*sub);
                    dirty.invitations.insert(*inv);
                }
            }
            // Answering flips the invitation status and (on accept) joins
            // the responder to the sub-group.
            ArbiterEvent::RespondInvitation { invitation, .. } => {
                dirty.invitations.insert(*invitation);
                if let Ok(inv) = self.invitation(*invitation) {
                    dirty.groups.insert(inv.subgroup);
                }
            }
        }
    }

    /// Serializes a differential snapshot: the current values of every dirty
    /// entry plus the global fields. `applied_seq` is the log position this
    /// delta brings a restorer up to.
    pub fn export_delta(
        &self,
        applied_seq: u64,
        dirty: &crate::snapshot::ArbiterDirty,
    ) -> crate::snapshot::ArbiterDelta {
        let payload = DeltaPayload {
            members: dirty
                .members
                .iter()
                .map(|&id| (id, self.members[id.0].clone()))
                .collect(),
            groups: dirty
                .groups
                .iter()
                .map(|&id| {
                    let token = self
                        .tokens
                        .get(&id)
                        .expect("every group has a token")
                        .clone();
                    (id, self.groups[id.0].clone(), token)
                })
                .collect(),
            invitations: dirty
                .invitations
                .iter()
                .map(|&id| (id, self.invitations[id.0].clone()))
                .collect(),
            resource: self.resource,
            thresholds: self.thresholds,
            suspension_order: self.suspension_order,
            suspended: self.suspended.clone(),
            stats: self.stats,
        };
        crate::snapshot::ArbiterDelta {
            applied_seq,
            data: dmps_wire::to_string(&payload),
        }
    }

    /// Folds one differential snapshot into this arbiter: dirty entries
    /// replace their slot (or extend the dense vector by exactly one — ids
    /// are allocated densely in order, so a delta's new entries always land
    /// at the end), and the global fields are replaced outright.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::CorruptSnapshot`] when the payload does not
    /// decode or an entry id skips past the end of its vector (the delta was
    /// applied out of chain order).
    pub fn apply_delta(&mut self, delta: &crate::snapshot::ArbiterDelta) -> Result<()> {
        use std::cmp::Ordering;
        let payload: DeltaPayload = dmps_wire::from_str(&delta.data)
            .map_err(|e| FloorError::CorruptSnapshot(e.to_string()))?;
        for (id, member) in payload.members {
            match id.0.cmp(&self.members.len()) {
                Ordering::Less => self.members[id.0] = member,
                Ordering::Equal => self.members.push(member),
                Ordering::Greater => {
                    return Err(FloorError::CorruptSnapshot(format!(
                        "delta member {id} skips past {} present",
                        self.members.len()
                    )))
                }
            }
        }
        for (id, group, token) in payload.groups {
            match id.0.cmp(&self.groups.len()) {
                Ordering::Less => self.groups[id.0] = group,
                Ordering::Equal => self.groups.push(group),
                Ordering::Greater => {
                    return Err(FloorError::CorruptSnapshot(format!(
                        "delta group {id} skips past {} present",
                        self.groups.len()
                    )))
                }
            }
            self.tokens.insert(id, token);
        }
        for (id, invitation) in payload.invitations {
            match id.0.cmp(&self.invitations.len()) {
                Ordering::Less => self.invitations[id.0] = invitation,
                Ordering::Equal => self.invitations.push(invitation),
                Ordering::Greater => {
                    return Err(FloorError::CorruptSnapshot(format!(
                        "delta invitation {id} skips past {} present",
                        self.invitations.len()
                    )))
                }
            }
        }
        self.resource = payload.resource;
        self.thresholds = payload.thresholds;
        self.suspension_order = payload.suspension_order;
        self.suspended = payload.suspended;
        self.stats = payload.stats;
        Ok(())
    }
}

impl dmps_wire::Wire for FloorArbiter {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.members.encode(w);
        self.groups.encode(w);
        self.tokens.encode(w);
        self.invitations.encode(w);
        self.resource.encode(w);
        self.thresholds.encode(w);
        self.suspension_order.encode(w);
        self.suspended.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(FloorArbiter {
            members: Vec::<Member>::decode(r)?,
            groups: Vec::<Group>::decode(r)?,
            tokens: BTreeMap::<GroupId, FloorToken>::decode(r)?,
            invitations: Vec::<Invitation>::decode(r)?,
            resource: Resource::decode(r)?,
            thresholds: ResourceThresholds::decode(r)?,
            suspension_order: SuspensionOrder::decode(r)?,
            suspended: BTreeSet::<MemberId>::decode(r)?,
            stats: ArbiterStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_access_grants_everyone() {
        let (mut arbiter, group, teacher, students) = FloorArbiter::lecture(3, FcmMode::FreeAccess);
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, students[0]))
            .unwrap();
        match outcome {
            ArbitrationOutcome::Granted {
                speakers,
                suspensions,
            } => {
                assert_eq!(speakers.len(), 4, "teacher + 3 students may all deliver");
                assert!(speakers.contains(&teacher));
                assert!(suspensions.is_empty());
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(arbiter.stats().granted, 1);
    }

    #[test]
    fn equal_control_serializes_speakers_through_the_token() {
        let (mut arbiter, group, _teacher, students) =
            FloorArbiter::lecture(3, FcmMode::EqualControl);
        let first = arbiter
            .arbitrate(&FloorRequest::speak(group, students[0]))
            .unwrap();
        assert!(first.is_granted());
        // Second student queues behind the first.
        let second = arbiter
            .arbitrate(&FloorRequest::speak(group, students[1]))
            .unwrap();
        match second {
            ArbitrationOutcome::Queued {
                current_holder,
                position,
            } => {
                assert_eq!(current_holder, students[0]);
                assert_eq!(position, 1);
            }
            other => panic!("expected queue, got {other:?}"),
        }
        // Releasing hands the floor to the queued student.
        let release = arbiter
            .arbitrate(&FloorRequest::release_floor(group, students[0]))
            .unwrap();
        match release {
            ArbitrationOutcome::Granted { speakers, .. } => assert_eq!(speakers, vec![students[1]]),
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(arbiter.token(group).unwrap().may_speak(students[1]));
        assert_eq!(arbiter.stats().queued, 1);
    }

    #[test]
    fn pass_floor_jumps_to_named_member() {
        let (mut arbiter, group, teacher, students) =
            FloorArbiter::lecture(2, FcmMode::EqualControl);
        arbiter
            .arbitrate(&FloorRequest::speak(group, teacher))
            .unwrap();
        arbiter
            .arbitrate(&FloorRequest::speak(group, students[0]))
            .unwrap();
        let outcome = arbiter
            .arbitrate(&FloorRequest::pass_floor(group, teacher, students[1]))
            .unwrap();
        assert!(outcome.is_granted());
        assert!(arbiter.token(group).unwrap().may_speak(students[1]));
        // A non-holder cannot pass.
        let bad = arbiter
            .arbitrate(&FloorRequest::pass_floor(group, students[0], teacher))
            .unwrap();
        assert_eq!(
            bad,
            ArbitrationOutcome::Denied {
                reason: DenialReason::NotTokenHolder
            }
        );
    }

    #[test]
    fn observers_are_denied_in_controlled_modes_but_not_free_access() {
        let mut arbiter = FloorArbiter::with_defaults();
        let group = arbiter.create_group("lecture", FcmMode::EqualControl);
        let observer = arbiter
            .add_member(group, Member::new("guest", Role::Observer))
            .unwrap();
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, observer))
            .unwrap();
        assert_eq!(
            outcome,
            ArbitrationOutcome::Denied {
                reason: DenialReason::InsufficientPriority
            }
        );
        arbiter.set_mode(group, FcmMode::FreeAccess).unwrap();
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, observer))
            .unwrap();
        assert!(outcome.is_granted());
    }

    #[test]
    fn non_member_request_aborts() {
        let (mut arbiter, group, ..) = FloorArbiter::lecture(1, FcmMode::FreeAccess);
        let other_group = arbiter.create_group("other", FcmMode::FreeAccess);
        let outsider = arbiter
            .add_member(other_group, Member::new("outsider", Role::Participant))
            .unwrap();
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, outsider))
            .unwrap();
        assert_eq!(
            outcome,
            ArbitrationOutcome::Aborted {
                reason: AbortReason::NotJoined
            }
        );
        assert_eq!(arbiter.stats().aborted, 1);
    }

    #[test]
    fn critical_resources_abort_everything() {
        let (mut arbiter, group, teacher, _) = FloorArbiter::lecture(2, FcmMode::FreeAccess);
        arbiter.set_resource(Resource::new(0.05, 1.0, 1.0));
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, teacher))
            .unwrap();
        assert_eq!(
            outcome,
            ArbitrationOutcome::Aborted {
                reason: AbortReason::ResourceCritical
            }
        );
    }

    #[test]
    fn degraded_resources_suspend_lower_priority_members() {
        let (mut arbiter, group, teacher, students) = FloorArbiter::lecture(3, FcmMode::FreeAccess);
        arbiter.set_resource(Resource::new(0.3, 1.0, 1.0));
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, teacher))
            .unwrap();
        assert!(outcome.is_granted());
        let suspensions = outcome.suspensions();
        assert!(
            !suspensions.is_empty(),
            "students should be suspended to make room"
        );
        assert!(suspensions.iter().all(|s| s.priority < 3));
        assert!(suspensions.iter().all(|s| students.contains(&s.member)));
        let suspended: Vec<_> = arbiter.suspended_members().collect();
        assert_eq!(suspended.len(), suspensions.len());
        // Recovery clears the suspensions.
        arbiter.set_resource(Resource::full());
        assert_eq!(arbiter.suspended_members().count(), 0);
    }

    #[test]
    fn student_request_in_degraded_mode_cannot_suspend_the_teacher() {
        let (mut arbiter, group, teacher, students) = FloorArbiter::lecture(2, FcmMode::FreeAccess);
        arbiter.set_resource(Resource::new(0.3, 1.0, 1.0));
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(group, students[0]))
            .unwrap();
        assert!(outcome.is_granted());
        assert!(
            outcome.suspensions().iter().all(|s| s.member != teacher),
            "the chair outranks participants"
        );
    }

    #[test]
    fn group_discussion_grants_all_qualified_subgroup_members() {
        let (mut arbiter, group, teacher, students) = FloorArbiter::lecture(3, FcmMode::FreeAccess);
        let (sub, inv) = arbiter
            .invite(group, students[0], students[1], FcmMode::GroupDiscussion)
            .unwrap();
        assert_eq!(
            arbiter.respond_invitation(inv, students[1], true).unwrap(),
            InvitationStatus::Accepted
        );
        let outcome = arbiter
            .arbitrate(&FloorRequest::speak(sub, students[0]))
            .unwrap();
        match outcome {
            ArbitrationOutcome::Granted { speakers, .. } => {
                assert_eq!(speakers.len(), 2);
                assert!(speakers.contains(&students[0]));
                assert!(speakers.contains(&students[1]));
                assert!(!speakers.contains(&teacher));
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(arbiter.group(sub).unwrap().is_subgroup());
        assert_eq!(arbiter.group(sub).unwrap().chair, Some(students[0]));
    }

    #[test]
    fn declined_invitation_does_not_join() {
        let (mut arbiter, group, _teacher, students) =
            FloorArbiter::lecture(2, FcmMode::FreeAccess);
        let (sub, inv) = arbiter
            .invite(group, students[0], students[1], FcmMode::GroupDiscussion)
            .unwrap();
        assert_eq!(
            arbiter.respond_invitation(inv, students[1], false).unwrap(),
            InvitationStatus::Declined
        );
        assert!(!arbiter.group(sub).unwrap().contains(students[1]));
        // Answering twice is an error, as is answering someone else's invite.
        assert_eq!(
            arbiter
                .respond_invitation(inv, students[1], true)
                .unwrap_err(),
            FloorError::AlreadyAnswered(inv)
        );
        let (_, inv2) = arbiter
            .invite(group, students[0], students[1], FcmMode::GroupDiscussion)
            .unwrap();
        assert_eq!(
            arbiter
                .respond_invitation(inv2, students[0], true)
                .unwrap_err(),
            FloorError::NotTheInvitee(students[0])
        );
        assert!(arbiter.invitation(inv2).unwrap().is_pending());
    }

    #[test]
    fn direct_contact_grants_exactly_the_pair() {
        let (mut arbiter, group, _teacher, students) =
            FloorArbiter::lecture(3, FcmMode::FreeAccess);
        let (sub, inv) = arbiter
            .invite(group, students[0], students[2], FcmMode::DirectContact)
            .unwrap();
        arbiter.respond_invitation(inv, students[2], true).unwrap();
        let outcome = arbiter
            .arbitrate(&FloorRequest::direct_contact(sub, students[0], students[2]))
            .unwrap();
        match outcome {
            ArbitrationOutcome::Granted { speakers, .. } => {
                assert_eq!(speakers, vec![students[0], students[2]]);
            }
            other => panic!("expected grant, got {other:?}"),
        }
        // Speak without a destination is an API misuse error.
        assert_eq!(
            arbiter
                .arbitrate(&FloorRequest::speak(sub, students[0]))
                .unwrap_err(),
            FloorError::MissingDestination
        );
        // Direct contact with somebody outside the sub-group aborts.
        let outcome = arbiter
            .arbitrate(&FloorRequest::direct_contact(sub, students[0], students[1]))
            .unwrap();
        assert_eq!(
            outcome,
            ArbitrationOutcome::Aborted {
                reason: AbortReason::NotJoined
            }
        );
    }

    #[test]
    fn invite_requires_both_parties_in_parent_group() {
        let (mut arbiter, group, _teacher, students) =
            FloorArbiter::lecture(1, FcmMode::FreeAccess);
        let other = arbiter.create_group("other", FcmMode::FreeAccess);
        let stranger = arbiter
            .add_member(other, Member::new("stranger", Role::Participant))
            .unwrap();
        assert!(matches!(
            arbiter.invite(group, students[0], stranger, FcmMode::GroupDiscussion),
            Err(FloorError::NotAMember { .. })
        ));
        assert!(matches!(
            arbiter.invite(group, stranger, students[0], FcmMode::GroupDiscussion),
            Err(FloorError::NotAMember { .. })
        ));
    }

    #[test]
    fn leaving_a_group_releases_the_token() {
        let (mut arbiter, group, _teacher, students) =
            FloorArbiter::lecture(2, FcmMode::EqualControl);
        arbiter
            .arbitrate(&FloorRequest::speak(group, students[0]))
            .unwrap();
        arbiter
            .arbitrate(&FloorRequest::speak(group, students[1]))
            .unwrap();
        arbiter.leave_group(group, students[0]).unwrap();
        assert!(!arbiter.group(group).unwrap().contains(students[0]));
        assert!(arbiter.token(group).unwrap().may_speak(students[1]));
    }

    #[test]
    fn failed_add_member_leaves_state_untouched() {
        let mut arbiter = FloorArbiter::with_defaults();
        let before = arbiter.member_count();
        assert_eq!(
            arbiter
                .add_member(GroupId(7), Member::new("ghost", Role::Participant))
                .unwrap_err(),
            FloorError::UnknownGroup(GroupId(7))
        );
        assert_eq!(
            arbiter.member_count(),
            before,
            "a rejected add must not consume a dense member id (log-replay determinism)"
        );
    }

    #[test]
    fn export_and_restore_move_live_token_state_between_arbiters() {
        let (mut source, group, teacher, students) =
            FloorArbiter::lecture(3, FcmMode::EqualControl);
        source
            .arbitrate(&FloorRequest::speak(group, students[0]))
            .unwrap();
        source
            .arbitrate(&FloorRequest::speak(group, students[1]))
            .unwrap();
        source
            .arbitrate(&FloorRequest::speak(group, teacher))
            .unwrap();
        let export = source.export_group_floor(group).unwrap();
        assert_eq!(export.mode, FcmMode::EqualControl);
        assert_eq!(export.members.len(), 4);
        assert_eq!(export.chair, Some(teacher));
        assert_eq!(export.token.holder(), Some(students[0]));
        assert_eq!(
            export.token.queue().collect::<Vec<_>>(),
            vec![students[1], teacher]
        );
        assert!(source.export_group_floor(GroupId(9)).is_err());
        // A destination arbiter recreates the group and installs the token
        // mid-arbitration: holder, queue order and fairness counter survive.
        let mut destination = FloorArbiter::with_defaults();
        let new_group = destination.create_group(&export.name, export.mode);
        for m in 0..4 {
            destination
                .add_member(new_group, Member::new(format!("m{m}"), Role::Participant))
                .unwrap();
        }
        destination
            .restore_token(new_group, export.token.clone())
            .unwrap();
        destination.check_invariants().unwrap();
        let token = destination.token(new_group).unwrap();
        assert_eq!(token.holder(), Some(students[0]));
        assert_eq!(token.grant_count(), export.token.grant_count());
        // The queued member is promoted when the migrated holder releases —
        // arbitration continues exactly where the source stopped.
        let next = destination
            .arbitrate(&FloorRequest::release_floor(new_group, students[0]))
            .unwrap();
        assert!(
            matches!(next, ArbitrationOutcome::Granted { ref speakers, .. }
            if *speakers == vec![students[1]])
        );
    }

    #[test]
    fn restore_token_rejects_unsound_imports() {
        let (mut arbiter, group, _teacher, students) =
            FloorArbiter::lecture(2, FcmMode::EqualControl);
        let before = arbiter.token(group).unwrap().clone();
        // A holder outside the group.
        assert!(matches!(
            arbiter.restore_token(group, FloorToken::from_parts(Some(MemberId(42)), [], 1)),
            Err(FloorError::NotAMember { .. })
        ));
        // A queued member outside the group.
        assert!(matches!(
            arbiter.restore_token(
                group,
                FloorToken::from_parts(Some(students[0]), [MemberId(42)], 1)
            ),
            Err(FloorError::NotAMember { .. })
        ));
        // The holder also queued.
        assert!(matches!(
            arbiter.restore_token(
                group,
                FloorToken::from_parts(Some(students[0]), [students[0]], 1)
            ),
            Err(FloorError::CorruptSnapshot(_))
        ));
        // A duplicated queue entry.
        assert!(matches!(
            arbiter.restore_token(
                group,
                FloorToken::from_parts(None, [students[1], students[1]], 1)
            ),
            Err(FloorError::CorruptSnapshot(_))
        ));
        // An unknown group.
        assert!(arbiter
            .restore_token(GroupId(9), FloorToken::new())
            .is_err());
        // Every rejected restore left the live token untouched.
        assert_eq!(arbiter.token(group).unwrap(), &before);
        arbiter.check_invariants().unwrap();
    }

    #[test]
    fn restore_chair_reseats_only_members() {
        let (mut arbiter, group, teacher, students) = FloorArbiter::lecture(2, FcmMode::FreeAccess);
        assert_eq!(arbiter.group(group).unwrap().chair, Some(teacher));
        // Any member may be re-seated (sub-groups are chaired by their
        // inviter regardless of role), and `None` clears the seat.
        arbiter.restore_chair(group, Some(students[1])).unwrap();
        assert_eq!(arbiter.group(group).unwrap().chair, Some(students[1]));
        arbiter.restore_chair(group, None).unwrap();
        assert_eq!(arbiter.group(group).unwrap().chair, None);
        // A non-member or unknown group is rejected without touching state.
        assert!(matches!(
            arbiter.restore_chair(group, Some(MemberId(42))),
            Err(FloorError::NotAMember { .. })
        ));
        assert!(arbiter.restore_chair(GroupId(9), None).is_err());
        assert_eq!(arbiter.group(group).unwrap().chair, None);
    }

    #[test]
    fn counts_and_accessors() {
        let (arbiter, group, teacher, students) = FloorArbiter::lecture(5, FcmMode::FreeAccess);
        assert_eq!(arbiter.group_count(), 1);
        assert_eq!(arbiter.member_count(), 6);
        assert_eq!(arbiter.group(group).unwrap().len(), 6);
        assert_eq!(arbiter.group(group).unwrap().chair, Some(teacher));
        assert_eq!(arbiter.member(students[4]).unwrap().name, "student-4");
        assert!(arbiter.member(MemberId(99)).is_err());
        assert!(arbiter.group(GroupId(99)).is_err());
        assert!(arbiter.thresholds().alpha() > arbiter.thresholds().beta());
        assert_eq!(arbiter.resource(), Resource::full());
    }
}
