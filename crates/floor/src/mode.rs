//! The four floor control modes and the policy factors of the Z
//! specification.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The paper's four floor control modes (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FcmMode {
    /// *"Everyone (session chair and participants) can send the message to
    /// the message-window or whiteboard. This mode is like general discussion
    /// with no privacy and priority."*
    FreeAccess,
    /// *"There is only one (session chair or participant) \[who\] can deliver
    /// at the same time until the floor control token \[is\] passed by the
    /// holder."*
    EqualControl,
    /// *"A user can create a new group to invite others [...] all
    /// participants in the same group can send message together; we regard it
    /// as \[a\] private communication group."*
    GroupDiscussion,
    /// *"Two people can communicate directly in a private window and
    /// communicate with others via free access, equal control, and direct
    /// contact at the same time."*
    DirectContact,
}

impl FcmMode {
    /// All four modes, in the paper's order.
    pub fn all() -> [FcmMode; 4] {
        [
            FcmMode::FreeAccess,
            FcmMode::EqualControl,
            FcmMode::GroupDiscussion,
            FcmMode::DirectContact,
        ]
    }

    /// Whether the mode requires the requesting member to hold at least the
    /// paper's minimum priority (the Z predicates add `Priority ≥ 2` to every
    /// mode except Free Access).
    pub fn requires_priority(self) -> bool {
        !matches!(self, FcmMode::FreeAccess)
    }

    /// Whether the mode serializes speakers with a token.
    pub fn uses_token(self) -> bool {
        matches!(self, FcmMode::EqualControl)
    }

    /// Whether the mode operates on a private sub-group created by
    /// invitation.
    pub fn uses_subgroup(self) -> bool {
        matches!(self, FcmMode::GroupDiscussion | FcmMode::DirectContact)
    }

    /// The minimum priority required by the Z predicates (2 for every mode
    /// that checks priority).
    pub const MIN_PRIORITY: i32 = 2;
}

impl fmt::Display for FcmMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FcmMode::FreeAccess => "free-access",
            FcmMode::EqualControl => "equal-control",
            FcmMode::GroupDiscussion => "group-discussion",
            FcmMode::DirectContact => "direct-contact",
        };
        f.write_str(s)
    }
}

impl dmps_wire::Wire for FcmMode {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        let tag = FcmMode::all()
            .iter()
            .position(|m| m == self)
            .expect("all() covers every mode") as u8;
        tag.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        let tag = u8::decode(r)?;
        FcmMode::all()
            .get(tag as usize)
            .copied()
            .ok_or(dmps_wire::WireError::BadToken {
                expected: "FcmMode tag",
                token: tag.to_string(),
            })
    }
}

/// The policy factors of the Z specification: which resource dimension is the
/// current bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyFactor {
    /// The network is the bottleneck (`NETWORK_BOUND`).
    NetworkBound,
    /// The CPU is the bottleneck (`CPU_BOUND`).
    CpuBound,
    /// Memory is the bottleneck (`MEMORY_BOUND`).
    MemoryBound,
}

impl fmt::Display for PolicyFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyFactor::NetworkBound => "network-bound",
            PolicyFactor::CpuBound => "cpu-bound",
            PolicyFactor::MemoryBound => "memory-bound",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_modes() {
        let all = FcmMode::all();
        assert_eq!(all.len(), 4);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn mode_properties_follow_the_paper() {
        assert!(!FcmMode::FreeAccess.requires_priority());
        assert!(FcmMode::EqualControl.requires_priority());
        assert!(FcmMode::GroupDiscussion.requires_priority());
        assert!(FcmMode::DirectContact.requires_priority());
        assert!(FcmMode::EqualControl.uses_token());
        assert!(!FcmMode::FreeAccess.uses_token());
        assert!(FcmMode::GroupDiscussion.uses_subgroup());
        assert!(FcmMode::DirectContact.uses_subgroup());
        assert!(!FcmMode::EqualControl.uses_subgroup());
        assert_eq!(FcmMode::MIN_PRIORITY, 2);
    }

    #[test]
    fn display_names_and_serde() {
        assert_eq!(FcmMode::FreeAccess.to_string(), "free-access");
        assert_eq!(PolicyFactor::CpuBound.to_string(), "cpu-bound");
        let encoded = dmps_wire::to_string(&FcmMode::DirectContact);
        let back: FcmMode = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(back, FcmMode::DirectContact);
    }
}
