//! Invitations: how the private sub-groups of Group Discussion and Direct
//! Contact come into being.
//!
//! *"A user can create a new group to invite others. For example, user A
//! wants user B receiving his invitation, he can send an inviting message.
//! User B can make a decision to accept or not. If yes, user B will be chosen
//! as \[the\] listen group of user A, and user A will be the session chair in
//! his small group."*

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::group::GroupId;
use crate::member::MemberId;

/// Identifier of an invitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvitationId(pub usize);

impl fmt::Display for InvitationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// The lifecycle state of an invitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvitationStatus {
    /// Sent, awaiting the invitee's decision.
    Pending,
    /// Accepted; the invitee joined the sub-group.
    Accepted,
    /// Declined by the invitee.
    Declined,
}

/// An invitation from a sub-group chair to another member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invitation {
    /// The inviting member (chair of the sub-group).
    pub from: MemberId,
    /// The invited member.
    pub to: MemberId,
    /// The private sub-group the invitee would join.
    pub subgroup: GroupId,
    /// Current status.
    pub status: InvitationStatus,
}

impl Invitation {
    /// Creates a pending invitation.
    pub fn new(from: MemberId, to: MemberId, subgroup: GroupId) -> Self {
        Invitation {
            from,
            to,
            subgroup,
            status: InvitationStatus::Pending,
        }
    }

    /// Whether the invitation is still awaiting an answer.
    pub fn is_pending(&self) -> bool {
        self.status == InvitationStatus::Pending
    }
}

impl dmps_wire::Wire for InvitationId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(InvitationId(usize::decode(r)?))
    }
}

impl dmps_wire::Wire for InvitationStatus {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        let tag: u8 = match self {
            InvitationStatus::Pending => 0,
            InvitationStatus::Accepted => 1,
            InvitationStatus::Declined => 2,
        };
        tag.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(InvitationStatus::Pending),
            1 => Ok(InvitationStatus::Accepted),
            2 => Ok(InvitationStatus::Declined),
            other => Err(dmps_wire::WireError::BadToken {
                expected: "InvitationStatus tag",
                token: other.to_string(),
            }),
        }
    }
}

impl dmps_wire::Wire for Invitation {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.from.encode(w);
        self.to.encode(w);
        self.subgroup.encode(w);
        self.status.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Invitation {
            from: MemberId::decode(r)?,
            to: MemberId::decode(r)?,
            subgroup: GroupId::decode(r)?,
            status: InvitationStatus::decode(r)?,
        })
    }
}

impl fmt::Display for Invitation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invitation from {} to {} for {} ({:?})",
            self.from, self.to, self.subgroup, self.status
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_invitation_is_pending() {
        let inv = Invitation::new(MemberId(0), MemberId(1), GroupId(2));
        assert!(inv.is_pending());
        assert_eq!(inv.status, InvitationStatus::Pending);
        assert_eq!(inv.from, MemberId(0));
        assert_eq!(inv.to, MemberId(1));
        assert_eq!(inv.subgroup, GroupId(2));
    }

    #[test]
    fn display_mentions_parties() {
        let inv = Invitation::new(MemberId(0), MemberId(1), GroupId(2));
        let s = inv.to_string();
        assert!(s.contains("u0"));
        assert!(s.contains("u1"));
        assert!(s.contains("g2"));
        assert_eq!(InvitationId(7).to_string(), "i7");
    }
}
