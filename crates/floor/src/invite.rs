//! Invitations: how the private sub-groups of Group Discussion and Direct
//! Contact come into being.
//!
//! *"A user can create a new group to invite others. For example, user A
//! wants user B receiving his invitation, he can send an inviting message.
//! User B can make a decision to accept or not. If yes, user B will be chosen
//! as [the] listen group of user A, and user A will be the session chair in
//! his small group."*

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::group::GroupId;
use crate::member::MemberId;

/// Identifier of an invitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvitationId(pub usize);

impl fmt::Display for InvitationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// The lifecycle state of an invitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvitationStatus {
    /// Sent, awaiting the invitee's decision.
    Pending,
    /// Accepted; the invitee joined the sub-group.
    Accepted,
    /// Declined by the invitee.
    Declined,
}

/// An invitation from a sub-group chair to another member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invitation {
    /// The inviting member (chair of the sub-group).
    pub from: MemberId,
    /// The invited member.
    pub to: MemberId,
    /// The private sub-group the invitee would join.
    pub subgroup: GroupId,
    /// Current status.
    pub status: InvitationStatus,
}

impl Invitation {
    /// Creates a pending invitation.
    pub fn new(from: MemberId, to: MemberId, subgroup: GroupId) -> Self {
        Invitation {
            from,
            to,
            subgroup,
            status: InvitationStatus::Pending,
        }
    }

    /// Whether the invitation is still awaiting an answer.
    pub fn is_pending(&self) -> bool {
        self.status == InvitationStatus::Pending
    }
}

impl fmt::Display for Invitation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invitation from {} to {} for {} ({:?})",
            self.from, self.to, self.subgroup, self.status
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_invitation_is_pending() {
        let inv = Invitation::new(MemberId(0), MemberId(1), GroupId(2));
        assert!(inv.is_pending());
        assert_eq!(inv.status, InvitationStatus::Pending);
        assert_eq!(inv.from, MemberId(0));
        assert_eq!(inv.to, MemberId(1));
        assert_eq!(inv.subgroup, GroupId(2));
    }

    #[test]
    fn display_mentions_parties() {
        let inv = Invitation::new(MemberId(0), MemberId(1), GroupId(2));
        let s = inv.to_string();
        assert!(s.contains("u0"));
        assert!(s.contains("u1"));
        assert!(s.contains("g2"));
        assert_eq!(InvitationId(7).to_string(), "i7");
    }
}
