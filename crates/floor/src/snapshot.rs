//! Snapshot / restore and deterministic event application for the arbiter.
//!
//! These APIs are the durability contract of the sharded control plane
//! (`dmps-cluster`): every state mutation of a [`FloorArbiter`] can be
//! expressed as an [`ArbiterEvent`], applying an event is a **deterministic**
//! function of the current state, and the full state round-trips through an
//! [`ArbiterSnapshot`]. A standby that restores the latest snapshot and
//! replays the suffix of the event log therefore reconstructs the crashed
//! arbiter *exactly* — same groups, same token holders, same suspension sets,
//! same counters — which is what makes shard failover invariant-preserving.
//!
//! ```
//! use dmps_floor::{ArbiterEvent, FcmMode, FloorArbiter, FloorRequest, Member, Role};
//!
//! let mut live = FloorArbiter::with_defaults();
//! let mut log = Vec::new();
//! for event in [
//!     ArbiterEvent::CreateGroup { name: "lecture".into(), mode: FcmMode::EqualControl },
//!     ArbiterEvent::AddMember { group: dmps_floor::GroupId(0), member: Member::new("t", Role::Chair) },
//! ] {
//!     live.apply(&event).unwrap();
//!     log.push(event);
//! }
//! let snap = live.snapshot(log.len() as u64);
//! let standby = FloorArbiter::restore(&snap).unwrap();
//! assert_eq!(standby, live);
//! ```

use dmps_wire::Wire;

use crate::arbiter::{ArbitrationOutcome, FloorArbiter, FloorRequest};
use crate::error::{FloorError, Result};
use crate::group::GroupId;
use crate::invite::{InvitationId, InvitationStatus};
use crate::member::{Member, MemberId};
use crate::mode::FcmMode;
use crate::resource::Resource;
use crate::suspend::SuspensionOrder;

/// A serialized point-in-time copy of a [`FloorArbiter`].
///
/// `applied_seq` records how many events of the owning shard's log the
/// snapshot covers: replay starts at that offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterSnapshot {
    /// Number of log events already folded into this snapshot.
    pub applied_seq: u64,
    /// The wire-encoded arbiter state.
    pub data: String,
}

impl ArbiterSnapshot {
    /// The encoded size in bytes (capacity-planning metric for snapshot
    /// shipping).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

impl Wire for ArbiterSnapshot {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.applied_seq.encode(w);
        self.data.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(ArbiterSnapshot {
            applied_seq: u64::decode(r)?,
            data: String::decode(r)?,
        })
    }
}

/// The identifiers an arbiter touched since the last checkpoint — the input
/// to [`FloorArbiter::export_delta`]. The owning shard accumulates ids here
/// (via [`FloorArbiter::mark_touched`]) as events apply, and clears the set
/// at every checkpoint.
///
/// The sets hold ids, not values: a delta exports the *current* value of
/// every dirty entry, so marking the same id many times costs one set slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArbiterDirty {
    /// Groups whose record or floor token changed (creation counts).
    pub groups: std::collections::BTreeSet<GroupId>,
    /// Members added since the checkpoint (members are never mutated after
    /// registration, so only additions dirty this set).
    pub members: std::collections::BTreeSet<MemberId>,
    /// Invitations issued or answered.
    pub invitations: std::collections::BTreeSet<InvitationId>,
}

impl ArbiterDirty {
    /// Forgets everything — called at each checkpoint after the delta is
    /// exported.
    pub fn clear(&mut self) {
        self.groups.clear();
        self.members.clear();
        self.invitations.clear();
    }

    /// Whether nothing was touched since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty() && self.members.is_empty() && self.invitations.is_empty()
    }
}

/// A differential snapshot: the full replacement values of every entry dirtied
/// since the previous checkpoint, plus the (small) arbiter-global fields
/// shipped wholesale. Produced by [`FloorArbiter::export_delta`], folded in
/// by [`FloorArbiter::apply_delta`].
///
/// A delta whose window is `(base_seq, applied_seq]` applies correctly to an
/// arbiter at **any** log position inside `[base_seq, applied_seq]`: entries
/// that changed anywhere in the window carry their final values, entries
/// outside the dirty set are identical at both ends, and the global fields
/// are replaced outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterDelta {
    /// Number of log events folded into the state this delta brings a
    /// restorer up to.
    pub applied_seq: u64,
    /// The wire-encoded dirty entries + globals.
    pub data: String,
}

impl ArbiterDelta {
    /// The encoded size in bytes — the pause-cost currency of incremental
    /// checkpoints.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

impl Wire for ArbiterDelta {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.applied_seq.encode(w);
        self.data.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(ArbiterDelta {
            applied_seq: u64::decode(r)?,
            data: String::decode(r)?,
        })
    }
}

/// Every state-mutating operation of the arbiter, reified so shards can keep
/// an append-only log and replay it deterministically after a crash.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArbiterEvent {
    /// [`FloorArbiter::create_group`].
    CreateGroup {
        /// Display name of the group.
        name: String,
        /// Its floor control mode.
        mode: FcmMode,
    },
    /// [`FloorArbiter::add_member`].
    AddMember {
        /// The group joined.
        group: GroupId,
        /// The new member record.
        member: Member,
    },
    /// [`FloorArbiter::join_group`].
    JoinGroup {
        /// The group joined.
        group: GroupId,
        /// The existing member.
        member: MemberId,
    },
    /// [`FloorArbiter::leave_group`].
    LeaveGroup {
        /// The group left.
        group: GroupId,
        /// The leaving member.
        member: MemberId,
    },
    /// [`FloorArbiter::set_mode`].
    SetMode {
        /// The group whose mode changes.
        group: GroupId,
        /// The new mode.
        mode: FcmMode,
    },
    /// [`FloorArbiter::set_resource`].
    SetResource {
        /// The new resource snapshot.
        resource: Resource,
    },
    /// [`FloorArbiter::set_suspension_order`].
    SetSuspensionOrder {
        /// The new victim-selection order.
        order: SuspensionOrder,
    },
    /// [`FloorArbiter::invite`].
    Invite {
        /// The parent group.
        parent: GroupId,
        /// The inviting member.
        from: MemberId,
        /// The invited member.
        to: MemberId,
        /// Mode of the spawned sub-group.
        mode: FcmMode,
    },
    /// [`FloorArbiter::respond_invitation`].
    RespondInvitation {
        /// The invitation answered.
        invitation: InvitationId,
        /// The answering member.
        responder: MemberId,
        /// Whether it was accepted.
        accept: bool,
    },
    /// [`FloorArbiter::arbitrate`].
    Arbitrate {
        /// The floor control request.
        request: FloorRequest,
    },
    /// [`FloorArbiter::restore_token`] — a live migration installs the
    /// source group's token state (holder + queue, already translated to
    /// this arbiter's member ids) on the destination.
    RestoreToken {
        /// The group whose token is replaced.
        group: GroupId,
        /// The imported token state.
        token: crate::token::FloorToken,
    },
    /// [`FloorArbiter::restore_chair`] — a live migration re-seats the
    /// source group's session chair on the destination (the add/join path
    /// only elects chairs by role, which cannot express an inviter-chaired
    /// sub-group).
    RestoreChair {
        /// The group whose chair is re-seated.
        group: GroupId,
        /// The imported chair, if the group had one.
        chair: Option<MemberId>,
    },
}

impl Wire for ArbiterEvent {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        match self {
            ArbiterEvent::CreateGroup { name, mode } => {
                0u8.encode(w);
                name.encode(w);
                mode.encode(w);
            }
            ArbiterEvent::AddMember { group, member } => {
                1u8.encode(w);
                group.encode(w);
                member.encode(w);
            }
            ArbiterEvent::JoinGroup { group, member } => {
                2u8.encode(w);
                group.encode(w);
                member.encode(w);
            }
            ArbiterEvent::LeaveGroup { group, member } => {
                3u8.encode(w);
                group.encode(w);
                member.encode(w);
            }
            ArbiterEvent::SetMode { group, mode } => {
                4u8.encode(w);
                group.encode(w);
                mode.encode(w);
            }
            ArbiterEvent::SetResource { resource } => {
                5u8.encode(w);
                resource.encode(w);
            }
            ArbiterEvent::SetSuspensionOrder { order } => {
                6u8.encode(w);
                order.encode(w);
            }
            ArbiterEvent::Invite {
                parent,
                from,
                to,
                mode,
            } => {
                7u8.encode(w);
                parent.encode(w);
                from.encode(w);
                to.encode(w);
                mode.encode(w);
            }
            ArbiterEvent::RespondInvitation {
                invitation,
                responder,
                accept,
            } => {
                8u8.encode(w);
                invitation.encode(w);
                responder.encode(w);
                accept.encode(w);
            }
            ArbiterEvent::Arbitrate { request } => {
                9u8.encode(w);
                request.encode(w);
            }
            ArbiterEvent::RestoreToken { group, token } => {
                10u8.encode(w);
                group.encode(w);
                token.encode(w);
            }
            ArbiterEvent::RestoreChair { group, chair } => {
                11u8.encode(w);
                group.encode(w);
                chair.encode(w);
            }
        }
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => ArbiterEvent::CreateGroup {
                name: String::decode(r)?,
                mode: FcmMode::decode(r)?,
            },
            1 => ArbiterEvent::AddMember {
                group: GroupId::decode(r)?,
                member: Member::decode(r)?,
            },
            2 => ArbiterEvent::JoinGroup {
                group: GroupId::decode(r)?,
                member: MemberId::decode(r)?,
            },
            3 => ArbiterEvent::LeaveGroup {
                group: GroupId::decode(r)?,
                member: MemberId::decode(r)?,
            },
            4 => ArbiterEvent::SetMode {
                group: GroupId::decode(r)?,
                mode: FcmMode::decode(r)?,
            },
            5 => ArbiterEvent::SetResource {
                resource: Resource::decode(r)?,
            },
            6 => ArbiterEvent::SetSuspensionOrder {
                order: SuspensionOrder::decode(r)?,
            },
            7 => ArbiterEvent::Invite {
                parent: GroupId::decode(r)?,
                from: MemberId::decode(r)?,
                to: MemberId::decode(r)?,
                mode: FcmMode::decode(r)?,
            },
            8 => ArbiterEvent::RespondInvitation {
                invitation: InvitationId::decode(r)?,
                responder: MemberId::decode(r)?,
                accept: bool::decode(r)?,
            },
            9 => ArbiterEvent::Arbitrate {
                request: FloorRequest::decode(r)?,
            },
            10 => ArbiterEvent::RestoreToken {
                group: GroupId::decode(r)?,
                token: crate::token::FloorToken::decode(r)?,
            },
            11 => ArbiterEvent::RestoreChair {
                group: GroupId::decode(r)?,
                chair: Option::<MemberId>::decode(r)?,
            },
            other => {
                return Err(dmps_wire::WireError::BadToken {
                    expected: "ArbiterEvent tag",
                    token: other.to_string(),
                })
            }
        })
    }
}

/// What applying one [`ArbiterEvent`] produced.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventOutcome {
    /// A group was created.
    GroupCreated(GroupId),
    /// A member was added.
    MemberAdded(MemberId),
    /// A sub-group was spawned with a pending invitation.
    SubgroupCreated(GroupId, InvitationId),
    /// An invitation was answered.
    InvitationAnswered(InvitationStatus),
    /// A request was arbitrated.
    Arbitrated(ArbitrationOutcome),
    /// The event mutated state without producing a value.
    Applied,
}

impl FloorArbiter {
    /// Serializes the complete arbiter state. `applied_seq` is the number of
    /// log events the caller has folded into this state (stored in the
    /// snapshot so replay knows where to resume).
    pub fn snapshot(&self, applied_seq: u64) -> ArbiterSnapshot {
        ArbiterSnapshot {
            applied_seq,
            data: dmps_wire::to_string(self),
        }
    }

    /// Reconstructs an arbiter from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FloorError::CorruptSnapshot`] when the payload does not
    /// decode.
    pub fn restore(snapshot: &ArbiterSnapshot) -> Result<Self> {
        dmps_wire::from_str(&snapshot.data).map_err(|e| FloorError::CorruptSnapshot(e.to_string()))
    }

    /// Applies one reified event. This is exactly the mutation the
    /// corresponding public method performs, so a log replay over a restored
    /// snapshot reproduces the pre-crash state bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as the underlying method.
    pub fn apply(&mut self, event: &ArbiterEvent) -> Result<EventOutcome> {
        match event {
            ArbiterEvent::CreateGroup { name, mode } => {
                Ok(EventOutcome::GroupCreated(self.create_group(name, *mode)))
            }
            ArbiterEvent::AddMember { group, member } => self
                .add_member(*group, member.clone())
                .map(EventOutcome::MemberAdded),
            ArbiterEvent::JoinGroup { group, member } => self
                .join_group(*group, *member)
                .map(|()| EventOutcome::Applied),
            ArbiterEvent::LeaveGroup { group, member } => self
                .leave_group(*group, *member)
                .map(|()| EventOutcome::Applied),
            ArbiterEvent::SetMode { group, mode } => {
                self.set_mode(*group, *mode).map(|()| EventOutcome::Applied)
            }
            ArbiterEvent::SetResource { resource } => {
                self.set_resource(*resource);
                Ok(EventOutcome::Applied)
            }
            ArbiterEvent::SetSuspensionOrder { order } => {
                self.set_suspension_order(*order);
                Ok(EventOutcome::Applied)
            }
            ArbiterEvent::Invite {
                parent,
                from,
                to,
                mode,
            } => self
                .invite(*parent, *from, *to, *mode)
                .map(|(g, i)| EventOutcome::SubgroupCreated(g, i)),
            ArbiterEvent::RespondInvitation {
                invitation,
                responder,
                accept,
            } => self
                .respond_invitation(*invitation, *responder, *accept)
                .map(EventOutcome::InvitationAnswered),
            ArbiterEvent::Arbitrate { request } => {
                self.arbitrate(request).map(EventOutcome::Arbitrated)
            }
            ArbiterEvent::RestoreToken { group, token } => self
                .restore_token(*group, token.clone())
                .map(|()| EventOutcome::Applied),
            ArbiterEvent::RestoreChair { group, chair } => self
                .restore_chair(*group, *chair)
                .map(|()| EventOutcome::Applied),
        }
    }

    /// Checks the structural floor-state invariants the Z specification
    /// guarantees — the properties failover must preserve:
    ///
    /// * **token uniqueness** — every group has exactly one token and at most
    ///   one holder (structural), and the holder is a member of the group;
    /// * **no ghost queue entries** — queued members belong to the group, are
    ///   distinct, and none of them is the holder;
    /// * **suspension soundness** — every suspended member exists.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for (gid, token) in self.tokens_iter() {
            let group = self
                .group(gid)
                .map_err(|_| format!("token for unknown group {gid}"))?;
            if let Some(holder) = token.holder() {
                if !group.contains(holder) {
                    return Err(format!("token holder {holder} is not a member of {gid}"));
                }
            }
            let mut seen = std::collections::BTreeSet::new();
            for queued in token.queue() {
                if Some(queued) == token.holder() {
                    return Err(format!("holder {queued} also queued in {gid}"));
                }
                if !seen.insert(queued) {
                    return Err(format!("member {queued} queued twice in {gid}"));
                }
                if !group.contains(queued) {
                    return Err(format!("queued member {queued} is not in {gid}"));
                }
            }
        }
        for suspended in self.suspended_members() {
            if self.member(suspended).is_err() {
                return Err(format!("suspended member {suspended} does not exist"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::Role;

    fn scripted_log() -> Vec<ArbiterEvent> {
        vec![
            ArbiterEvent::CreateGroup {
                name: "lecture".into(),
                mode: FcmMode::EqualControl,
            },
            ArbiterEvent::AddMember {
                group: GroupId(0),
                member: Member::new("teacher", Role::Chair),
            },
            ArbiterEvent::AddMember {
                group: GroupId(0),
                member: Member::new("alice", Role::Participant),
            },
            ArbiterEvent::AddMember {
                group: GroupId(0),
                member: Member::new("bob", Role::Participant),
            },
            ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(1)),
            },
            ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(2)),
            },
            ArbiterEvent::Invite {
                parent: GroupId(0),
                from: MemberId(1),
                to: MemberId(2),
                mode: FcmMode::GroupDiscussion,
            },
            ArbiterEvent::RespondInvitation {
                invitation: InvitationId(0),
                responder: MemberId(2),
                accept: true,
            },
            ArbiterEvent::SetResource {
                resource: Resource::new(0.4, 1.0, 1.0),
            },
            ArbiterEvent::Arbitrate {
                request: FloorRequest::pass_floor(GroupId(0), MemberId(1), MemberId(0)),
            },
            ArbiterEvent::RestoreToken {
                group: GroupId(0),
                token: crate::token::FloorToken::from_parts(
                    Some(MemberId(2)),
                    [MemberId(0), MemberId(1)],
                    5,
                ),
            },
            ArbiterEvent::RestoreChair {
                group: GroupId(0),
                chair: Some(MemberId(1)),
            },
        ]
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let mut arbiter = FloorArbiter::with_defaults();
        for event in scripted_log() {
            arbiter.apply(&event).unwrap();
        }
        let snap = arbiter.snapshot(10);
        assert_eq!(snap.applied_seq, 10);
        assert!(snap.size_bytes() > 0);
        let restored = FloorArbiter::restore(&snap).unwrap();
        assert_eq!(restored, arbiter);
        restored.check_invariants().unwrap();
    }

    #[test]
    fn replay_from_mid_log_snapshot_matches_full_replay() {
        let log = scripted_log();
        // The reference arbiter applies everything.
        let mut reference = FloorArbiter::with_defaults();
        for event in &log {
            reference.apply(event).unwrap();
        }
        // The standby restores a snapshot taken half-way and replays the rest.
        for cut in 0..log.len() {
            let mut primary = FloorArbiter::with_defaults();
            for event in &log[..cut] {
                primary.apply(event).unwrap();
            }
            let snap = primary.snapshot(cut as u64);
            let mut standby = FloorArbiter::restore(&snap).unwrap();
            for event in &log[snap.applied_seq as usize..] {
                standby.apply(event).unwrap();
            }
            assert_eq!(standby, reference, "cut at {cut}");
        }
    }

    #[test]
    fn events_roundtrip_through_wire() {
        for event in scripted_log() {
            let encoded = dmps_wire::to_string(&event);
            let back: ArbiterEvent = dmps_wire::from_str(&encoded).unwrap();
            assert_eq!(back, event);
        }
    }

    /// Replays `log`, accumulating dirty ids exactly the way a shard does.
    fn replay_marking(log: &[ArbiterEvent]) -> (FloorArbiter, crate::snapshot::ArbiterDirty) {
        let mut arbiter = FloorArbiter::with_defaults();
        let mut dirty = crate::snapshot::ArbiterDirty::default();
        for event in log {
            let outcome = arbiter.apply(event).unwrap();
            arbiter.mark_touched(event, &outcome, &mut dirty);
        }
        (arbiter, dirty)
    }

    #[test]
    fn delta_over_full_history_restores_byte_identical_state() {
        let log = scripted_log();
        let (arbiter, dirty) = replay_marking(&log);
        // Everything since genesis is dirty, so the delta over an empty
        // arbiter is a complete restore.
        let delta = arbiter.export_delta(log.len() as u64, &dirty);
        assert_eq!(delta.applied_seq, log.len() as u64);
        let mut restored = FloorArbiter::with_defaults();
        restored.apply_delta(&delta).unwrap();
        assert_eq!(restored, arbiter);
        assert_eq!(
            dmps_wire::to_string(&restored),
            dmps_wire::to_string(&arbiter),
            "delta restore must be wire-byte-identical"
        );
        restored.check_invariants().unwrap();
    }

    #[test]
    fn chained_deltas_from_every_cut_match_the_live_arbiter() {
        let log = scripted_log();
        let (live, _) = replay_marking(&log);
        // For every cut: full snapshot at the cut, then one delta covering
        // the tail; base + delta must equal the live arbiter exactly.
        for cut in 0..log.len() {
            let (base_arbiter, _) = replay_marking(&log[..cut]);
            let snap = base_arbiter.snapshot(cut as u64);
            let mut tail_arbiter = base_arbiter.clone();
            let mut dirty = crate::snapshot::ArbiterDirty::default();
            for event in &log[cut..] {
                let outcome = tail_arbiter.apply(event).unwrap();
                tail_arbiter.mark_touched(event, &outcome, &mut dirty);
            }
            let delta = tail_arbiter.export_delta(log.len() as u64, &dirty);
            let mut restored = FloorArbiter::restore(&snap).unwrap();
            restored.apply_delta(&delta).unwrap();
            assert_eq!(restored, live, "cut at {cut}");
            assert_eq!(
                dmps_wire::to_string(&restored),
                dmps_wire::to_string(&live),
                "cut at {cut}: delta fold must be wire-byte-identical"
            );
        }
    }

    #[test]
    fn delta_applies_anywhere_inside_its_window() {
        // A delta over window (b, a] must fold correctly onto any state at
        // position p with b <= p <= a — the property follower resync leans
        // on when its ack knowledge lags the leader's chain.
        let log = scripted_log();
        let base = 4usize;
        let (mut tail_arbiter, _) = replay_marking(&log[..base]);
        let mut dirty = crate::snapshot::ArbiterDirty::default();
        for event in &log[base..] {
            let outcome = tail_arbiter.apply(event).unwrap();
            tail_arbiter.mark_touched(event, &outcome, &mut dirty);
        }
        let delta = tail_arbiter.export_delta(log.len() as u64, &dirty);
        for p in base..=log.len() {
            let (mut mid, _) = replay_marking(&log[..p]);
            mid.apply_delta(&delta).unwrap();
            assert_eq!(mid, tail_arbiter, "applied at position {p}");
        }
    }

    #[test]
    fn delta_roundtrips_through_wire_and_rejects_gaps() {
        let log = scripted_log();
        let (arbiter, dirty) = replay_marking(&log);
        let delta = arbiter.export_delta(log.len() as u64, &dirty);
        let encoded = dmps_wire::to_string(&delta);
        let back: crate::snapshot::ArbiterDelta = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(back, delta);
        assert!(delta.size_bytes() > 0);
        // Applying a delta whose entries skip past the dense end (out of
        // chain order) must fail, not silently corrupt.
        let mut short = FloorArbiter::with_defaults();
        let mut skewed_dirty = crate::snapshot::ArbiterDirty::default();
        skewed_dirty.groups.insert(GroupId(1));
        let skewed = arbiter.export_delta(log.len() as u64, &skewed_dirty);
        assert!(matches!(
            short.apply_delta(&skewed),
            Err(FloorError::CorruptSnapshot(_))
        ));
        // Garbage payloads are rejected too.
        let corrupt = crate::snapshot::ArbiterDelta {
            applied_seq: 1,
            data: "not a delta".into(),
        };
        assert!(matches!(
            short.apply_delta(&corrupt),
            Err(FloorError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let snap = ArbiterSnapshot {
            applied_seq: 0,
            data: "not a snapshot".into(),
        };
        assert!(matches!(
            FloorArbiter::restore(&snap),
            Err(FloorError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn invariant_checker_accepts_live_state() {
        let (mut arbiter, group, teacher, students) =
            FloorArbiter::lecture(4, FcmMode::EqualControl);
        for &m in std::iter::once(&teacher).chain(&students) {
            arbiter.arbitrate(&FloorRequest::speak(group, m)).unwrap();
        }
        arbiter.check_invariants().unwrap();
    }
}
