//! End-to-end replication through the public `Cluster` API: pipelined
//! quorum group-commit, follower-served reads under the read-your-writes
//! bound, and failover by follower promotion — including under seeded loss
//! on the replica links.

use std::time::Duration;

use dmps_cluster::{
    Cluster, ClusterConfig, GlobalGroupId, GlobalMemberId, GlobalRequest, SessionOp,
};
use dmps_floor::{ArbitrationOutcome, FcmMode, Member, Role};
use dmps_simnet::Link;

/// A replicated cluster with one Equal Control lecture group and `members`
/// participants (member 0 is the chair).
fn replicated_cluster(
    config: ClusterConfig,
    members: usize,
) -> (Cluster, GlobalGroupId, Vec<GlobalMemberId>) {
    let mut cluster = Cluster::new(config);
    let group = cluster
        .create_group("lecture", FcmMode::EqualControl)
        .unwrap();
    let roster: Vec<_> = (0..members)
        .map(|i| {
            let role = if i == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let m = cluster.register_member(Member::new(format!("m{i}"), role));
            cluster.join_group(group, m).unwrap();
            m
        })
        .collect();
    (cluster, group, roster)
}

#[test]
fn quorum_commit_releases_every_decision_with_a_bound() {
    let config = ClusterConfig::with_shards(2).with_replicas(3);
    let (mut cluster, group, roster) = replicated_cluster(config, 3);
    let mut seqs = Vec::new();
    for round in 0..20 {
        for &m in &roster {
            seqs.push(cluster.submit(GlobalRequest::speak(group, m)).unwrap());
        }
        seqs.push(
            cluster
                .submit(GlobalRequest::release_floor(group, roster[round % 3]))
                .unwrap(),
        );
    }
    let decisions = cluster.flush();
    assert_eq!(decisions.len(), seqs.len());
    // Every released decision carries its durability position: the batch it
    // group-committed (and quorum-replicated) under.
    for d in &decisions {
        assert!(d.outcome.is_ok(), "arbitration outcome: {:?}", d.outcome);
        assert!(d.commit > 0, "released decisions carry a commit bound");
        assert!(d.shard.is_some());
    }
    cluster.check_invariants().unwrap();
    // The quorum pipeline actually ran: followers acked appends.
    let shard = cluster.placement(group).unwrap().shard;
    let acks = cluster
        .metrics()
        .counter(&format!("cluster.shard.{}.replica.acks", shard.0))
        .get();
    assert!(acks > 0, "followers must have acknowledged appends");
}

#[test]
fn follower_reads_observe_own_writes() {
    let config = ClusterConfig::with_shards(1).with_replicas(2);
    let (cluster, group, roster) = replicated_cluster(config, 3);
    let gateway = cluster.gateway();
    // Chat deliveries are floor-gated under Equal Control: the chair takes
    // the floor first so every line below actually delivers.
    gateway
        .request(GlobalRequest::speak(group, roster[0]))
        .unwrap();
    for i in 0..30 {
        let seq = gateway
            .submit_session(SessionOp::chat(group, roster[0], format!("line {i}")))
            .unwrap();
        let ack = gateway.recv_session_decision().unwrap();
        assert_eq!(ack.seq, seq);
        assert!(ack.outcome.as_ref().unwrap().is_delivered());
        assert!(ack.commit > 0);
        // Read-your-writes: the acked line is visible immediately, whether
        // the read lands on a follower or forwards to the leader.
        let view = gateway.session_view(group).unwrap();
        assert_eq!(view.chat.len(), i + 1, "acked chat line must be visible");
    }
    // With 2 followers and reads after a settled pipeline, at least some
    // reads must have been served by followers.
    let reads = cluster.metrics();
    let follower = reads
        .counter("cluster.shard.0.replica.follower_reads")
        .get();
    let forwarded = reads
        .counter("cluster.shard.0.replica.forwarded_reads")
        .get();
    assert_eq!(follower + forwarded, 30, "every read took one of the paths");
    assert!(follower > 0, "follower reads must serve a settled shard");
}

#[test]
fn queue_position_reads_match_arbitration_order() {
    let config = ClusterConfig::with_shards(1).with_replicas(3);
    let (mut cluster, group, roster) = replicated_cluster(config, 4);
    // m0 takes the floor; m1..m3 queue behind it in submission order.
    for &m in &roster {
        let outcome = cluster.request(GlobalRequest::speak(group, m)).unwrap();
        assert!(matches!(
            outcome,
            ArbitrationOutcome::Granted { .. } | ArbitrationOutcome::Queued { .. }
        ));
    }
    assert_eq!(cluster.queue_position(group, roster[0]).unwrap(), Some(0));
    assert_eq!(cluster.queue_position(group, roster[1]).unwrap(), Some(1));
    assert_eq!(cluster.queue_position(group, roster[2]).unwrap(), Some(2));
    assert_eq!(cluster.queue_position(group, roster[3]).unwrap(), Some(3));
    // Release: the queue shifts by one, and the read path sees it.
    cluster
        .request(GlobalRequest::release_floor(group, roster[0]))
        .unwrap();
    assert_eq!(cluster.queue_position(group, roster[0]).unwrap(), None);
    assert_eq!(cluster.queue_position(group, roster[1]).unwrap(), Some(0));
    assert_eq!(cluster.queue_position(group, roster[3]).unwrap(), Some(2));
    cluster.check_invariants().unwrap();
}

#[test]
fn failover_promotes_follower_with_exactly_once_decisions() {
    let config = ClusterConfig::with_shards(2).with_replicas(3);
    let (mut cluster, group, roster) = replicated_cluster(config, 3);
    let shard = cluster.placement(group).unwrap().shard;
    // Build real floor state: m0 holds, m1/m2 queue, plus session content.
    let mut journaled = Vec::new();
    for &m in &roster {
        let speak = GlobalRequest::speak(group, m);
        journaled.push((cluster.submit(speak).unwrap(), speak));
    }
    let originals: Vec<_> = cluster.flush();
    for i in 0..5 {
        cluster
            .session(SessionOp::chat(group, roster[0], format!("line {i}")))
            .unwrap();
    }
    cluster.check_invariants().unwrap();

    cluster.crash_shard(shard);
    assert!(!cluster.is_shard_active(shard));
    cluster.recover_shard(shard).unwrap();
    assert!(cluster.is_shard_active(shard));

    // Promotion restored *exactly* the pre-crash state.
    cluster.check_invariants().unwrap();
    let placement = cluster.placement(group).unwrap();
    let token = cluster
        .arbiter(placement.shard)
        .token(placement.local)
        .unwrap()
        .clone();
    assert!(token.holder().is_some(), "token survived promotion");
    assert_eq!(token.queue_len(), 2, "queue survived promotion");
    assert_eq!(
        cluster.session_view(group).unwrap().chat.len(),
        5,
        "session content survived promotion"
    );
    // Tail catch-up was recorded (the histogram proves the promotion path
    // ran, not a full snapshot+log replay).
    let lag = cluster
        .metrics()
        .histogram(&format!("cluster.shard.{}.replica.catch_up_lag", shard.0));
    assert_eq!(lag.count(), 1, "exactly one promotion recorded");

    // Exactly-once: every pre-crash decision replays identically from the
    // promoted shard's durable journal.
    let gateway = cluster.gateway();
    for (seq, speak) in &journaled {
        gateway.resubmit(*seq, *speak).unwrap();
        let retry = gateway.recv_decision().unwrap();
        assert_eq!(retry.seq, *seq);
        assert!(retry.replayed, "journal answers the retry");
        let original = originals.iter().find(|d| d.seq == *seq).unwrap();
        assert_eq!(retry.outcome, original.outcome);
    }
    // And the cluster keeps serving: new traffic arbitrates normally.
    let outcome = cluster
        .request(GlobalRequest::release_floor(group, roster[0]))
        .unwrap();
    assert!(matches!(outcome, ArbitrationOutcome::Granted { .. }));
    assert_eq!(cluster.queue_position(group, roster[1]).unwrap(), Some(0));
}

#[test]
fn lossy_replica_links_still_commit_and_promote() {
    // 20% loss on every leader→follower link: quorum progress requires the
    // retransmission path (force_quorum rewinding send cursors).
    let config = ClusterConfig {
        replica_link: Link {
            loss_rate: 0.2,
            ..Link::replica()
        },
        ..ClusterConfig::with_shards(1).with_replicas(3)
    };
    let (mut cluster, group, roster) = replicated_cluster(config, 3);
    let mut seqs = Vec::new();
    for round in 0..30 {
        for &m in &roster {
            seqs.push(cluster.submit(GlobalRequest::speak(group, m)).unwrap());
        }
        seqs.push(
            cluster
                .submit(GlobalRequest::release_floor(group, roster[round % 3]))
                .unwrap(),
        );
    }
    let decisions = cluster.flush();
    assert_eq!(decisions.len(), seqs.len(), "loss never loses a decision");
    assert!(decisions.iter().all(|d| d.commit > 0));
    cluster.check_invariants().unwrap();

    // Failover under the same loss: promotion still restores exact state.
    cluster.crash_shard(dmps_cluster::ShardId(0));
    cluster.recover_shard(dmps_cluster::ShardId(0)).unwrap();
    cluster.check_invariants().unwrap();
    let placement = cluster.placement(group).unwrap();
    let token = cluster
        .arbiter(placement.shard)
        .token(placement.local)
        .unwrap()
        .clone();
    assert!(token.holder().is_some());

    // Reads still honour read-your-writes after promotion.
    let gateway = cluster.gateway();
    let seq = gateway
        .submit_session(SessionOp::chat(group, roster[0], "after failover"))
        .unwrap();
    let ack = gateway.recv_session_decision().unwrap();
    assert_eq!(ack.seq, seq);
    let view = gateway.session_view(group).unwrap();
    assert_eq!(view.chat.len(), 1, "own write visible after failover");
}

#[test]
fn replication_survives_snapshot_compaction_via_resync() {
    // An aggressive snapshot cadence compacts the log constantly; a
    // follower whose cursor falls behind the base is re-seeded by Resync.
    let config = ClusterConfig {
        snapshot_every: 8,
        snapshot_every_bytes: 0,
        snapshot_chain: 0,
        replica_link: Link {
            loss_rate: 0.3,
            ..Link::replica()
        },
        ..ClusterConfig::with_shards(1).with_replicas(2)
    };
    let (mut cluster, group, roster) = replicated_cluster(config, 3);
    for round in 0..40 {
        for &m in &roster {
            cluster.submit(GlobalRequest::speak(group, m)).unwrap();
        }
        cluster
            .submit(GlobalRequest::release_floor(group, roster[round % 3]))
            .unwrap();
    }
    let decisions = cluster.flush();
    assert!(decisions.iter().all(|d| d.commit > 0));
    cluster.check_invariants().unwrap();
    // Crash + promote after heavy compaction still restores exact state.
    cluster.crash_shard(dmps_cluster::ShardId(0));
    cluster.recover_shard(dmps_cluster::ShardId(0)).unwrap();
    cluster.check_invariants().unwrap();
    let placement = cluster.placement(group).unwrap();
    assert!(cluster
        .arbiter(placement.shard)
        .token(placement.local)
        .unwrap()
        .holder()
        .is_some());
}

#[test]
fn follower_resync_from_a_partially_compacted_delta_chain() {
    // Differential checkpoints with a tiny byte budget: the log compacts to
    // the chain tip constantly, so lossy followers fall behind the base and
    // are re-seeded from a chain that is part base, part deltas — the
    // partially-compacted shape. Promotion afterwards must still restore
    // exact state.
    let config = ClusterConfig {
        snapshot_every: 0,
        snapshot_every_bytes: 512,
        snapshot_chain: 4,
        replica_link: Link {
            loss_rate: 0.3,
            ..Link::replica()
        },
        ..ClusterConfig::with_shards(1).with_replicas(2)
    };
    let (mut cluster, group, roster) = replicated_cluster(config, 3);
    for round in 0..40 {
        for &m in &roster {
            cluster.submit(GlobalRequest::speak(group, m)).unwrap();
        }
        cluster
            .submit(GlobalRequest::release_floor(group, roster[round % 3]))
            .unwrap();
        cluster
            .session(SessionOp::chat(
                group,
                roster[round % 3],
                format!("r{round}"),
            ))
            .unwrap();
    }
    let decisions = cluster.flush();
    assert!(decisions.iter().all(|d| d.commit > 0));
    cluster.check_invariants().unwrap();
    let metrics = cluster.metrics();
    assert!(
        metrics
            .counter("cluster.shard.0.snapshot.delta_bytes")
            .get()
            > 0,
        "differential checkpoints were taken"
    );
    assert!(
        metrics.counter("cluster.shard.0.replica.resyncs").get() > 0,
        "loss must have forced at least one chain resync"
    );
    // Crash + promote: the promoted follower's state was built from resync
    // chains plus shipped segments, and must match the leader's exactly.
    let chat_before = cluster.session_view(group).unwrap().chat.len();
    cluster.crash_shard(dmps_cluster::ShardId(0));
    cluster.recover_shard(dmps_cluster::ShardId(0)).unwrap();
    cluster.check_invariants().unwrap();
    let placement = cluster.placement(group).unwrap();
    assert!(cluster
        .arbiter(placement.shard)
        .token(placement.local)
        .unwrap()
        .holder()
        .is_some());
    assert_eq!(cluster.session_view(group).unwrap().chat.len(), chat_before);
}

#[test]
fn sim_failover_with_replicas_recovers_with_exactly_once_decisions() {
    // The full harness: simnet client traffic, a seeded crash, follower
    // promotion at failover, and gateway retransmission — every request
    // answered exactly once and the promoted shard passes the invariants.
    use dmps_cluster::ClusterSim;
    use dmps_simnet::SimTime;

    let config = ClusterConfig::with_shards(2).with_replicas(3);
    let mut sim = ClusterSim::new(config, 5, Link::lan());
    sim.enable_retransmission(Duration::from_millis(40));
    let g = sim
        .cluster_mut()
        .create_group("lecture", FcmMode::EqualControl)
        .unwrap();
    let shard = sim.cluster().placement(g).unwrap().shard;
    let speakers: Vec<_> = (0..3)
        .map(|i| {
            let m = sim
                .cluster_mut()
                .register_member(Member::new(format!("m{i}"), Role::Participant));
            sim.cluster_mut().join_group(g, m).unwrap();
            m
        })
        .collect();
    let mut seqs = Vec::new();
    for i in 0..40u64 {
        seqs.push(
            sim.submit_at(
                SimTime::from_millis(50 * i),
                GlobalRequest::speak(g, speakers[(i % 3) as usize]),
            )
            .unwrap(),
        );
    }
    sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
    sim.run_to_idle();
    assert_eq!(sim.failovers(), 1);
    assert!(sim.retransmits() > 0, "the crash must strand some requests");
    let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
    answered.sort_unstable();
    assert_eq!(answered, seqs, "every request answered exactly once");
    sim.cluster().check_invariants().unwrap();
    // The failover went through follower promotion, not full replay.
    let lag = sim
        .cluster()
        .metrics()
        .histogram(&format!("cluster.shard.{}.replica.catch_up_lag", shard.0));
    assert_eq!(lag.count(), 1, "promotion recorded exactly once");
}
