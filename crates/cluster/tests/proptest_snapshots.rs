//! Equivalence properties of the incremental-checkpoint subsystem: for any
//! randomized op sequence and any checkpoint policy (byte- or event-count
//! cadence, any chain cap), a shard recovered from a **base + delta chain**
//! holds exactly the state of one recovered from **full snapshots only**,
//! which holds exactly the state of one recovered by **pure log replay** —
//! all three wire-byte-identical to the live shard that never crashed.
//!
//! This is the correctness contract that lets the checkpoint pause shrink
//! from O(shard) to O(dirty-since-last-checkpoint): the differential chain
//! must be an *indistinguishable* durability format, not an approximation.

use dmps_cluster::session::SessionEvent;
use dmps_cluster::{GlobalGroupId, GlobalMemberId, SessionOpKind, Shard, ShardId};
use dmps_floor::snapshot::ArbiterEvent;
use dmps_floor::{FcmMode, FloorRequest, GroupId, Member, MemberId, Role};
use proptest::prelude::*;

const GROUPS: usize = 3;
const MEMBERS: usize = 4;

/// One step of the randomized workload, addressing groups/members by index.
#[derive(Debug, Clone, Copy)]
enum Op {
    Speak(usize, usize),
    Release(usize, usize),
    Pass(usize, usize, usize),
    Chat(usize, usize),
    /// Freeze + unfreeze one group (an aborted handoff) so frozen-set
    /// carriage through deltas is exercised too.
    FreezeThaw(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..GROUPS, 0..MEMBERS).prop_map(|(g, m)| Op::Speak(g, m)),
        (0..GROUPS, 0..MEMBERS).prop_map(|(g, m)| Op::Release(g, m)),
        (0..GROUPS, 0..MEMBERS, 0..MEMBERS).prop_map(|(g, a, b)| Op::Pass(g, a, b)),
        (0..GROUPS, 0..MEMBERS).prop_map(|(g, m)| Op::Chat(g, m)),
        (0..GROUPS).prop_map(Op::FreezeThaw),
    ]
}

/// A shard with `GROUPS` Equal Control groups of `MEMBERS` members each.
fn build(snapshot_every: u64, every_bytes: u64, chain: u64) -> Shard {
    let mut shard = Shard::new(ShardId(0), snapshot_every, 256);
    shard.set_snapshot_policy(every_bytes, chain);
    for g in 0..GROUPS {
        shard
            .apply(ArbiterEvent::CreateGroup {
                name: format!("g{g}"),
                mode: FcmMode::EqualControl,
            })
            .unwrap();
        for m in 0..MEMBERS {
            let role = if m == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            shard
                .apply(ArbiterEvent::AddMember {
                    group: GroupId(g),
                    member: Member::new(format!("g{g}m{m}"), role),
                })
                .unwrap();
        }
    }
    shard
}

/// Applies one op; rejections (releasing a floor one does not hold, passing
/// to oneself, …) are part of the sequence and must reject identically on
/// every shard.
fn apply(shard: &mut Shard, op: Op) -> String {
    match op {
        Op::Speak(g, m) => format!(
            "{:?}",
            shard.apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(g), MemberId(m)),
            })
        ),
        Op::Release(g, m) => format!(
            "{:?}",
            shard.apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::release_floor(GroupId(g), MemberId(m)),
            })
        ),
        Op::Pass(g, a, b) => format!(
            "{:?}",
            shard.apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::pass_floor(GroupId(g), MemberId(a), MemberId(b)),
            })
        ),
        Op::Chat(g, m) => format!(
            "{:?}",
            shard.apply_session(SessionEvent {
                group: GlobalGroupId(g as u64),
                local_group: GroupId(g),
                from: GlobalMemberId((g * MEMBERS + m) as u64),
                local_from: MemberId(m),
                kind: SessionOpKind::Chat {
                    text: format!("g{g}m{m}"),
                },
            })
        ),
        Op::FreezeThaw(g) => {
            let global = GlobalGroupId(g as u64);
            let prepared = shard.handoff_prepare(global, GroupId(g)).is_ok();
            if prepared {
                shard.handoff_abort(global).unwrap();
            }
            format!("freeze-thaw {prepared}")
        }
    }
}

/// Everything a shard's durable state reconstructs: the arbiter (wire
/// encoding — token holders, queues, stats, all of it), the session store,
/// and the frozen set.
fn fingerprint(shard: &Shard) -> (String, String, usize) {
    (
        dmps_wire::to_string(shard.arbiter()),
        dmps_wire::to_string(shard.session()),
        shard.view().frozen_groups,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_chain_restore_equals_full_snapshot_restore_equals_log_replay(
        ops in proptest::collection::vec(arb_op(), 8..96),
        snapshot_every in 1u64..24,
        every_bytes in prop_oneof![Just(0u64), 64u64..4096],
        chain in 1u64..8,
        // Past the op range means "crash only at the end".
        mid_crash in 0usize..192,
    ) {
        // Same cadence everywhere; only the checkpoint *format* differs.
        let mut chained = build(snapshot_every, every_bytes, chain);
        let mut full = build(snapshot_every, every_bytes, 0);
        let mut log_only = build(0, 0, 0);

        for (i, &op) in ops.iter().enumerate() {
            if mid_crash == i {
                for shard in [&mut chained, &mut full, &mut log_only] {
                    shard.crash();
                    shard.recover().unwrap();
                }
            }
            let a = apply(&mut chained, op);
            let b = apply(&mut full, op);
            let c = apply(&mut log_only, op);
            prop_assert_eq!(&a, &b, "chained vs full diverged at op {} ({:?})", i, op);
            prop_assert_eq!(&b, &c, "full vs log-only diverged at op {} ({:?})", i, op);
        }

        let live = fingerprint(&chained);
        prop_assert_eq!(&live, &fingerprint(&full));
        prop_assert_eq!(&live, &fingerprint(&log_only));

        // The final crash: every shard rebuilds from its own durable format
        // — base + delta chain, full snapshots, or the bare log.
        for shard in [&mut chained, &mut full, &mut log_only] {
            shard.crash();
            shard.recover().unwrap();
            shard.arbiter().check_invariants().unwrap();
            prop_assert_eq!(&fingerprint(shard), &live, "recovery lost state");
        }
    }
}
