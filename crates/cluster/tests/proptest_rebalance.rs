//! Property: for *any* randomized mix of idle, token-holding and
//! queue-backed groups, scale-out rebalancing converges — `rebalance_idle`
//! moves the idle groups and defers the active ones, `rebalance_active`
//! drains that deferred list completely — with the floor invariants and
//! exactly-once decision accounting preserved throughout.

use std::collections::BTreeSet;

use dmps_cluster::{Cluster, ClusterConfig, GlobalGroupId, GlobalRequest};
use dmps_floor::{FcmMode, Member, Role};
use proptest::prelude::*;

/// Per-group floor activity the generator chooses from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Activity {
    /// No token holder, no queue: movable by `rebalance_idle`.
    Idle,
    /// Member 0 holds the token.
    Held,
    /// Member 0 holds the token, members 1.. queue behind it.
    HeldWithQueue,
}

fn arb_activity() -> impl Strategy<Value = Activity> {
    prop_oneof![
        Just(Activity::Idle),
        Just(Activity::Held),
        Just(Activity::HeldWithQueue),
    ]
}

fn total_granted(cluster: &Cluster) -> u64 {
    cluster
        .shard_stats()
        .iter()
        .map(|(_, stats)| stats.granted)
        .sum()
}

proptest! {
    #[test]
    fn randomized_mix_drains_deferred_with_invariants_and_exactly_once(
        activities in proptest::collection::vec(arb_activity(), 8..32),
        shards in 2usize..5,
    ) {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(shards));
        let mut rosters = Vec::new();
        let mut gids = Vec::new();
        for (g, _) in activities.iter().enumerate() {
            let gid = cluster
                .create_group(format!("g{g}"), FcmMode::EqualControl)
                .unwrap();
            let roster: Vec<_> = (0..3)
                .map(|m| {
                    let role = if m == 0 { Role::Chair } else { Role::Participant };
                    let member =
                        cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                    cluster.join_group(gid, member).unwrap();
                    member
                })
                .collect();
            gids.push(gid);
            rosters.push(roster);
        }
        // Build the requested floor state, journaling every decision.
        let mut journaled = Vec::new();
        for ((gid, roster), activity) in gids.iter().zip(&rosters).zip(&activities) {
            let speakers = match activity {
                Activity::Idle => 0,
                Activity::Held => 1,
                Activity::HeldWithQueue => roster.len(),
            };
            for &m in roster.iter().take(speakers) {
                let speak = GlobalRequest::speak(*gid, m);
                journaled.push((cluster.submit(speak).unwrap(), speak));
            }
        }
        let originals: std::collections::BTreeMap<u64, _> =
            cluster.flush().into_iter().map(|d| (d.seq, d)).collect();
        cluster.check_invariants().unwrap();
        let granted_before = total_granted(&cluster);

        cluster.add_shard();
        let idle_pass = cluster.rebalance_idle().unwrap();
        cluster.check_invariants().unwrap();
        // The idle pass never moves an active group.
        for g in &idle_pass.migrated {
            prop_assert_eq!(activities[g.0 as usize], Activity::Idle);
        }
        // Every deferred group is drained by the live pass, none is lost and
        // none moves twice.
        let live_pass = cluster.rebalance_active().unwrap();
        cluster.check_invariants().unwrap();
        prop_assert!(live_pass.deferred.is_empty());
        prop_assert_eq!(&live_pass.migrated, &idle_pass.deferred);
        let idle_set: BTreeSet<GlobalGroupId> = idle_pass.migrated.iter().copied().collect();
        let live_set: BTreeSet<GlobalGroupId> = live_pass.migrated.iter().copied().collect();
        prop_assert!(idle_set.is_disjoint(&live_set));

        // Exactly-once accounting: migration re-arbitrated nothing…
        prop_assert_eq!(total_granted(&cluster), granted_before);
        // …and every journaled pre-migration decision still replays
        // identically, wherever its group lives now.
        let gateway = cluster.gateway();
        for (seq, speak) in &journaled {
            gateway.resubmit(*seq, *speak).unwrap();
            let retry = gateway.recv_decision().unwrap();
            prop_assert_eq!(retry.seq, *seq);
            prop_assert!(retry.replayed);
            prop_assert_eq!(&retry.outcome, &originals[seq].outcome);
        }
        prop_assert_eq!(total_granted(&cluster), granted_before);

        // Token state survived per activity: holders still hold, queues kept
        // FIFO order, and the arbitration resumes seamlessly.
        for ((gid, roster), activity) in gids.iter().zip(&rosters).zip(&activities) {
            let placement = cluster.placement(*gid).unwrap();
            let token = cluster
                .arbiter(placement.shard)
                .token(placement.local)
                .unwrap()
                .clone();
            match activity {
                Activity::Idle => prop_assert!(token.holder().is_none()),
                Activity::Held | Activity::HeldWithQueue => {
                    let holder = cluster.local_member(roster[0], placement.shard).unwrap();
                    prop_assert_eq!(token.holder(), Some(holder));
                    if *activity == Activity::HeldWithQueue {
                        let queued: Vec<_> = roster[1..]
                            .iter()
                            .map(|&m| cluster.local_member(m, placement.shard).unwrap())
                            .collect();
                        prop_assert_eq!(token.queue().collect::<Vec<_>>(), queued);
                    }
                }
            }
        }
        cluster.check_invariants().unwrap();
    }
}
