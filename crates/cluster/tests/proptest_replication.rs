//! Properties of the replicated write path, under seeded loss on the
//! replica links:
//!
//! 1. **Quorum-committed log ≡ single log**: for any randomized op sequence,
//!    a replicated cluster (any fleet size, lossy links, an optional
//!    mid-sequence crash-and-promote) produces exactly the same decisions
//!    and final floor/session state as an unreplicated cluster applying the
//!    same sequence.
//! 2. **Read-your-writes**: follower-served reads issued between writes
//!    never lag the reader's own acknowledged writes — every view matches
//!    the unreplicated reference exactly at the same point in the sequence.

use dmps_cluster::{
    Cluster, ClusterConfig, GlobalGroupId, GlobalMemberId, GlobalRequest, SessionOp,
};
use dmps_floor::{FcmMode, Member, Role};
use dmps_simnet::Link;
use proptest::prelude::*;

const MEMBERS: usize = 4;

/// One step of the randomized workload, addressing members by index.
#[derive(Debug, Clone, Copy)]
enum Op {
    Speak(usize),
    Release(usize),
    Pass(usize, usize),
    Chat(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..MEMBERS).prop_map(Op::Speak),
        (0..MEMBERS).prop_map(Op::Release),
        (0..MEMBERS, 0..MEMBERS).prop_map(|(a, b)| Op::Pass(a, b)),
        (0..MEMBERS).prop_map(Op::Chat),
    ]
}

/// A 2-shard cluster with one Equal Control group and `MEMBERS` members.
fn build(replicas: usize, loss: f64) -> (Cluster, GlobalGroupId, Vec<GlobalMemberId>) {
    let config = ClusterConfig {
        replicas,
        replica_link: Link {
            loss_rate: loss,
            ..Link::replica()
        },
        ..ClusterConfig::with_shards(2)
    };
    let mut cluster = Cluster::new(config);
    let group = cluster
        .create_group("lecture", FcmMode::EqualControl)
        .unwrap();
    let roster: Vec<_> = (0..MEMBERS)
        .map(|i| {
            let role = if i == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let m = cluster.register_member(Member::new(format!("m{i}"), role));
            cluster.join_group(group, m).unwrap();
            m
        })
        .collect();
    (cluster, group, roster)
}

/// Applies one op synchronously, returning a comparable outcome rendering.
fn apply(cluster: &mut Cluster, group: GlobalGroupId, roster: &[GlobalMemberId], op: Op) -> String {
    match op {
        Op::Speak(a) => format!(
            "{:?}",
            cluster.request(GlobalRequest::speak(group, roster[a]))
        ),
        Op::Release(a) => format!(
            "{:?}",
            cluster.request(GlobalRequest::release_floor(group, roster[a]))
        ),
        Op::Pass(a, b) => format!(
            "{:?}",
            cluster.request(GlobalRequest::pass_floor(group, roster[a], roster[b]))
        ),
        Op::Chat(a) => format!(
            "{:?}",
            cluster.session(SessionOp::chat(group, roster[a], format!("chat-{a}")))
        ),
    }
}

/// The observable read state at one point in the sequence: every member's
/// queue position plus the group's session content.
fn observe(cluster: &Cluster, group: GlobalGroupId, roster: &[GlobalMemberId]) -> String {
    let positions: Vec<_> = roster
        .iter()
        .map(|&m| cluster.queue_position(group, m).ok().flatten())
        .collect();
    let view = cluster.session_view(group).unwrap();
    format!(
        "{positions:?} | {} chat lines | {:?}",
        view.chat.len(),
        view.chat
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replicated_run_is_equivalent_to_unreplicated(
        ops in proptest::collection::vec(arb_op(), 4..48),
        replicas in 1usize..4,
        loss_step in 0usize..3,
        // Values past the op-count range mean "never crash"; the rest name
        // the op index to crash before.
        crash_at in 0usize..96,
    ) {
        let loss = [0.0, 0.15, 0.35][loss_step];
        let (mut replicated, group, roster) = build(replicas, loss);
        let (mut reference, ref_group, ref_roster) = build(0, 0.0);
        let shard = replicated.placement(group).unwrap().shard;
        prop_assert_eq!(shard, reference.placement(ref_group).unwrap().shard);

        for (i, &op) in ops.iter().enumerate() {
            // An optional crash mid-sequence: the replicated cluster fails
            // over by follower promotion, the reference by full
            // snapshot+log replay — they must converge on the same state.
            if crash_at == i {
                replicated.crash_shard(shard);
                replicated.recover_shard(shard).unwrap();
                reference.crash_shard(shard);
                reference.recover_shard(shard).unwrap();
            }
            let a = apply(&mut replicated, group, &roster, op);
            let b = apply(&mut reference, ref_group, &ref_roster, op);
            prop_assert_eq!(&a, &b, "decision diverged at op {} ({:?})", i, op);
            // Read-your-writes: reads right after the acked write observe
            // it, whether a follower or the leader serves them. The
            // unreplicated reference *is* the leader's state, so equality
            // here is exactly the RYW bound holding.
            let ra = observe(&replicated, group, &roster);
            let rb = observe(&reference, ref_group, &ref_roster);
            prop_assert_eq!(&ra, &rb, "read diverged at op {} ({:?})", i, op);
        }

        // Final state equivalence, compared on the wire encoding of the
        // owning shard's arbiter (token holders, queues, suspension order —
        // everything).
        replicated.check_invariants().unwrap();
        reference.check_invariants().unwrap();
        let a = dmps_wire::to_string(&replicated.arbiter(shard));
        let b = dmps_wire::to_string(&reference.arbiter(shard));
        prop_assert_eq!(a, b, "final arbiter state diverged");
    }

    #[test]
    fn follower_reads_never_violate_ryw_under_loss(
        writes in 4usize..32,
        replicas in 1usize..4,
    ) {
        // Lossy links mean some followers lag behind the quorum; the bound
        // must route those reads to the leader instead of serving stale
        // state.
        let (cluster, group, roster) = build(replicas, 0.35);
        let gateway = cluster.gateway();
        gateway.request(GlobalRequest::speak(group, roster[0])).unwrap();
        for i in 0..writes {
            let seq = gateway
                .submit_session(SessionOp::chat(group, roster[0], format!("line {i}")))
                .unwrap();
            let ack = gateway.recv_session_decision().unwrap();
            prop_assert_eq!(ack.seq, seq);
            prop_assert!(ack.commit > 0);
            let view = gateway.session_view(group).unwrap();
            prop_assert_eq!(view.chat.len(), i + 1, "own write invisible at {}", i);
        }
    }
}
