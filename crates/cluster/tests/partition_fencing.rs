//! Partition + epoch-fenced failover through the public `Cluster` API: a
//! leader isolated from its followers mid-quorum-write self-demotes when the
//! stall budget burns out, the healed partition promotes a follower under a
//! bumped epoch, and gateway retries resolve every stranded request exactly
//! once — no double-release, no forked log.

use dmps_cluster::{
    Cluster, ClusterConfig, ClusterError, GlobalGroupId, GlobalMemberId, GlobalRequest,
};
use dmps_floor::{ArbitrationOutcome, FcmMode, Member, Role};

/// A replicated single-shard-of-interest cluster with one Equal Control
/// group and three members (member 0 speaks first and holds the floor).
fn replicated_cluster(replicas: usize) -> (Cluster, GlobalGroupId, Vec<GlobalMemberId>) {
    let config = ClusterConfig::with_shards(1).with_replicas(replicas);
    let mut cluster = Cluster::new(config);
    let group = cluster
        .create_group("lecture", FcmMode::EqualControl)
        .unwrap();
    let roster: Vec<_> = (0..3)
        .map(|i| {
            let role = if i == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let m = cluster.register_member(Member::new(format!("m{i}"), role));
            cluster.join_group(group, m).unwrap();
            m
        })
        .collect();
    (cluster, group, roster)
}

/// Drives the full scenario and returns everything a determinism comparison
/// needs: phase outcomes, epochs, and the serialized post-failover arbiter.
#[allow(clippy::type_complexity)]
fn partition_failover_scenario() -> (Vec<String>, Vec<(u64, String, bool, u64)>, String, u64) {
    let (mut cluster, group, roster) = replicated_cluster(3);
    let shard = cluster.placement(group).unwrap().shard;

    // Phase 1 — healthy quorum traffic: m0 takes the floor, m1/m2 queue.
    for &m in &roster {
        cluster.submit(GlobalRequest::speak(group, m)).unwrap();
    }
    let healthy: Vec<_> = cluster.flush();
    assert_eq!(healthy.len(), 3);
    for d in &healthy {
        assert!(d.outcome.is_ok());
        assert!(d.commit > 0, "quorum-committed decisions carry a bound");
        assert_eq!(d.epoch, 1, "first leader incarnation stamps epoch 1");
    }

    // Phase 2 — partition the leader away from every follower, then write
    // through it. The leader group-commits locally and ships appends that
    // the partition swallows: the writes are stranded mid-quorum-write.
    cluster.isolate_shard_leader(shard);
    let stranded = [
        cluster
            .submit(GlobalRequest::release_floor(group, roster[0]))
            .unwrap(),
        cluster
            .submit(GlobalRequest::speak(group, roster[0]))
            .unwrap(),
    ];
    let drained: Vec<_> = cluster.flush();

    // The stall budget burned out retransmitting into the void: the leader
    // failed its pipeline, answered the parked writes ShardDown, and
    // self-demoted rather than risk serving a minority fork.
    assert_eq!(drained.len(), stranded.len());
    for d in &drained {
        assert!(
            matches!(d.outcome, Err(ClusterError::ShardDown(_))),
            "stranded writes drain as ShardDown, got {:?}",
            d.outcome
        );
        assert!(!d.replayed);
        assert_eq!(d.epoch, 0, "failed decisions carry no epoch");
    }
    assert!(
        !cluster.is_shard_active(shard),
        "a leader that cannot reach quorum must demote itself"
    );
    let partitions = cluster
        .metrics()
        .counter(&format!("cluster.shard.{}.fault.partitions", shard.0))
        .get();
    assert_eq!(partitions, 1, "the partition was counted");

    // Phase 3 — heal and fail over: promotion bumps the epoch, fencing any
    // stale incarnation, and the promoted follower owns exactly the
    // quorum-committed prefix (phase 1) — the stranded suffix never forked
    // into its log.
    cluster.heal_shard_partition(shard);
    cluster.recover_shard(shard).unwrap();
    assert!(cluster.is_shard_active(shard));
    cluster.check_invariants().unwrap();
    let lag = cluster
        .metrics()
        .histogram(&format!("cluster.shard.{}.replica.catch_up_lag", shard.0));
    assert_eq!(lag.count(), 1, "exactly one follower promotion");

    // Phase 4 — gateway retries under the original ids, in order. The
    // promoted leader never saw the stranded suffix, so the retries
    // re-arbitrate fresh — exactly once — under the bumped epoch.
    let gateway = cluster.gateway();
    let retry_reqs = [
        GlobalRequest::release_floor(group, roster[0]),
        GlobalRequest::speak(group, roster[0]),
    ];
    let mut retried = Vec::new();
    for (&seq, &req) in stranded.iter().zip(retry_reqs.iter()) {
        gateway.resubmit(seq, req).unwrap();
        let d = gateway.recv_decision().unwrap();
        assert_eq!(d.seq, seq);
        assert!(d.outcome.is_ok(), "retry must arbitrate: {:?}", d.outcome);
        assert_eq!(
            d.epoch, 2,
            "post-failover decisions straddle the epoch bump"
        );
        retried.push(d);
    }

    // Exactly-once floor semantics across the failover: the release let m1
    // in, and m0 rejoined at the back of the queue. A double-applied
    // release (or a forked log) would leave a different holder or queue.
    assert!(matches!(
        retried[0].outcome.as_deref(),
        Ok(ArbitrationOutcome::Granted { .. })
    ));
    assert!(matches!(
        retried[1].outcome.as_deref(),
        Ok(ArbitrationOutcome::Queued { .. })
    ));
    let placement = cluster.placement(group).unwrap();
    let token = cluster
        .arbiter(placement.shard)
        .token(placement.local)
        .unwrap()
        .clone();
    assert_eq!(token.queue_len(), 2, "m2 and m0 queue behind m1");
    cluster.check_invariants().unwrap();

    // A retry of an already-retried id replays from the new journal instead
    // of double-applying — the dedup window survived promotion.
    gateway.resubmit(stranded[0], retry_reqs[0]).unwrap();
    let replayed = gateway.recv_decision().unwrap();
    assert!(replayed.replayed, "second retry answers from the journal");
    assert_eq!(replayed.outcome, retried[0].outcome);

    let healthy_outcomes = healthy.iter().map(|d| format!("{:?}", d.outcome)).collect();
    let retried_flat = retried
        .iter()
        .map(|d| (d.seq, format!("{:?}", d.outcome), d.replayed, d.epoch))
        .collect();
    let arbiter = dmps_wire::to_string(&cluster.arbiter(placement.shard));
    (healthy_outcomes, retried_flat, arbiter, partitions)
}

#[test]
fn partition_mid_quorum_write_fences_leader_and_fails_over_exactly_once() {
    partition_failover_scenario();
}

#[test]
fn partition_failover_is_deterministic_across_runs() {
    // No wall-clock dependence anywhere on the path: the stall budget, the
    // epoch bump and the retry outcomes reproduce exactly run over run.
    assert_eq!(partition_failover_scenario(), partition_failover_scenario());
}

#[test]
fn heal_without_demotion_keeps_the_original_leader() {
    // A partition that never carries traffic burns no stall budget: the
    // leader stays active, and healing needs no failover. The fault plane
    // must not invent failovers the workload never forced.
    let (mut cluster, group, roster) = replicated_cluster(2);
    let shard = cluster.placement(group).unwrap().shard;
    cluster
        .submit(GlobalRequest::speak(group, roster[0]))
        .unwrap();
    let decisions = cluster.flush();
    assert!(decisions.iter().all(|d| d.outcome.is_ok()));

    cluster.isolate_shard_leader(shard);
    cluster.heal_shard_partition(shard);
    assert!(
        cluster.is_shard_active(shard),
        "an idle partition must not demote the leader"
    );

    // Quorum traffic flows again over the healed links, same epoch.
    cluster
        .submit(GlobalRequest::speak(group, roster[1]))
        .unwrap();
    let after: Vec<_> = cluster.flush();
    assert_eq!(after.len(), 1);
    assert!(after[0].outcome.is_ok());
    assert_eq!(after[0].epoch, 1, "no failover, no epoch bump");
    cluster.check_invariants().unwrap();
}

#[test]
fn fenced_decisions_never_double_release() {
    // The crux of fencing: a request the old leader *answered* ShardDown
    // must not also have mutated the surviving quorum's state. Count grants
    // across the whole run — the floor changed hands exactly once.
    let (mut cluster, group, roster) = replicated_cluster(3);
    let shard = cluster.placement(group).unwrap().shard;
    for &m in &roster {
        cluster.submit(GlobalRequest::speak(group, m)).unwrap();
    }
    let healthy = cluster.flush();
    let grants_before = healthy
        .iter()
        .filter(|d| matches!(d.outcome.as_deref(), Ok(ArbitrationOutcome::Granted { .. })))
        .count();
    assert_eq!(grants_before, 1, "m0 holds the floor");

    cluster.isolate_shard_leader(shard);
    let seq = cluster
        .submit(GlobalRequest::release_floor(group, roster[0]))
        .unwrap();
    let drained = cluster.flush();
    assert!(drained
        .iter()
        .all(|d| matches!(d.outcome, Err(ClusterError::ShardDown(_)))));
    cluster.heal_shard_partition(shard);
    cluster.recover_shard(shard).unwrap();

    // The promoted quorum still shows m0 holding: the fenced release never
    // leaked. Exactly one grant follows the (single) successful retry.
    let placement = cluster.placement(group).unwrap();
    assert!(
        cluster
            .arbiter(placement.shard)
            .token(placement.local)
            .unwrap()
            .holder()
            .is_some(),
        "fenced release must not have applied"
    );

    let gateway = cluster.gateway();
    gateway
        .resubmit(seq, GlobalRequest::release_floor(group, roster[0]))
        .unwrap();
    let retry = gateway.recv_decision().unwrap();
    assert!(
        matches!(
            retry.outcome.as_deref(),
            Ok(ArbitrationOutcome::Granted { .. })
        ),
        "the single release hands the floor to m1: {:?}",
        retry.outcome
    );
    cluster.check_invariants().unwrap();
}
