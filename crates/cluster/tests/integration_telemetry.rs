//! End-to-end telemetry through the public `Cluster` API: sampled pipeline
//! spans, the cluster-wide metric namespace, dedup/replay counters, and
//! windowed queue peaks.

use std::time::{Duration, Instant};

use dmps_cluster::telemetry::Stage;
use dmps_cluster::{
    Cluster, ClusterConfig, GlobalGroupId, GlobalMemberId, GlobalRequest, SessionOp,
};
use dmps_floor::{FcmMode, Member, Role};

/// A 2-shard cluster with one free-access lecture group and a chair.
fn traced_cluster(trace_sampling: u64) -> (Cluster, GlobalGroupId, GlobalMemberId) {
    let config = ClusterConfig {
        trace_sampling,
        ..ClusterConfig::with_shards(2)
    };
    let mut cluster = Cluster::new(config);
    let group = cluster
        .create_group("lecture", FcmMode::FreeAccess)
        .unwrap();
    let member = cluster.register_member(Member::new("t", Role::Chair));
    cluster.join_group(group, member).unwrap();
    (cluster, group, member)
}

/// Spans are retained *after* replies flush, so a freshly-answered request's
/// span may still be in flight on the worker thread for a moment.
fn wait_for_spans(cluster: &Cluster, at_least: usize) -> Vec<dmps_cluster::telemetry::TraceSpan> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let spans = cluster.recent_spans();
        if spans.len() >= at_least || Instant::now() > deadline {
            return spans;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn sampled_spans_complete_with_monotonic_stages() {
    let (cluster, group, member) = traced_cluster(1);
    let gateway = cluster.gateway();
    for _ in 0..4 {
        let seq = gateway.submit(GlobalRequest::speak(group, member)).unwrap();
        assert_eq!(gateway.recv_decision().unwrap().seq, seq);
        let seq = gateway
            .submit(GlobalRequest::release_floor(group, member))
            .unwrap();
        assert_eq!(gateway.recv_decision().unwrap().seq, seq);
    }
    let seq = gateway
        .submit_session(SessionOp::chat(group, member, "hi"))
        .unwrap();
    assert_eq!(gateway.recv_session_decision().unwrap().seq, seq);

    let spans = wait_for_spans(&cluster, 9);
    assert!(
        spans.len() >= 9,
        "1-in-1 sampling must trace every submission, got {}",
        spans.len()
    );
    for span in &spans {
        assert!(span.is_complete(), "span must reach every stage: {span}");
        let offsets: Vec<u64> = Stage::ALL
            .iter()
            .map(|&stage| span.stage_ns(stage).unwrap())
            .collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted, "stage offsets monotonic: {span}");
        assert!(span.shard().is_some(), "completed spans are shard-tagged");
        assert!(
            span.gateway().is_some(),
            "gateway submissions carry the tag"
        );
    }
    // Both planes and the op kinds are visible in the trace.
    assert!(spans.iter().any(|s| s.kind() == "speak"));
    assert!(spans.iter().any(|s| s.kind() == "release_floor"));
    assert!(spans.iter().any(|s| s.kind() == "chat"));
    // The sampled latencies also fed the aggregate histograms.
    let metrics = cluster.metrics();
    assert!(metrics.histogram("cluster.submit_latency_ns").count() >= 8);
    assert!(metrics.histogram("cluster.session_latency_ns").count() >= 1);
}

#[test]
fn disabled_sampling_records_no_spans() {
    let (cluster, group, member) = traced_cluster(0);
    let gateway = cluster.gateway();
    let seq = gateway.submit(GlobalRequest::speak(group, member)).unwrap();
    assert_eq!(gateway.recv_decision().unwrap().seq, seq);
    assert!(cluster.recent_spans().is_empty());
}

#[test]
fn metrics_report_names_every_pipeline_layer() {
    let (mut cluster, group, member) = traced_cluster(0);
    let gateway = cluster.gateway();
    let batch = [
        GlobalRequest::speak(group, member),
        GlobalRequest::release_floor(group, member),
    ];
    let seqs = gateway.submit_batch(&batch);
    gateway.collect_decisions(seqs.len()).unwrap();
    // A replayed id is a dedup hit on the owning shard.
    let seq = cluster.allocate_request_id();
    let (_, replayed) = cluster
        .request_with_id(seq, GlobalRequest::speak(group, member))
        .unwrap();
    assert!(!replayed);
    let (_, replayed) = cluster
        .request_with_id(seq, GlobalRequest::speak(group, member))
        .unwrap();
    assert!(replayed, "second submission under the same id replays");

    let shard = cluster.placement(group).unwrap().shard.0;
    let metrics = cluster.metrics();
    assert_eq!(
        metrics
            .counter(&format!("cluster.shard.{shard}.dedup_hits"))
            .get(),
        1
    );
    assert!(
        metrics
            .histogram(&format!("cluster.shard.{shard}.drain_batch"))
            .count()
            >= 1
    );
    assert!(
        metrics
            .histogram(&format!("cluster.shard.{shard}.commit_latency_ns"))
            .count()
            >= 1
    );
    assert!(
        metrics
            .histogram(&format!("cluster.shard.{shard}.append_latency_ns"))
            .count()
            >= 1
    );

    // The rendered report names every layer of the pipeline, and the JSON
    // form is machine-shaped.
    let report = cluster.metrics_report();
    for name in [
        "cluster.sheds",
        "cluster.parked_ops",
        "cluster.redriven_ops",
        "cluster.submit_latency_ns",
        "cluster.shard.0.queue_depth",
        "cluster.shard.0.drain_batch",
        "cluster.shard.0.commit_latency_ns",
        "cluster.shard.0.with_stall_ns",
        "cluster.shard.0.append_latency_ns",
        "cluster.shard.0.snapshot_pause_ns",
        "cluster.shard.0.dedup_hits",
        "cluster.shard.1.queue_depth",
        "gateway.0.submit_batch_size",
        "gateway.0.retries",
    ] {
        assert!(report.contains(name), "report must name {name}:\n{report}");
    }
    let json = cluster.metrics_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"cluster.sheds\""));
}

#[test]
fn fault_counters_surface_in_the_stable_metrics_namespace() {
    // The fault plane reports under `cluster.shard.N.fault.*` — the names
    // dashboards and the chaos soak key on. A replicated shard registers
    // the whole family up front (zeros included), and a partition-driven
    // failover moves the partition counter.
    let config = ClusterConfig::with_shards(1).with_replicas(2);
    let mut cluster = Cluster::new(config);
    let group = cluster
        .create_group("lecture", FcmMode::FreeAccess)
        .unwrap();
    let member = cluster.register_member(Member::new("t", Role::Chair));
    cluster.join_group(group, member).unwrap();
    let shard = cluster.placement(group).unwrap().shard;

    cluster.submit(GlobalRequest::speak(group, member)).unwrap();
    cluster.flush();
    cluster.isolate_shard_leader(shard);
    cluster
        .submit(GlobalRequest::release_floor(group, member))
        .unwrap();
    cluster.flush();
    cluster.heal_shard_partition(shard);
    cluster.recover_shard(shard).unwrap();

    let report = cluster.metrics_report();
    let json = cluster.metrics_json();
    for name in [
        "cluster.shard.0.fault.partitions",
        "cluster.shard.0.fault.fenced_appends",
        "cluster.shard.0.fault.checksum_failures",
        "cluster.shard.0.fault.repairs",
    ] {
        assert!(report.contains(name), "report must name {name}:\n{report}");
        assert!(
            json.contains(&format!("\"{name}\"")),
            "json must name {name}"
        );
    }
    assert_eq!(
        cluster
            .metrics()
            .counter("cluster.shard.0.fault.partitions")
            .get(),
        1,
        "the injected partition was counted"
    );
}

#[test]
fn reset_queue_peak_gives_windowed_peaks() {
    let (mut cluster, group, member) = traced_cluster(0);
    let shard = cluster.placement(group).unwrap().shard;
    cluster.submit(GlobalRequest::speak(group, member)).unwrap();
    cluster.flush();
    assert!(
        cluster.queue_stats(shard).peak_queued >= 1,
        "the submission must have been observed in the queue"
    );
    // Resetting opens a new observation window: with the queue idle the peak
    // drops to the current occupancy (zero), then the next submission is the
    // new window's high-water mark.
    cluster.reset_queue_peak(shard);
    assert_eq!(cluster.queue_stats(shard).peak_queued, 0);
    cluster
        .submit(GlobalRequest::release_floor(group, member))
        .unwrap();
    cluster.flush();
    assert!(cluster.queue_stats(shard).peak_queued >= 1);
}

#[test]
fn queue_peak_series_keeps_history_across_window_resets() {
    use dmps_cluster::telemetry::Metric;

    let (mut cluster, group, member) = traced_cluster(0);
    let shard = cluster.placement(group).unwrap().shard;
    for _ in 0..8 {
        cluster.submit(GlobalRequest::speak(group, member)).unwrap();
        cluster
            .submit(GlobalRequest::release_floor(group, member))
            .unwrap();
    }
    cluster.flush();

    let series = match cluster
        .metrics()
        .get(&format!("cluster.shard.{}.queue_peak", shard.0))
    {
        Some(Metric::TimeSeries(s)) => s,
        other => panic!("queue_peak must be a time-series, got {other:?}"),
    };
    let observed_before = series.observations();
    assert!(
        observed_before > 0,
        "worker sampled the peak while draining"
    );

    // Resetting the QueueStats window must not disturb the time-series: the
    // retained samples (the historical windows) survive, only the live
    // counter restarts.
    cluster.reset_queue_peak(shard);
    assert_eq!(cluster.queue_stats(shard).peak_queued, 0);
    assert_eq!(series.observations(), observed_before);
    assert!(!series.samples().is_empty());

    // Traffic in the new window raises the windowed peak again and keeps
    // appending to the same series.
    for _ in 0..8 {
        cluster.submit(GlobalRequest::speak(group, member)).unwrap();
        cluster
            .submit(GlobalRequest::release_floor(group, member))
            .unwrap();
    }
    cluster.flush();
    assert!(cluster.queue_stats(shard).peak_queued >= 1);
    assert!(
        series.observations() > observed_before,
        "the new window's drains keep feeding the series"
    );
}
