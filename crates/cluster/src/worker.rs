//! Persistent per-shard worker pipelines with batch-drained, group-committed
//! ingest and a pipelined quorum-replication stage.
//!
//! Every shard's [`Shard`] state is owned by exactly one long-lived OS thread
//! which drains a **bounded** command queue (see the `queue` module) — the
//! successor of the old one-command-per-wakeup, unbounded-channel design.
//! Because the worker is the *only* code that ever touches the shard, no lock
//! protects the arbiter: the queue itself is the serialization point, and any
//! number of gateways can send into it concurrently.
//!
//! The drain loop is batch-oriented end to end:
//!
//! 1. One blocking receive wakes the worker; it then greedily drains up to
//!    [`ClusterConfig::ingest_batch`](crate::ClusterConfig::ingest_batch)
//!    further commands without blocking, so one wakeup amortizes over a whole
//!    burst.
//! 2. The batch is arbitrated against the shard inside a
//!    [`Shard::begin_batch`]/[`Shard::commit_batch`] bracket: every request
//!    applies to the live arbiter immediately (so intra-batch ordering is
//!    exactly sequential ordering), but the durable log is appended **once**
//!    per batch ([`EventLog::append_batch`](crate::EventLog::append_batch))
//!    and the snapshot cadence is checked once per batch — the group commit.
//! 3. Replies are released only *after* the group commit (a decision is never
//!    visible before its event is durable), coalesced per submitting gateway:
//!    one channel send per gateway per batch instead of one per decision.
//!
//! With a nonzero [`ClusterConfig::replicas`](crate::ClusterConfig::replicas),
//! step 3 additionally waits for a **write quorum**: after the local
//! group commit the batch's log suffix is shipped to the shard's follower
//! fleet (see the `replication` module) and its replies park in an in-flight
//! window while the worker goes straight back to draining and arbitrating the
//! *next* batch — one quorum round-trip per batch, pipelined. A parked
//! batch's replies release as soon as enough follower acks cover its end
//! position, so decisions still never outrun durability (now quorum
//! durability); the pipeline depth is bounded by
//! [`ClusterConfig::replica_pipeline`](crate::ClusterConfig::replica_pipeline),
//! and an idle worker settles every in-flight batch (retransmitting into
//! lossy links as needed) before it blocks, so no decision is ever held
//! hostage by an ack that got lost.
//!
//! Three command shapes cover everything:
//!
//! * `ShardCommand::Request` — the streaming floor-ingest path (through the
//!   shard's dedup window, see [`Shard::arbitrate_dedup`]).
//! * `ShardCommand::Session` — the session-ops path
//!   ([`Shard::arbitrate_session_dedup`]).
//! * `ShardCommand::With` — the control plane. A closure runs with exclusive
//!   access to the shard (create a group, crash, recover, inspect, and the
//!   live-handoff phases). A `With` command is a **barrier** inside a batch:
//!   the worker group-commits and releases every decision produced so far
//!   before the closure runs, so control code always observes a fully
//!   committed shard — `handoff_prepare`'s pinned log position, snapshots and
//!   crashes can never observe half a batch. Control commands are also exempt
//!   from the queue's ingest bound, so a saturated queue cannot starve (or
//!   deadlock) crash-recovery and handoffs.
//!
//! Reply routing is allocation-free on the submit side: instead of cloning a
//! `Sender` into every command, each gateway registers its reply channels
//! once in the shared `ReplyRegistry` and commands carry a small
//! generation-checked `ReplyHandle`. A gateway that dropped simply misses
//! its decisions; a reused slot cannot leak decisions across gateways because
//! the generation check fails.
//!
//! A worker survives its shard crashing — the thread keeps draining the
//! queue and answers requests with [`crate::ClusterError::ShardDown`] until
//! a recover command arrives — and exits only when the last command sender
//! is dropped, at which point `ShardWorker`'s `Drop` impl joins the thread.
//!
//! The pipeline itself is crate-private; it is exercised through the public
//! ingest API:
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
//! let g = cluster.create_group("lecture", FcmMode::EqualControl).unwrap();
//! let m = cluster.register_member(Member::new("t", Role::Chair));
//! cluster.join_group(g, m).unwrap();
//! // `submit` enqueues onto the owning shard's bounded queue; the worker
//! // batch-drains, group-commits, and streams the decisions back.
//! cluster.submit(GlobalRequest::speak(g, m)).unwrap();
//! let decisions = cluster.flush();
//! assert!(decisions[0].outcome.as_ref().unwrap().is_granted());
//! ```

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use dmps_floor::FloorRequest;
use dmps_simnet::Link;
use dmps_telemetry::{saturating_nanos, Stage, TraceSpan};

use crate::cluster::Decision;
use crate::error::ClusterError;
use crate::instrument::{ReplicaMetrics, WorkerTelemetry};
use crate::queue::{bounded, OverloadPolicy, PushError, QueueReceiver, QueueSender, QueueStats};
use crate::replication::{FollowerCore, ReplicaSet};
use crate::session::{SessionDecision, SessionEvent};
use crate::shard::{GlobalGroupId, Shard};

/// A small, copyable ticket identifying a registered gateway's reply
/// channels. Generation-checked so a recycled slot cannot deliver a dead
/// gateway's decisions to its successor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ReplyHandle {
    index: u32,
    gen: u32,
}

impl ReplyHandle {
    /// The registry slot index — doubles as the gateway's stable telemetry
    /// index (`gateway.N.*` metric names and span tags).
    pub(crate) fn index(&self) -> u32 {
        self.index
    }
}

#[derive(Debug)]
struct Channels {
    decisions: Sender<Vec<Decision>>,
    sessions: Sender<Vec<SessionDecision>>,
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    channels: Option<Channels>,
}

/// The shared table of gateway reply channels: registered once per gateway,
/// looked up by workers on every reply flush. Replaces the per-request
/// `Sender::clone` that used to ride inside every command.
#[derive(Debug, Default)]
pub(crate) struct ReplyRegistry {
    slots: RwLock<Vec<Slot>>,
}

impl ReplyRegistry {
    /// Registers a gateway's reply channels, recycling a free slot if one
    /// exists.
    pub(crate) fn register(
        &self,
        decisions: Sender<Vec<Decision>>,
        sessions: Sender<Vec<SessionDecision>>,
    ) -> ReplyHandle {
        let mut slots = self.slots.write().expect("reply registry");
        let channels = Channels {
            decisions,
            sessions,
        };
        if let Some(index) = slots.iter().position(|s| s.channels.is_none()) {
            let slot = &mut slots[index];
            slot.gen = slot.gen.wrapping_add(1);
            slot.channels = Some(channels);
            return ReplyHandle {
                index: index as u32,
                gen: slot.gen,
            };
        }
        slots.push(Slot {
            gen: 0,
            channels: Some(channels),
        });
        ReplyHandle {
            index: (slots.len() - 1) as u32,
            gen: 0,
        }
    }

    /// Frees a gateway's slot. In-flight decisions addressed to the old
    /// handle are dropped by the generation check.
    pub(crate) fn unregister(&self, handle: ReplyHandle) {
        let mut slots = self.slots.write().expect("reply registry");
        if let Some(slot) = slots.get_mut(handle.index as usize) {
            if slot.gen == handle.gen {
                slot.channels = None;
            }
        }
    }

    /// Delivers a coalesced batch of floor decisions to a gateway. A stale
    /// or freed handle (the gateway is gone) drops the batch, matching the
    /// old dropped-receiver semantics.
    pub(crate) fn send_decisions(&self, handle: ReplyHandle, batch: Vec<Decision>) {
        let slots = self.slots.read().expect("reply registry");
        if let Some(slot) = slots.get(handle.index as usize) {
            if slot.gen == handle.gen {
                if let Some(channels) = &slot.channels {
                    let _ = channels.decisions.send(batch);
                }
            }
        }
    }

    /// Delivers a coalesced batch of session decisions to a gateway.
    pub(crate) fn send_session_decisions(&self, handle: ReplyHandle, batch: Vec<SessionDecision>) {
        let slots = self.slots.read().expect("reply registry");
        if let Some(slot) = slots.get(handle.index as usize) {
            if slot.gen == handle.gen {
                if let Some(channels) = &slot.channels {
                    let _ = channels.sessions.send(batch);
                }
            }
        }
    }
}

/// Where a decision streams back to: the registered channel of a submitting
/// gateway (the hot path — a copyable handle, no allocation), or a one-shot
/// channel for the synchronous `request`/`session` round-trips.
#[derive(Debug)]
pub(crate) enum ReplyTo<T> {
    /// The submitting gateway's registered stream.
    Gateway(ReplyHandle),
    /// A caller-owned one-shot channel (synchronous paths).
    Direct(Sender<T>),
}

impl<T> Clone for ReplyTo<T> {
    fn clone(&self) -> Self {
        match self {
            ReplyTo::Gateway(h) => ReplyTo::Gateway(*h),
            ReplyTo::Direct(tx) => ReplyTo::Direct(tx.clone()),
        }
    }
}

/// One unit of work for a shard worker.
pub(crate) enum ShardCommand {
    /// Arbitrate a floor request; the decision goes to `reply` after the
    /// batch holding it group-commits.
    Request {
        /// Cluster-unique request id (dedup key and decision ordering key).
        seq: u64,
        /// The global group, echoed into the decision.
        group: GlobalGroupId,
        /// The request, already translated to shard-local ids.
        request: FloorRequest,
        /// Where the decision streams back to.
        reply: ReplyTo<Decision>,
        /// The pipeline trace span, present on the 1-in-N sampled requests.
        /// Boxed so the unsampled hot path carries one machine word.
        span: Option<Box<TraceSpan>>,
    },
    /// Apply a session operation; the decision goes to `reply` after the
    /// batch holding it group-commits.
    Session {
        /// Cluster-unique request id (dedup key and decision ordering key).
        seq: u64,
        /// The operation, already translated to shard-local ids.
        event: SessionEvent,
        /// Where the decision streams back to.
        reply: ReplyTo<SessionDecision>,
        /// The pipeline trace span, present on sampled operations.
        span: Option<Box<TraceSpan>>,
    },
    /// Run a closure with exclusive access to the shard and its replica set
    /// (a batch barrier; every in-flight batch is quorum-settled first).
    With(BarrierFn),
    /// Run a fault-injection closure with exclusive access to the shard and
    /// its replica set **without** the settle barrier: the pipeline is left
    /// exactly as it is, batches still parked mid-quorum-write. This is the
    /// point of the fault plane — a partition injected through `With` would
    /// first settle every in-flight batch and never catch a write in
    /// flight.
    Fault(BarrierFn),
}

/// A boxed control-plane barrier closure (see [`ShardCommand::With`]).
pub(crate) type BarrierFn = Box<dyn FnOnce(&mut Shard, &mut ReplicaSet) + Send>;

/// Handle to one shard's persistent worker thread and its bounded queue,
/// plus the read-path ends of the shard's replica fleet.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    sender: Option<QueueSender<ShardCommand>>,
    thread: Option<JoinHandle<()>>,
    /// The shard's follower cores, shared with the routing layer so
    /// `session_view`-style reads can be served without entering the queue.
    followers: Vec<Arc<Mutex<FollowerCore>>>,
    /// The replication instruments (the read path increments the
    /// follower/forwarded split without touching the registry).
    replica_metrics: ReplicaMetrics,
}

impl ShardWorker {
    /// Spawns the worker thread that owns `shard`, draining a bounded queue
    /// of `queue_capacity` ingest commands in group-committed batches of up
    /// to `ingest_batch`, replicated to `replicas` followers over
    /// `replica_link` with at most `replica_pipeline` batches awaiting
    /// quorum.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        shard: Shard,
        registry: Arc<ReplyRegistry>,
        queue_capacity: usize,
        ingest_batch: usize,
        telemetry: WorkerTelemetry,
        replicas: usize,
        replica_link: Link,
        replica_pipeline: usize,
        replica_metrics: ReplicaMetrics,
    ) -> Self {
        let (sender, receiver) = bounded(queue_capacity);
        let name = format!("dmps-shard-{}", shard.id().index());
        let batch = ingest_batch.max(1);
        let window = replica_pipeline.max(1);
        let replica_set =
            ReplicaSet::new(shard.id(), replicas, replica_link, replica_metrics.clone());
        let followers = replica_set.followers().to_vec();
        let thread = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                run(
                    shard,
                    replica_set,
                    receiver,
                    registry,
                    batch,
                    window,
                    telemetry,
                )
            })
            .expect("spawn shard worker thread");
        ShardWorker {
            sender: Some(sender),
            thread: Some(thread),
            followers,
            replica_metrics,
        }
    }

    /// The shard's follower cores (empty when unreplicated).
    pub(crate) fn followers(&self) -> &[Arc<Mutex<FollowerCore>>] {
        &self.followers
    }

    /// The shard's replication instruments.
    pub(crate) fn replica_metrics(&self) -> &ReplicaMetrics {
        &self.replica_metrics
    }

    fn sender(&self) -> &QueueSender<ShardCommand> {
        self.sender.as_ref().expect("sender taken only in drop")
    }

    /// Enqueues one ingest command under the overload policy. `Err` hands
    /// the command back when the queue is full and the policy is
    /// [`OverloadPolicy::Shed`]; the caller answers it with `Overloaded`.
    ///
    /// # Panics
    ///
    /// Panics when the worker thread is gone, which only happens if shard
    /// code panicked — a bug, not a recoverable condition.
    pub(crate) fn push_ingest(
        &self,
        command: ShardCommand,
        policy: OverloadPolicy,
    ) -> Result<(), ShardCommand> {
        match self.sender().push(command, policy) {
            Ok(()) => Ok(()),
            Err(PushError::Full(command)) => Err(command),
            Err(PushError::Disconnected(_)) => {
                panic!("shard worker thread died (shard code panicked)")
            }
        }
    }

    /// Enqueues a run of ingest commands with one queue reservation,
    /// returning the commands shed by a full queue (always empty under
    /// [`OverloadPolicy::Block`]).
    ///
    /// # Panics
    ///
    /// Panics when the worker thread is gone (shard code panicked).
    pub(crate) fn push_ingest_many(
        &self,
        commands: Vec<ShardCommand>,
        policy: OverloadPolicy,
    ) -> Vec<ShardCommand> {
        self.sender()
            .push_many(commands, policy)
            .into_iter()
            .map(|rejected| match rejected {
                PushError::Full(command) => command,
                PushError::Disconnected(_) => {
                    panic!("shard worker thread died (shard code panicked)")
                }
            })
            .collect()
    }

    /// Enqueues a control-plane command, exempt from the ingest bound.
    ///
    /// # Panics
    ///
    /// Panics when the worker thread is gone (shard code panicked).
    pub(crate) fn send_control(&self, command: ShardCommand) {
        if self.sender().push_control(command).is_err() {
            panic!("shard worker thread died (shard code panicked)");
        }
    }

    /// Occupancy statistics of this shard's ingest queue.
    pub(crate) fn stats(&self) -> QueueStats {
        self.sender().stats()
    }

    /// Restarts the queue's peak-occupancy window (see
    /// [`QueueStats::peak_queued`]).
    pub(crate) fn reset_peak(&self) {
        self.sender().reset_peak();
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain what is left and exit;
        // joining makes cluster teardown deterministic.
        drop(self.sender.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Groups replies per gateway handle (forwarding one-shot `Direct` replies
/// as it goes). A drained batch touches a handful of gateways at most, so a
/// linear scan beats a map.
fn coalesce<T>(
    replies: &mut Vec<(ReplyTo<T>, T)>,
    direct: impl Fn(Sender<T>, T),
) -> Vec<(ReplyHandle, Vec<T>)> {
    let mut by_gateway: Vec<(ReplyHandle, Vec<T>)> = Vec::new();
    for (reply, decision) in replies.drain(..) {
        match reply {
            ReplyTo::Gateway(handle) => match by_gateway.iter_mut().find(|(h, _)| *h == handle) {
                Some((_, batch)) => batch.push(decision),
                None => by_gateway.push((handle, vec![decision])),
            },
            // A gateway that dropped its one-shot receiver simply misses
            // the decision; the shard state is already consistent.
            ReplyTo::Direct(tx) => direct(tx, decision),
        }
    }
    by_gateway
}

/// Releases every buffered reply, coalescing gateway-bound decisions into
/// one channel send per gateway. Called only after the batch that produced
/// the replies has group-committed — this is where the decisions-never-
/// outrun-durability barrier is enforced.
fn flush_replies(
    registry: &ReplyRegistry,
    floor: &mut Vec<(ReplyTo<Decision>, Decision)>,
    session: &mut Vec<(ReplyTo<SessionDecision>, SessionDecision)>,
) {
    if !floor.is_empty() {
        for (handle, batch) in coalesce(floor, |tx, decision| {
            let _ = tx.send(decision);
        }) {
            registry.send_decisions(handle, batch);
        }
    }
    if !session.is_empty() {
        for (handle, batch) in coalesce(session, |tx, decision| {
            let _ = tx.send(decision);
        }) {
            registry.send_session_decisions(handle, batch);
        }
    }
}

/// A group-committed batch whose replies are parked awaiting quorum: the
/// log position its events run up to, and everything to release once enough
/// follower acks cover that position.
struct PendingBatch {
    /// The shard log's `next_seq` right after this batch's group commit.
    end_seq: u64,
    floor: Vec<(ReplyTo<Decision>, Decision)>,
    session: Vec<(ReplyTo<SessionDecision>, SessionDecision)>,
    spans: Vec<(Box<TraceSpan>, bool)>,
}

/// Releases one quorum-covered batch: stamps every decision with the
/// quorum-committed log position it rode to (the client's read-your-writes
/// bound) and the leader epoch that committed it, flushes the replies, and
/// completes the sampled spans.
fn release(
    registry: &ReplyRegistry,
    telemetry: &WorkerTelemetry,
    mut batch: PendingBatch,
    epoch: u64,
) {
    for (_, d) in batch.floor.iter_mut() {
        d.commit = batch.end_seq;
        d.epoch = epoch;
    }
    for (_, d) in batch.session.iter_mut() {
        d.commit = batch.end_seq;
        d.epoch = epoch;
    }
    flush_replies(registry, &mut batch.floor, &mut batch.session);
    for (span, is_session) in batch.spans.drain(..) {
        telemetry.finish_span(*span, is_session);
    }
}

/// The self-demotion half of epoch fencing: the quorum is unreachable —
/// this leader is fenced by a newer epoch, or partitioned away from its
/// whole fleet — so no parked reply may ever release. Every parked decision
/// is answered [`ClusterError::ShardDown`] (its submitter retries after
/// failover; the dedup journal, reconciled against whatever state the
/// failover adopts, keeps the retry exactly-once — that is what the orphan
/// notes are for) and the shard demotes itself: serving resumes only
/// through a promotion, which bumps the epoch.
fn fail_pipeline(
    shard: &mut Shard,
    inflight: &mut VecDeque<PendingBatch>,
    registry: &ReplyRegistry,
    telemetry: &WorkerTelemetry,
) {
    while let Some(mut batch) = inflight.pop_front() {
        for (_, d) in batch.floor.iter_mut() {
            if !d.replayed && d.outcome.is_ok() {
                shard.note_orphan(d.seq, batch.end_seq, false);
            }
            d.outcome = Err(ClusterError::ShardDown(shard.id()));
            d.replayed = false;
            d.commit = 0;
            d.epoch = 0;
        }
        for (_, d) in batch.session.iter_mut() {
            if !d.replayed && d.outcome.is_ok() {
                shard.note_orphan(d.seq, batch.end_seq, true);
            }
            d.outcome = Err(ClusterError::ShardDown(shard.id()));
            d.replayed = false;
            d.commit = 0;
            d.epoch = 0;
        }
        flush_replies(registry, &mut batch.floor, &mut batch.session);
        for (span, is_session) in batch.spans.drain(..) {
            telemetry.finish_span(*span, is_session);
        }
    }
    shard.crash();
}

/// Settles the whole pipeline: drives the quorum (retransmitting into lossy
/// links as needed) up to the newest in-flight batch and releases everything.
/// Runs before the worker blocks on an empty queue and at every `With`
/// control barrier — a barrier closure must observe a fully quorum-committed
/// shard.
fn settle_all(
    shard: &mut Shard,
    replicas: &mut ReplicaSet,
    inflight: &mut VecDeque<PendingBatch>,
    registry: &ReplyRegistry,
    telemetry: &WorkerTelemetry,
) {
    if !replicas.is_empty() && shard.is_active() {
        // Decision-free appends (control-plane logs) may still sit in the
        // log's open tail; seal so the retransmission loop can ship them —
        // an unsealed target would never quorum-commit. The quorum target
        // is the newest parked batch, or the log tip when no replies are
        // parked (a barrier needs decision-free appends durable too).
        shard.seal_log();
        let target = inflight
            .back()
            .map_or_else(|| shard.log().next_seq(), |b| b.end_seq);
        if !replicas.force_quorum(shard, target) {
            fail_pipeline(shard, inflight, registry, telemetry);
            return;
        }
    }
    let epoch = replicas.epoch();
    while let Some(batch) = inflight.pop_front() {
        release(registry, telemetry, batch, epoch);
    }
}

/// The tail of every batch: group-commit, then either release the replies
/// immediately (unreplicated) or ship the batch's log suffix to the
/// followers and park the replies in the in-flight window until quorum acks
/// arrive — the worker returns to draining while they are in flight. Commit
/// latency is recorded only for batches that actually produced decisions (a
/// `With`-only wakeup commits an empty batch, which would pollute the
/// histogram with no-op commits).
#[allow(clippy::too_many_arguments)]
fn commit_and_flush(
    shard: &mut Shard,
    replicas: &mut ReplicaSet,
    inflight: &mut VecDeque<PendingBatch>,
    window: usize,
    registry: &ReplyRegistry,
    floor: &mut Vec<(ReplyTo<Decision>, Decision)>,
    session: &mut Vec<(ReplyTo<SessionDecision>, SessionDecision)>,
    spans: &mut Vec<(Box<TraceSpan>, bool)>,
    telemetry: &WorkerTelemetry,
) {
    let had_decisions = !floor.is_empty() || !session.is_empty();
    let commit = Instant::now();
    shard.commit_batch();
    if had_decisions {
        telemetry
            .commit_latency
            .record(saturating_nanos(commit.elapsed()));
    }
    for (span, _) in spans.iter_mut() {
        span.stamp(Stage::Committed);
    }
    let end_seq = shard.log().next_seq();
    if replicas.is_empty() || !shard.is_active() {
        // Unreplicated (the local group commit is the durability point) —
        // or demoted, in which case every answer is an error and needs no
        // quorum.
        let epoch = replicas.epoch();
        for (_, d) in floor.iter_mut() {
            d.commit = end_seq;
            d.epoch = epoch;
        }
        for (_, d) in session.iter_mut() {
            d.commit = end_seq;
            d.epoch = epoch;
        }
        flush_replies(registry, floor, session);
        for (span, is_session) in spans.drain(..) {
            telemetry.finish_span(*span, is_session);
        }
        return;
    }
    // The pipelined quorum write: seal the batch into a shared segment and
    // ship it now, but do not wait for the acks — park the replies and keep
    // draining. The log and every follower retain the same segment.
    shard.seal_log();
    replicas.replicate(shard);
    if had_decisions || !spans.is_empty() {
        inflight.push_back(PendingBatch {
            end_seq,
            floor: std::mem::take(floor),
            session: std::mem::take(session),
            spans: std::mem::take(spans),
        });
    }
    // Opportunistically fold in whatever acks already landed and release
    // the prefix of the window they cover.
    replicas.pump();
    while inflight
        .front()
        .is_some_and(|b| b.end_seq <= replicas.quorum_committed())
    {
        let batch = inflight.pop_front().expect("checked front");
        release(registry, telemetry, batch, replicas.epoch());
    }
    // A full window is the pipeline's backpressure: block on the oldest
    // batch's quorum (retransmitting if its acks were lost) before opening
    // another. A quorum that cannot be reached — fenced or partitioned —
    // fails the whole pipeline instead of blocking forever.
    while inflight.len() > window {
        let batch = inflight.pop_front().expect("len checked");
        if replicas.force_quorum(shard, batch.end_seq) {
            release(registry, telemetry, batch, replicas.epoch());
        } else {
            inflight.push_front(batch);
            fail_pipeline(shard, inflight, registry, telemetry);
            return;
        }
    }
}

fn run(
    mut shard: Shard,
    mut replicas: ReplicaSet,
    queue: QueueReceiver<ShardCommand>,
    registry: Arc<ReplyRegistry>,
    batch: usize,
    window: usize,
    telemetry: WorkerTelemetry,
) {
    let mut commands: Vec<ShardCommand> = Vec::with_capacity(batch);
    let mut floor_replies: Vec<(ReplyTo<Decision>, Decision)> = Vec::with_capacity(batch);
    let mut session_replies: Vec<(ReplyTo<SessionDecision>, SessionDecision)> = Vec::new();
    // Sampled spans of the open batch, each tagged session-or-floor so
    // completion feeds the right latency histogram.
    let mut spans: Vec<(Box<TraceSpan>, bool)> = Vec::new();
    // Batches group-committed locally but awaiting quorum acks.
    let mut inflight: VecDeque<PendingBatch> = VecDeque::new();
    let shard_id = shard.id();
    let shard_index = shard_id.index() as u32;
    loop {
        // Wakeup. With batches in flight the worker must not block — a
        // parked reply could deadlock its submitter against an idle ack —
        // so it probes non-blocking first and settles the pipeline before
        // any blocking wait.
        if commands.is_empty() {
            queue.drain_into(&mut commands, batch);
        }
        if commands.is_empty() {
            settle_all(
                &mut shard,
                &mut replicas,
                &mut inflight,
                &registry,
                &telemetry,
            );
            match queue.recv() {
                Some(first) => commands.push(first),
                None => break,
            }
            if batch > 1 {
                queue.drain_into(&mut commands, batch - 1);
            }
        }
        // All per-wakeup, not per-command, so the drain loop stays
        // amortized: backlog left behind after this drain, its occupancy
        // high-water mark, and how many commands one wakeup took.
        telemetry.queue_depth.observe(queue.depth() as u64);
        telemetry
            .queue_peak
            .observe(queue.stats().peak_queued as u64);
        telemetry.drain_batch.record(commands.len() as u64);
        shard.begin_batch();
        for command in commands.drain(..) {
            match command {
                ShardCommand::Request {
                    seq,
                    group,
                    request,
                    reply,
                    span,
                } => {
                    if let Some(mut span) = span {
                        span.stamp(Stage::Drained);
                        span.set_shard(shard_index);
                        spans.push((span, false));
                    }
                    let (outcome, replayed) = shard.arbitrate_dedup(seq, group, request);
                    floor_replies.push((
                        reply,
                        Decision {
                            seq,
                            group,
                            outcome,
                            replayed,
                            shard: Some(shard_id),
                            commit: 0,
                            epoch: 0,
                        },
                    ));
                }
                ShardCommand::Session {
                    seq,
                    event,
                    reply,
                    span,
                } => {
                    if let Some(mut span) = span {
                        span.stamp(Stage::Drained);
                        span.set_shard(shard_index);
                        spans.push((span, true));
                    }
                    let group = event.group;
                    let (outcome, replayed) = shard.arbitrate_session_dedup(seq, event);
                    session_replies.push((
                        reply,
                        SessionDecision {
                            seq,
                            group,
                            outcome,
                            replayed,
                            shard: Some(shard_id),
                            commit: 0,
                            epoch: 0,
                        },
                    ));
                }
                ShardCommand::With(f) => {
                    // Control barrier: commit the open batch, then settle
                    // every in-flight batch to quorum, so the closure
                    // observes a fully (quorum-)committed shard — handoff
                    // exports, snapshots, crashes and promotions must never
                    // see half a batch or an unsettled pipeline.
                    commit_and_flush(
                        &mut shard,
                        &mut replicas,
                        &mut inflight,
                        window,
                        &registry,
                        &mut floor_replies,
                        &mut session_replies,
                        &mut spans,
                        &telemetry,
                    );
                    settle_all(
                        &mut shard,
                        &mut replicas,
                        &mut inflight,
                        &registry,
                        &telemetry,
                    );
                    let stall = Instant::now();
                    f(&mut shard, &mut replicas);
                    telemetry
                        .with_stall
                        .record(saturating_nanos(stall.elapsed()));
                    shard.begin_batch();
                }
                ShardCommand::Fault(f) => {
                    // Deliberately NOT a barrier: the closure runs with the
                    // open batch uncommitted and earlier batches still parked
                    // mid-quorum-write, so an injected partition or
                    // corruption lands exactly where the schedule placed it.
                    f(&mut shard, &mut replicas);
                }
            }
        }
        // The group commit: one amortized log append + one snapshot-cadence
        // check for the whole batch, then the replies — immediately when
        // unreplicated, after quorum acks when replicated.
        commit_and_flush(
            &mut shard,
            &mut replicas,
            &mut inflight,
            window,
            &registry,
            &mut floor_replies,
            &mut session_replies,
            &mut spans,
            &telemetry,
        );
    }
    // Queue closed (cluster teardown): nothing can be in flight — the loop
    // settles before every blocking receive — but be explicit.
    settle_all(
        &mut shard,
        &mut replicas,
        &mut inflight,
        &registry,
        &telemetry,
    );
}
