//! Persistent per-shard worker pipelines.
//!
//! Every shard's [`Shard`] state is owned by exactly one long-lived OS thread
//! which drains an MPSC command queue — the successor of the old
//! spawn-one-thread-per-`flush_parallel` design. Because the worker is the
//! *only* code that ever touches the shard, no lock protects the arbiter: the
//! queue itself is the serialization point, and any number of gateways can
//! send into it concurrently.
//!
//! Three command shapes cover everything:
//!
//! * `ShardCommand::Request` — the streaming floor-ingest path. The worker
//!   arbitrates (through the shard's dedup window, see
//!   [`Shard::arbitrate_dedup`]) and sends the [`Decision`] straight back to
//!   the submitting gateway's results channel, so decisions stream while
//!   other shards are still working.
//! * `ShardCommand::Session` — the session-ops path. The worker floor-gates
//!   and applies the content delivery (see
//!   [`Shard::arbitrate_session_dedup`]) and streams the
//!   [`SessionDecision`] back the same way.
//! * `ShardCommand::With` — the control plane. A closure runs with
//!   exclusive access to the shard (create a group, crash, recover,
//!   inspect, and the live-handoff phases
//!   [`Shard::handoff_prepare`](crate::Shard::handoff_prepare) /
//!   [`Shard::handoff_commit_source`](crate::Shard::handoff_commit_source) /
//!   [`Shard::handoff_abort`](crate::Shard::handoff_abort)); callers that
//!   need an answer pack a reply channel into the closure. Because the
//!   queue is the shard's serialization point, a handoff's prepare command
//!   naturally drains *behind* every request submitted before the freeze —
//!   their effects are in the export — while later submissions park at the
//!   routing layer.
//!
//! A worker survives its shard crashing — the thread keeps draining the
//! queue and answers requests with [`crate::ClusterError::ShardDown`] until
//! a recover command arrives — and exits only when the last command sender
//! is dropped, at which point `ShardWorker`'s `Drop` impl joins the thread.
//!
//! The pipeline itself is crate-private; it is exercised through the public
//! ingest API:
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
//! let g = cluster.create_group("lecture", FcmMode::EqualControl).unwrap();
//! let m = cluster.register_member(Member::new("t", Role::Chair));
//! cluster.join_group(g, m).unwrap();
//! // `submit` enqueues onto the owning shard's worker; `flush` awaits the
//! // decisions the worker streamed back.
//! cluster.submit(GlobalRequest::speak(g, m)).unwrap();
//! let decisions = cluster.flush();
//! assert!(decisions[0].outcome.as_ref().unwrap().is_granted());
//! ```

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use dmps_floor::FloorRequest;

use crate::cluster::Decision;
use crate::session::{SessionDecision, SessionEvent};
use crate::shard::{GlobalGroupId, Shard};

/// One unit of work for a shard worker.
pub(crate) enum ShardCommand {
    /// Arbitrate a floor request; the decision goes to `reply`.
    Request {
        /// Cluster-unique request id (dedup key and decision ordering key).
        seq: u64,
        /// The global group, echoed into the decision.
        group: GlobalGroupId,
        /// The request, already translated to shard-local ids.
        request: FloorRequest,
        /// Where the decision streams back to (the submitting gateway).
        reply: Sender<Decision>,
    },
    /// Apply a session operation; the decision goes to `reply`.
    Session {
        /// Cluster-unique request id (dedup key and decision ordering key).
        seq: u64,
        /// The operation, already translated to shard-local ids.
        event: SessionEvent,
        /// Where the decision streams back to (the submitting gateway).
        reply: Sender<SessionDecision>,
    },
    /// Run a closure with exclusive access to the shard.
    With(Box<dyn FnOnce(&mut Shard) + Send>),
}

/// Handle to one shard's persistent worker thread.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    sender: Option<Sender<ShardCommand>>,
    thread: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Spawns the worker thread that owns `shard`.
    pub(crate) fn spawn(shard: Shard) -> Self {
        let (sender, receiver) = channel();
        let name = format!("dmps-shard-{}", shard.id().index());
        let thread = std::thread::Builder::new()
            .name(name)
            .spawn(move || run(shard, receiver))
            .expect("spawn shard worker thread");
        ShardWorker {
            sender: Some(sender),
            thread: Some(thread),
        }
    }

    /// Enqueues a command.
    ///
    /// # Panics
    ///
    /// Panics when the worker thread is gone, which only happens if shard
    /// code panicked — a bug, not a recoverable condition.
    pub(crate) fn send(&self, command: ShardCommand) {
        self.sender
            .as_ref()
            .expect("sender taken only in drop")
            .send(command)
            .expect("shard worker thread is alive");
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain what is left and exit;
        // joining makes cluster teardown deterministic.
        drop(self.sender.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run(mut shard: Shard, queue: Receiver<ShardCommand>) {
    while let Ok(command) = queue.recv() {
        match command {
            ShardCommand::Request {
                seq,
                group,
                request,
                reply,
            } => {
                let (outcome, replayed) = shard.arbitrate_dedup(seq, group, request);
                // A gateway that dropped its results receiver simply misses
                // the decision; the shard state is already consistent.
                let _ = reply.send(Decision {
                    seq,
                    group,
                    outcome,
                    replayed,
                });
            }
            ShardCommand::Session { seq, event, reply } => {
                let group = event.group;
                let (outcome, replayed) = shard.arbitrate_session_dedup(seq, event);
                let _ = reply.send(SessionDecision {
                    seq,
                    group,
                    outcome,
                    replayed,
                });
            }
            ShardCommand::With(f) => f(&mut shard),
        }
    }
}
