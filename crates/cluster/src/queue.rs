//! Bounded MPSC command queues: the backpressure layer between gateways and
//! shard workers.
//!
//! Before this module, every gateway→worker edge was an unbounded
//! `std::sync::mpsc` channel: a submission allocated a queue node, and a
//! storm of submissions could grow a shard's queue without limit until the
//! process ran out of memory. The `bounded` queue replaces that with a
//! pre-allocated ring buffer (a `VecDeque` that never grows past its
//! configured capacity on the ingest path) and a configurable
//! [`OverloadPolicy`]:
//!
//! * [`OverloadPolicy::Block`] — the submitting thread waits for space.
//!   Lossless: under a storm, ingest throttles to the speed the shard
//!   workers actually drain, and memory stays bounded.
//! * [`OverloadPolicy::Shed`] — the push fails immediately and the routing
//!   layer answers the submission with
//!   [`ClusterError::Overloaded`](crate::ClusterError::Overloaded) on the
//!   submitting gateway's decision stream. Nothing is ever dropped
//!   *silently*: a shed request is answered, and a later
//!   [`Gateway::resubmit`](crate::Gateway::resubmit) under the same request
//!   id is exactly-once thanks to the shard dedup window.
//!
//! Only ingest commands (floor requests and session operations) count
//! against the capacity. Control-plane commands — crash/recover, handoff
//! phases, inspection closures — are **exempt**: they are rare, they must
//! not deadlock a coordinator that pushes while holding routing locks, and a
//! live handoff has to be able to freeze and export a group even while its
//! shard's ingest queue is saturated.
//!
//! The receiver side supports the worker's batch-drain loop: one blocking
//! `QueueReceiver::recv` wakes the worker, then a non-blocking
//! `QueueReceiver::drain_into` greedily takes whatever else is queued (up
//! to the configured batch), so one wakeup amortizes over many commands.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What a producer does when a shard's ingest queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Wait for space: lossless backpressure — a storm throttles the
    /// submitters instead of growing memory.
    #[default]
    Block,
    /// Fail fast: the submission is answered with
    /// [`ClusterError::Overloaded`](crate::ClusterError::Overloaded) and the
    /// caller retries under the same request id when it chooses to.
    Shed,
}

/// A point-in-time view of one shard queue's occupancy, for tests, benches
/// and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// The configured ingest capacity (`usize::MAX` when unbounded).
    pub capacity: usize,
    /// Ingest commands queued right now.
    pub queued: usize,
    /// The highest ingest occupancy observed since the queue was created or
    /// the peak was last reset
    /// ([`Cluster::reset_queue_peak`](crate::Cluster::reset_queue_peak)) —
    /// under a [`OverloadPolicy::Shed`] storm this stays ≤ `capacity`, which
    /// is the memory bound the policy exists to enforce. Resetting gives
    /// long-lived clusters per-window peaks instead of one all-time
    /// high-water mark.
    pub peak_queued: usize,
}

/// Why a push did not enqueue; the command is handed back to the caller.
#[derive(Debug)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity and the policy is [`OverloadPolicy::Shed`].
    Full(T),
    /// The receiver is gone (the worker thread exited).
    Disconnected(T),
}

struct State<T> {
    /// Queued commands; the flag marks entries that count against
    /// `capacity` (ingest) as opposed to exempt control commands.
    buf: VecDeque<(T, bool)>,
    /// Ingest commands currently queued.
    bounded: usize,
    /// High-water mark of `bounded`.
    peak: usize,
    senders: usize,
    receiver_alive: bool,
    /// Whether the receiver is parked on `not_empty`. Producers only pay
    /// the wake syscall when somebody is actually waiting — the difference
    /// between a lock-free-channel-class hot path and a futex storm.
    receiver_waiting: bool,
    /// Producers parked on `not_full` (under `Block` at capacity).
    senders_waiting: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// The producer half of a bounded command queue. Cloneable; the receiver
/// observes disconnection when the last sender drops.
pub(crate) struct QueueSender<T>(Arc<Shared<T>>);

/// The consumer half; owned by exactly one worker thread.
pub(crate) struct QueueReceiver<T>(Arc<Shared<T>>);

// Manual impls: the queued commands themselves (which may hold closures)
// need not be `Debug` for the queue handles to be.
impl<T> std::fmt::Debug for QueueSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("QueueSender")
            .field("capacity", &stats.capacity)
            .field("queued", &stats.queued)
            .finish()
    }
}

impl<T> std::fmt::Debug for QueueReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueReceiver")
            .field("capacity", &self.0.capacity)
            .finish()
    }
}

/// Creates a bounded MPSC queue. `capacity` bounds *ingest* entries only
/// (control entries are exempt); `0` means effectively unbounded.
pub(crate) fn bounded<T>(capacity: usize) -> (QueueSender<T>, QueueReceiver<T>) {
    let capacity = if capacity == 0 { usize::MAX } else { capacity };
    let preallocate = capacity.min(64 * 1024) + 16;
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(preallocate),
            bounded: 0,
            peak: 0,
            senders: 1,
            receiver_alive: true,
            receiver_waiting: false,
            senders_waiting: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (QueueSender(shared.clone()), QueueReceiver(shared))
}

impl<T> Clone for QueueSender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("queue state").senders += 1;
        QueueSender(self.0.clone())
    }
}

impl<T> Drop for QueueSender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("queue state");
        state.senders -= 1;
        if state.senders == 0 {
            let wake = state.receiver_waiting;
            drop(state);
            // Wake the receiver so it can observe the disconnect.
            if wake {
                self.0.not_empty.notify_all();
            }
        }
    }
}

impl<T> Drop for QueueReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("queue state");
        state.receiver_alive = false;
        let wake = state.senders_waiting > 0;
        drop(state);
        // Wake blocked producers so they can observe the disconnect.
        if wake {
            self.0.not_full.notify_all();
        }
    }
}

impl<T> QueueSender<T> {
    /// Enqueues one ingest command under the given overload policy.
    pub(crate) fn push(&self, value: T, policy: OverloadPolicy) -> Result<(), PushError<T>> {
        let mut state = self.0.state.lock().expect("queue state");
        while state.bounded >= self.0.capacity {
            if !state.receiver_alive {
                return Err(PushError::Disconnected(value));
            }
            match policy {
                OverloadPolicy::Shed => return Err(PushError::Full(value)),
                OverloadPolicy::Block => {
                    // The queue is full, so the receiver cannot be parked on
                    // `not_empty`; no wake is needed before waiting.
                    state.senders_waiting += 1;
                    state = self.0.not_full.wait(state).expect("queue state");
                    state.senders_waiting -= 1;
                }
            }
        }
        if !state.receiver_alive {
            return Err(PushError::Disconnected(value));
        }
        state.buf.push_back((value, true));
        state.bounded += 1;
        state.peak = state.peak.max(state.bounded);
        let wake = state.receiver_waiting;
        drop(state);
        if wake {
            self.0.not_empty.notify_one();
        }
        Ok(())
    }

    /// Enqueues a run of ingest commands with one lock acquisition (the
    /// "one queue reservation per shard" half of vectored submission).
    ///
    /// Under [`OverloadPolicy::Block`] every command is eventually enqueued
    /// (the call waits for space as needed) and the result is empty; under
    /// [`OverloadPolicy::Shed`] the commands that found no space are handed
    /// back for the caller to answer with `Overloaded`.
    pub(crate) fn push_many(
        &self,
        values: impl IntoIterator<Item = T>,
        policy: OverloadPolicy,
    ) -> Vec<PushError<T>> {
        let mut rejected = Vec::new();
        let mut state = self.0.state.lock().expect("queue state");
        let mut pushed = false;
        for value in values {
            loop {
                if !state.receiver_alive {
                    rejected.push(PushError::Disconnected(value));
                    break;
                }
                if state.bounded < self.0.capacity {
                    state.buf.push_back((value, true));
                    state.bounded += 1;
                    state.peak = state.peak.max(state.bounded);
                    pushed = true;
                    break;
                }
                match policy {
                    OverloadPolicy::Shed => {
                        rejected.push(PushError::Full(value));
                        break;
                    }
                    OverloadPolicy::Block => {
                        // Let the worker see what is queued so far, then wait
                        // for space. (Full queue ⇒ the receiver is not parked
                        // on `not_empty` unless it raced in just now.)
                        if state.receiver_waiting {
                            self.0.not_empty.notify_one();
                        }
                        state.senders_waiting += 1;
                        state = self.0.not_full.wait(state).expect("queue state");
                        state.senders_waiting -= 1;
                    }
                }
            }
        }
        let wake = pushed && state.receiver_waiting;
        drop(state);
        if wake {
            self.0.not_empty.notify_one();
        }
        rejected
    }

    /// Enqueues a control-plane command. Control commands are exempt from
    /// the ingest capacity: they never block on a saturated queue and are
    /// never shed, so crash/recover/handoff/inspection cannot be starved by
    /// a data-plane storm (and a coordinator pushing while holding routing
    /// locks cannot deadlock against [`OverloadPolicy::Block`]).
    pub(crate) fn push_control(&self, value: T) -> Result<(), PushError<T>> {
        let mut state = self.0.state.lock().expect("queue state");
        if !state.receiver_alive {
            return Err(PushError::Disconnected(value));
        }
        state.buf.push_back((value, false));
        let wake = state.receiver_waiting;
        drop(state);
        if wake {
            self.0.not_empty.notify_one();
        }
        Ok(())
    }

    /// Occupancy statistics.
    pub(crate) fn stats(&self) -> QueueStats {
        let state = self.0.state.lock().expect("queue state");
        QueueStats {
            capacity: self.0.capacity,
            queued: state.bounded,
            peak_queued: state.peak,
        }
    }

    /// Restarts the peak-occupancy window: `peak_queued` becomes the current
    /// occupancy (not zero — entries that are still queued were necessarily
    /// observed), and grows from there.
    pub(crate) fn reset_peak(&self) {
        let mut state = self.0.state.lock().expect("queue state");
        state.peak = state.bounded;
    }
}

impl<T> QueueReceiver<T> {
    /// Blocks until a command is available; `None` once the queue is empty
    /// and every sender is gone.
    pub(crate) fn recv(&self) -> Option<T> {
        let mut state = self.0.state.lock().expect("queue state");
        loop {
            if let Some((value, counted)) = state.buf.pop_front() {
                if counted {
                    state.bounded -= 1;
                }
                let wake = state.senders_waiting > 0;
                drop(state);
                if wake {
                    self.0.not_full.notify_all();
                }
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state.receiver_waiting = true;
            state = self.0.not_empty.wait(state).expect("queue state");
            state.receiver_waiting = false;
        }
    }

    /// Ingest commands queued right now — the worker samples this into its
    /// queue-depth time-series on every drain.
    pub(crate) fn depth(&self) -> usize {
        self.0.state.lock().expect("queue state").bounded
    }

    /// Occupancy statistics, from the consumer side: the worker drain loop
    /// samples `peak_queued` into its `queue_peak` time-series without
    /// needing a sender handle.
    pub(crate) fn stats(&self) -> QueueStats {
        let state = self.0.state.lock().expect("queue state");
        QueueStats {
            capacity: self.0.capacity,
            queued: state.bounded,
            peak_queued: state.peak,
        }
    }

    /// Non-blocking: moves up to `max` queued commands into `out`, returning
    /// how many were taken. One blocking `QueueReceiver::recv` plus one
    /// `drain_into` is the worker's batch-drain step.
    pub(crate) fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.0.state.lock().expect("queue state");
        let mut taken = 0;
        while taken < max {
            let Some((value, counted)) = state.buf.pop_front() else {
                break;
            };
            if counted {
                state.bounded -= 1;
            }
            out.push(value);
            taken += 1;
        }
        let wake = taken > 0 && state.senders_waiting > 0;
        drop(state);
        if wake {
            self.0.not_full.notify_all();
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn shed_fails_fast_at_capacity_and_tracks_peak() {
        let (tx, rx) = bounded::<u32>(2);
        tx.push(1, OverloadPolicy::Shed).unwrap();
        tx.push(2, OverloadPolicy::Shed).unwrap();
        match tx.push(3, OverloadPolicy::Shed) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        let stats = tx.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.peak_queued, 2);
        assert_eq!(rx.recv(), Some(1));
        // Space freed: the next shed push succeeds, peak stays at the mark.
        tx.push(4, OverloadPolicy::Shed).unwrap();
        assert_eq!(tx.stats().peak_queued, 2);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(4));
    }

    #[test]
    fn reset_peak_restarts_window_at_current_occupancy() {
        let (tx, rx) = bounded::<u32>(4);
        tx.push(1, OverloadPolicy::Shed).unwrap();
        tx.push(2, OverloadPolicy::Shed).unwrap();
        tx.push(3, OverloadPolicy::Shed).unwrap();
        assert_eq!(tx.stats().peak_queued, 3);
        assert_eq!(rx.recv(), Some(1));
        // Two entries are still queued, so the new window's peak starts at
        // the current occupancy, not zero — queued entries were necessarily
        // observed inside the window.
        tx.reset_peak();
        let stats = tx.stats();
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.peak_queued, 2);
        // Both ends of the channel agree on the windowed peak.
        assert_eq!(rx.stats().peak_queued, 2);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        // An idle queue restarts the window at zero, and the peak grows
        // again from there.
        tx.reset_peak();
        assert_eq!(tx.stats().peak_queued, 0);
        tx.push(4, OverloadPolicy::Shed).unwrap();
        assert_eq!(tx.stats().peak_queued, 1);
        assert_eq!(rx.recv(), Some(4));
    }

    #[test]
    fn block_waits_for_space_instead_of_failing() {
        let (tx, rx) = bounded::<u32>(1);
        tx.push(1, OverloadPolicy::Block).unwrap();
        let producer = std::thread::spawn(move || {
            // Blocks until the receiver drains the first entry.
            tx.push(2, OverloadPolicy::Block).unwrap();
            tx.stats()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        let stats = producer.join().unwrap();
        assert!(stats.peak_queued <= stats.capacity);
        assert_eq!(rx.recv(), Some(2));
    }

    #[test]
    fn control_pushes_are_exempt_from_the_ingest_bound() {
        let (tx, rx) = bounded::<u32>(1);
        tx.push(1, OverloadPolicy::Shed).unwrap();
        // Ingest is full, but control commands still get through.
        tx.push_control(99).unwrap();
        assert!(matches!(
            tx.push(2, OverloadPolicy::Shed),
            Err(PushError::Full(2))
        ));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(99));
    }

    #[test]
    fn push_many_sheds_only_the_overflow() {
        let (tx, rx) = bounded::<u32>(2);
        let rejected = tx.push_many([1, 2, 3, 4], OverloadPolicy::Shed);
        assert_eq!(rejected.len(), 2);
        assert!(rejected
            .iter()
            .all(|r| matches!(r, PushError::Full(v) if *v >= 3)));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
    }

    #[test]
    fn drain_into_takes_at_most_max_without_blocking() {
        let (tx, rx) = bounded::<u32>(8);
        for i in 0..5 {
            tx.push(i, OverloadPolicy::Block).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(rx.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.drain_into(&mut out, 10), 0, "empty queue: no blocking");
    }

    #[test]
    fn receiver_observes_disconnect_after_draining() {
        let (tx, rx) = bounded::<u32>(4);
        tx.push(7, OverloadPolicy::Block).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7), "buffered entries drain first");
        assert_eq!(rx.recv(), None, "then the disconnect is visible");
    }

    #[test]
    fn senders_observe_a_dropped_receiver() {
        let (tx, rx) = bounded::<u32>(1);
        tx.push(1, OverloadPolicy::Block).unwrap();
        drop(rx);
        assert!(matches!(
            tx.push(2, OverloadPolicy::Block),
            Err(PushError::Disconnected(2))
        ));
        assert!(matches!(
            tx.push_control(3),
            Err(PushError::Disconnected(3))
        ));
    }

    #[test]
    fn capacity_zero_means_unbounded() {
        let (tx, _rx) = bounded::<u32>(0);
        for i in 0..10_000 {
            tx.push(i, OverloadPolicy::Shed).unwrap();
        }
        assert_eq!(tx.stats().capacity, usize::MAX);
        assert_eq!(tx.stats().queued, 10_000);
    }
}
