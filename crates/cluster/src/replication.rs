//! Per-shard replication: pipelined quorum group-commit over `dmps-simnet`,
//! follower promotion at failover, and the follower state behind the
//! scale-out read path.
//!
//! Every shard owns one [`ReplicaSet`]: a private simulated network with the
//! leader (the worker thread) on host 0 and each follower on its own host,
//! connected by a [`Link`] that models the append path's latency, jitter,
//! bandwidth and loss. Replication is **log shipping**: after each group
//! commit the worker sends every follower the log suffix it has not yet been
//! sent ([`ReplicaMsg::Append`]); the follower appends the segment to its
//! pending buffer and acknowledges its **durable** position
//! ([`ReplicaMsg::Ack`]). Application to the follower's state machine — the
//! same [`replay_event`] function recovery uses — is deferred to
//! [`FollowerCore::catch_up`], which runs on the *read* path and at
//! promotion. That split keeps the quorum round-trip off the leader's
//! critical path: durability costs one buffer append per follower, while the
//! (N+1)-fold state-machine work is paid by whoever actually reads the
//! replica, not by the worker pumping acks between batches.
//!
//! The quorum pipeline lives in the worker, not here: the worker calls
//! [`ReplicaSet::replicate`] as each batch commits and keeps arbitrating the
//! next batch while acks are in flight, releasing a batch's replies only once
//! [`ReplicaSet::quorum_committed`] covers it. The quorum counts the leader's
//! own (synchronous) log append plus follower acks: with `N` followers the
//! write needs `(N + 1) / 2 + 1` total copies, i.e. `(N + 1) / 2` follower
//! acks — always at least one, so the best follower's durable position is
//! never behind the quorum-committed position and promotion (which first
//! catches the follower's state machine up to its durable tail) can never
//! lose a committed (= released) decision.
//!
//! Loss on the replica link is healed by retransmission:
//! [`ReplicaSet::force_quorum`] rewinds a laggard's send cursor to its last
//! acked position and re-ships the suffix until the quorum covers the target.
//! A follower that falls behind the leader's log *base* (compaction passed
//! it) is re-seeded from the current snapshot ([`ReplicaMsg::Resync`]).
//!
//! Failover promotes the follower with the highest applied position
//! ([`ReplicaSet::promote`]): only the log tail past that position is
//! replayed, so recovery cost shrinks from full-log replay to tail-catch-up
//! (recorded in the `cluster.shard.N.replica.catch_up_lag` histogram).
//!
//! Followers are shared with the routing layer behind `Arc<Mutex<_>>` so
//! `session_view` / `shard_view` / queue-position reads can be served from a
//! follower without entering the owning worker's command queue (the
//! read-your-writes bound is enforced by the routing layer; see
//! `Gateway::session_view`).

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use dmps_floor::FloorArbiter;
use dmps_simnet::{Delivery, HostId, Link, Network};

use crate::error::Result;
use crate::instrument::ReplicaMetrics;
use crate::ring::ShardId;
use crate::session::SessionStore;
use crate::shard::{
    replay_event, GlobalGroupId, Shard, ShardEvent, ShardSnapshot, ShardState, ShardView,
    SnapshotDelta,
};

/// Estimated wire size of one logged event, for the simulated link's
/// bandwidth model. Replication correctness never depends on this.
const EVENT_SIZE_ESTIMATE: u64 = 48;
/// Fixed per-message framing overhead, same caveat.
const FRAME_SIZE_ESTIMATE: u64 = 16;

/// A message on a shard's replication network.
#[derive(Debug, Clone)]
pub(crate) enum ReplicaMsg {
    /// Leader → follower: the log suffix starting at `from_seq`. The segment
    /// is behind an `Arc` so one materialized suffix serves the whole fleet
    /// (and the follower's pending buffer) without per-follower copies.
    Append {
        /// Sequence number of the first event in `events`.
        from_seq: u64,
        /// The shipped events.
        events: Arc<[ShardEvent]>,
    },
    /// Follower → leader: "my durable position is now `acked`".
    Ack {
        /// The follower's durable position (next sequence it needs shipped).
        acked: u64,
    },
    /// Leader → follower: state re-seed for a follower that fell behind the
    /// leader's compaction base. Ships only the checkpoint suffix the
    /// follower is missing: the full base is included only when the
    /// follower's acked position predates it; otherwise just the
    /// differential checkpoints past that position.
    Resync {
        /// The leader's full snapshot base, when the follower needs it.
        base: Option<Box<ShardSnapshot>>,
        /// The differential checkpoints the follower is missing, oldest
        /// first (a contiguous suffix of the leader's chain).
        deltas: Vec<SnapshotDelta>,
    },
}

impl ReplicaMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            ReplicaMsg::Append { events, .. } => {
                events.len() as u64 * EVENT_SIZE_ESTIMATE + FRAME_SIZE_ESTIMATE
            }
            ReplicaMsg::Ack { .. } => FRAME_SIZE_ESTIMATE,
            ReplicaMsg::Resync { base, deltas } => {
                base.as_ref().map_or(0, |s| s.size_bytes() as u64)
                    + deltas.iter().map(|d| d.size_bytes() as u64).sum::<u64>()
                    + FRAME_SIZE_ESTIMATE
            }
        }
    }
}

/// One follower's live state: the same arbiter/session/frozen triple a shard
/// holds, plus the durably-received-but-unapplied tail of the shipped log.
/// Shared with the routing layer (reads) behind a mutex; the worker thread
/// only locks it briefly while buffering a delivery — state-machine
/// application happens in [`FollowerCore::catch_up`], on the reader's (or
/// promoter's) dime.
#[derive(Debug)]
pub(crate) struct FollowerCore {
    arbiter: FloorArbiter,
    session: SessionStore,
    frozen: BTreeSet<GlobalGroupId>,
    /// Events applied to the state machine so far (next sequence it needs).
    applied: u64,
    /// Durably received, not yet applied segments covering
    /// `applied..durable`. Segments are contiguous in arrival order; a
    /// retransmitted segment may overlap its predecessor, which
    /// [`FollowerCore::catch_up`] skips by sequence arithmetic.
    pending: Vec<(u64, Arc<[ShardEvent]>)>,
    /// Durable log position (next sequence this follower needs shipped).
    durable: u64,
}

impl FollowerCore {
    fn new() -> Self {
        FollowerCore {
            arbiter: FloorArbiter::with_defaults(),
            session: SessionStore::new(),
            frozen: BTreeSet::new(),
            applied: 0,
            pending: Vec::new(),
            durable: 0,
        }
    }

    /// Buffers a shipped log segment as durable. A segment entirely inside
    /// already-held history is skipped (re-shipped suffixes after a lost ack
    /// are idempotent); a gap — the segment starts past `durable`, meaning
    /// an earlier `Append` was lost — is ignored entirely, and the leader's
    /// retransmission heals it.
    fn receive(&mut self, from_seq: u64, events: Arc<[ShardEvent]>) {
        if from_seq > self.durable {
            return;
        }
        let end = from_seq + events.len() as u64;
        if end <= self.durable {
            return;
        }
        self.pending.push((from_seq, events));
        self.durable = end;
    }

    /// Replays the pending tail into the follower's state machine. Reads and
    /// promotion call this first, so `applied` equals `durable` whenever the
    /// state is actually observed.
    fn catch_up(&mut self) -> Result<()> {
        for (from_seq, events) in std::mem::take(&mut self.pending) {
            let skip = (self.applied - from_seq) as usize;
            for event in events.iter().skip(skip) {
                replay_event(
                    &mut self.arbiter,
                    &mut self.session,
                    &mut self.frozen,
                    event,
                )?;
                self.applied += 1;
            }
        }
        Ok(())
    }

    /// Re-seeds the follower from a leader checkpoint chain (compaction
    /// passed its durable position). The follower first drains whatever it
    /// already holds, then folds only the chain suffix past its own applied
    /// position: the base if it is newer, then each newer delta. A delta's
    /// window-soundness (it folds correctly onto any state inside
    /// `[base_seq, applied_seq]`) covers the case where the follower sits
    /// mid-window. A wholly stale resync is ignored.
    fn install_resync(
        &mut self,
        base: Option<&ShardSnapshot>,
        deltas: &[SnapshotDelta],
    ) -> Result<()> {
        // Apply what is already buffered first — it may cover part of the
        // chain and is cheaper than re-restoring state we hold.
        self.catch_up()?;
        let tip = deltas
            .last()
            .map(SnapshotDelta::applied_seq)
            .or_else(|| base.map(ShardSnapshot::applied_seq))
            .unwrap_or(0);
        if tip <= self.durable {
            return Ok(());
        }
        if let Some(snapshot) = base {
            if snapshot.applied_seq() > self.applied {
                self.arbiter = FloorArbiter::restore(&snapshot.arbiter)?;
                self.session =
                    dmps_wire::from_str::<SessionStore>(&snapshot.session).map_err(|e| {
                        crate::error::ClusterError::Floor(dmps_floor::FloorError::CorruptSnapshot(
                            format!("session store: {e}"),
                        ))
                    })?;
                self.frozen = snapshot.frozen.iter().copied().collect();
                self.applied = snapshot.applied_seq();
            }
        }
        for delta in deltas {
            if delta.applied_seq() <= self.applied {
                continue;
            }
            self.arbiter.apply_delta(&delta.arbiter)?;
            for (group, content) in &delta.sessions {
                self.session.replace(*group, content.clone());
            }
            for group in &delta.purged {
                self.session.remove(*group);
            }
            self.frozen = delta.frozen.iter().copied().collect();
            self.applied = delta.applied_seq();
        }
        self.durable = self.applied;
        self.pending.clear();
        Ok(())
    }

    /// The follower's durable log position (next sequence it needs shipped).
    /// This is what the follower acks — durability, not application.
    fn durable(&self) -> u64 {
        self.durable
    }

    /// The follower's applied log position. The routing layer compares this
    /// against a client's read-your-writes bound, after [`catch_up`]
    /// (`Self::catch_up`) has drained the pending tail.
    pub(crate) fn applied(&self) -> u64 {
        self.applied
    }

    /// Drains the pending tail before a read is served from this follower.
    /// Panics on a corrupt event, like the worker's own replay path.
    pub(crate) fn catch_up_for_read(&mut self) {
        self.catch_up().expect("replicated events replay cleanly");
    }

    /// Read access to the follower's arbiter (queue-position reads).
    pub(crate) fn arbiter(&self) -> &FloorArbiter {
        &self.arbiter
    }

    /// The follower's copy of a group's session content.
    pub(crate) fn session_view(&self, group: GlobalGroupId) -> crate::session::GroupSession {
        self.session.view(group)
    }

    /// A shard-shaped health view served from this follower. Leader-only
    /// storage fields (log geometry, snapshot presence, dedup occupancy,
    /// recovery count) are reported as zero/absent — the follower holds live
    /// state, not the durable log; `log_retained` carries the follower's
    /// applied position instead.
    pub(crate) fn view(&self, id: ShardId) -> ShardView {
        ShardView {
            id,
            state: ShardState::Active,
            recoveries: 0,
            log_base: 0,
            log_retained: self.applied as usize,
            has_snapshot: false,
            dedup_entries: 0,
            session_dedup_entries: 0,
            session_groups: self.session.group_count(),
            frozen_groups: self.frozen.len(),
            log_bytes: 0,
            session_bytes: self.session.size_bytes(),
            dedup_bytes: 0,
            snapshot_bytes: 0,
            snapshot_deltas: 0,
            stats: self.arbiter.stats(),
        }
    }
}

/// The leader-side handle to one shard's replica fleet: the simulated
/// network, the per-follower send/ack cursors, and the quorum bookkeeping.
/// Owned by the shard's worker thread; only the `FollowerCore`s inside are
/// shared (with the read path).
#[derive(Debug)]
pub(crate) struct ReplicaSet {
    net: Network<ReplicaMsg>,
    leader: HostId,
    /// Follower `i` lives on `hosts[i]` (= host index `i + 1`).
    hosts: Vec<HostId>,
    followers: Vec<Arc<Mutex<FollowerCore>>>,
    /// Highest durable position follower `i` has acknowledged.
    acked: Vec<u64>,
    /// Position up to which follower `i` has been sent the log.
    sent: Vec<u64>,
    /// Highest position covered by a write quorum (leader + enough acks).
    quorum_committed: u64,
    /// Follower acks needed per position (quorum minus the leader itself).
    quorum_acks: usize,
    metrics: ReplicaMetrics,
}

impl ReplicaSet {
    /// Builds the replica fleet for `shard` with `replicas` followers over
    /// `link`. Zero replicas yields an inert set (every call is a no-op and
    /// `quorum_committed` tracks nothing — the worker skips the pipeline).
    pub(crate) fn new(
        shard: ShardId,
        replicas: usize,
        link: Link,
        metrics: ReplicaMetrics,
    ) -> Self {
        // One deterministic seed per (shard, fleet size): reproducible loss
        // and jitter without any global RNG.
        let seed = 0xD31A_5EED_u64 ^ ((shard.index() as u64) << 32) ^ replicas as u64;
        let mut net = Network::new(seed);
        let leader = net.add_host(format!("shard-{}-leader", shard.index()));
        let mut hosts = Vec::with_capacity(replicas);
        let mut followers = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let host = net.add_host(format!("shard-{}-replica-{i}", shard.index()));
            net.connect(leader, host, link)
                .expect("connect replica link");
            hosts.push(host);
            followers.push(Arc::new(Mutex::new(FollowerCore::new())));
        }
        ReplicaSet {
            net,
            leader,
            hosts,
            followers,
            acked: vec![0; replicas],
            sent: vec![0; replicas],
            quorum_committed: 0,
            // Total quorum is (N+1)/2 + 1 copies counting the leader's own
            // append, so (N+1)/2 follower acks — always ≥ 1 for N ≥ 1, which
            // is what makes promotion lossless.
            quorum_acks: replicas.div_ceil(2),
            metrics,
        }
    }

    /// Whether this shard runs unreplicated (the worker skips the pipeline).
    pub(crate) fn is_empty(&self) -> bool {
        self.followers.is_empty()
    }

    /// The shared follower cores, for the routing layer's read path.
    pub(crate) fn followers(&self) -> &[Arc<Mutex<FollowerCore>>] {
        &self.followers
    }

    /// Highest log position covered by a write quorum. Replies for a batch
    /// release only once this reaches the batch's end position.
    pub(crate) fn quorum_committed(&self) -> u64 {
        self.quorum_committed
    }

    /// Ships every follower the sealed log segments it has not been sent
    /// yet. Called by the worker right after each group commit (which seals
    /// the batch into a segment first); the acks arrive later (that is the
    /// pipeline). The log, the wire and every follower share the same
    /// reference-counted segment — no event is copied to replicate it.
    pub(crate) fn replicate(&mut self, shard: &Shard) {
        if self.followers.is_empty() {
            return;
        }
        let log = shard.log();
        for i in 0..self.hosts.len() {
            if self.sent[i] < log.base() {
                // Compaction passed this follower's cursor: the history it
                // needs is gone, so re-seed it from the checkpoint chain —
                // but ship only the suffix past the follower's acked
                // position. Chain contiguity (each delta's window starts at
                // the previous checkpoint's tip) guarantees the first
                // shipped delta's window contains that position.
                let snapshot = shard
                    .latest_snapshot()
                    .expect("log base > 0 implies a snapshot");
                let acked = self.acked[i];
                let (base, deltas) = if acked >= snapshot.applied_seq() {
                    (
                        None,
                        shard
                            .snapshot_deltas()
                            .iter()
                            .filter(|d| d.applied_seq() > acked)
                            .cloned()
                            .collect(),
                    )
                } else {
                    (
                        Some(Box::new(snapshot.clone())),
                        shard.snapshot_deltas().to_vec(),
                    )
                };
                self.metrics.resyncs.incr();
                self.send_to(i, ReplicaMsg::Resync { base, deltas });
                self.sent[i] = log.base();
            }
            let (segments, sealed_end) = log.segments_from(self.sent[i]);
            for (from_seq, events) in segments {
                // A segment may straddle the cursor (retransmit after loss);
                // the follower skips the duplicate prefix by arithmetic.
                self.send_to(i, ReplicaMsg::Append { from_seq, events });
            }
            self.sent[i] = self.sent[i].max(sealed_end);
        }
    }

    fn send_to(&mut self, follower: usize, msg: ReplicaMsg) {
        let size = msg.size_bytes();
        // A send can fail only if the host is down (crashed in a failover
        // experiment); the retransmission path heals exactly like loss.
        let _ = self.net.send(self.leader, self.hosts[follower], msg, size);
    }

    /// Drains the replication network: applies `Append`/`Resync` deliveries
    /// to follower cores (each answers with an `Ack`) and folds `Ack`s into
    /// the quorum bookkeeping. Cheap when nothing is in flight.
    pub(crate) fn pump(&mut self) {
        while let Some(delivery) = self.net.next_delivery() {
            self.handle(delivery);
        }
        self.recompute_quorum();
    }

    fn handle(&mut self, delivery: Delivery<ReplicaMsg>) {
        if delivery.to == self.leader {
            if let ReplicaMsg::Ack { acked } = delivery.payload {
                let i = delivery.from.index() - 1;
                if acked > self.acked[i] {
                    self.acked[i] = acked;
                    self.metrics.acks.incr();
                }
            }
            return;
        }
        let i = delivery.to.index() - 1;
        let durable = {
            let mut core = self.followers[i].lock().expect("follower core");
            match delivery.payload {
                ReplicaMsg::Append { from_seq, events } => core.receive(from_seq, events),
                ReplicaMsg::Resync { base, deltas } => core
                    .install_resync(base.as_deref(), &deltas)
                    .expect("replicated snapshot restores cleanly"),
                ReplicaMsg::Ack { .. } => {}
            }
            core.durable()
        };
        let ack = ReplicaMsg::Ack { acked: durable };
        let size = ack.size_bytes();
        let _ = self.net.send(self.hosts[i], self.leader, ack, size);
    }

    fn recompute_quorum(&mut self) {
        if self.acked.is_empty() {
            return;
        }
        // The quorum-committed position is the quorum_acks-th highest
        // follower ack: that many followers (plus the leader) hold the
        // prefix up to it.
        let mut sorted = self.acked.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let covered = sorted[self.quorum_acks - 1];
        if covered > self.quorum_committed {
            self.quorum_committed = covered;
        }
    }

    /// Drives the quorum to `target`, retransmitting lost suffixes until it
    /// gets there. The worker calls this when its pipeline window fills,
    /// before blocking on an empty queue, and at every control barrier.
    pub(crate) fn force_quorum(&mut self, shard: &Shard, target: u64) {
        if self.followers.is_empty() {
            return;
        }
        loop {
            self.pump();
            if self.quorum_committed >= target {
                return;
            }
            // Anything sent but unacked may have been lost: rewind the
            // laggards' cursors to their acked positions and re-ship.
            self.metrics.retransmits.incr();
            for i in 0..self.sent.len() {
                if self.acked[i] < target {
                    self.sent[i] = self.acked[i];
                }
            }
            self.replicate(shard);
        }
    }

    /// Failover: promotes the most caught-up follower into the crashed
    /// shard. Only the log tail past the follower's applied position is
    /// replayed (tail-catch-up) — against full-log replay from the snapshot,
    /// which is what [`Shard::recover`] does and what this falls back to
    /// with no followers (or a follower stranded behind the log base).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ClusterError::Floor`] when a logged event fails to
    /// re-apply (durable-state corruption).
    pub(crate) fn promote(&mut self, shard: &mut Shard) -> Result<()> {
        if self.followers.is_empty() {
            return shard.recover();
        }
        // Let in-flight appends land first: promotion should start from the
        // best state the fleet actually holds.
        self.pump();
        let best = (0..self.followers.len())
            .max_by_key(|&i| self.followers[i].lock().expect("follower core").durable())
            .expect("non-empty fleet");
        let (mut arbiter, mut session, mut frozen, from_seq) = {
            let mut core = self.followers[best].lock().expect("follower core");
            core.catch_up()?;
            (
                core.arbiter.clone(),
                core.session.clone(),
                core.frozen.clone(),
                core.applied(),
            )
        };
        if from_seq < shard.log().base() {
            // The whole fleet is stranded behind compaction (possible only
            // when quorum was never forced, e.g. an idle shard): full replay.
            return shard.recover();
        }
        let lag = shard.log().next_seq().saturating_sub(from_seq);
        for event in shard.log().events_from(from_seq) {
            replay_event(&mut arbiter, &mut session, &mut frozen, event)?;
        }
        shard.adopt(arbiter, session, frozen);
        self.metrics.catch_up_lag.record(lag);
        Ok(())
    }
}
