//! Per-shard replication: pipelined quorum group-commit over `dmps-simnet`,
//! epoch-fenced follower promotion at failover, checksummed self-healing log
//! shipping, and the follower state behind the scale-out read path.
//!
//! Every shard owns one [`ReplicaSet`]: a private simulated network with the
//! leader (the worker thread) on host 0 and each follower on its own host,
//! connected by a [`Link`] that models the append path's latency, jitter,
//! bandwidth and loss. Replication is **log shipping**: after each group
//! commit the worker sends every follower the log suffix it has not yet been
//! sent ([`ReplicaMsg::Append`]); the follower appends the segment to its
//! pending buffer and acknowledges its **durable** position
//! ([`ReplicaMsg::Ack`]). Application to the follower's state machine — the
//! same [`replay_event`] function recovery uses — is deferred to
//! [`FollowerCore::catch_up`], which runs on the *read* path and at
//! promotion. That split keeps the quorum round-trip off the leader's
//! critical path: durability costs one buffer append per follower, while the
//! (N+1)-fold state-machine work is paid by whoever actually reads the
//! replica, not by the worker pumping acks between batches.
//!
//! The quorum pipeline lives in the worker, not here: the worker calls
//! [`ReplicaSet::replicate`] as each batch commits and keeps arbitrating the
//! next batch while acks are in flight, releasing a batch's replies only once
//! [`ReplicaSet::quorum_committed`] covers it. The quorum counts the leader's
//! own (synchronous) log append plus follower acks: with `N` followers the
//! write needs `(N + 1) / 2 + 1` total copies, i.e. `(N + 1) / 2` follower
//! acks — always at least one, so the best follower's durable position is
//! never behind the quorum-committed position and promotion (which first
//! catches the follower's state machine up to its durable tail) can never
//! lose a committed (= released) decision.
//!
//! ## Epoch fencing
//!
//! Every promotion bumps the shard's **leader epoch**; every `Append`, `Ack`
//! and `Resync` carries it, and promotion announces the new epoch to the
//! whole fleet. A follower rejects traffic from a stale epoch (a leader that
//! was partitioned away while the shard failed over), and its acks carry its
//! own — higher — epoch back, which **fences** the stale leader:
//! [`ReplicaSet::force_quorum`] fails immediately once fenced, the worker
//! answers the parked batches `ShardDown` and demotes the shard. A healed
//! partition therefore cannot double-release a parked reply or fork the log:
//! the stale leader's suffix never becomes durable on any follower.
//!
//! ## Checksums and repair
//!
//! Appends carry the sealed segment's CRC (the same one
//! [`Shard::verify_durable`] checks on the leader's own artifacts).
//! [`FollowerCore::catch_up`] re-derives the CRC before replaying a segment;
//! a mismatch — or an event that fails to re-apply — **quarantines** the
//! follower copy: the suspect pending tail is dropped, the durable position
//! rolls back to what was actually applied, and a repair flag asks the
//! leader to re-ship the suffix from a healthy copy on its next
//! [`ReplicaSet::replicate`]. A resync whose artifacts fail to restore
//! resets the copy entirely and is re-seeded the same way. The leader's own
//! corruption is handled at promotion: when the crashed shard's durable
//! artifacts fail verification, [`ReplicaSet::promote`] adopts the most
//! caught-up follower's state wholesale ([`Shard::repair_from`]) instead of
//! trusting the local log — corrupt state never aborts the process and is
//! healed from the quorum.
//!
//! Loss on the replica link is healed by retransmission:
//! [`ReplicaSet::force_quorum`] rewinds a laggard's send cursor to its last
//! acked position and re-ships the suffix until the quorum covers the
//! target, giving up (bounded) only when fenced or when a partition makes
//! progress impossible. A follower that falls behind the leader's log *base*
//! (compaction passed it) is re-seeded from the current snapshot
//! ([`ReplicaMsg::Resync`]).
//!
//! Failover promotes the follower with the highest applied position
//! ([`ReplicaSet::promote`]): only the log tail past that position is
//! replayed, so recovery cost shrinks from full-log replay to tail-catch-up
//! (recorded in the `cluster.shard.N.replica.catch_up_lag` histogram).
//!
//! Followers are shared with the routing layer behind `Arc<Mutex<_>>` so
//! `session_view` / `shard_view` / queue-position reads can be served from a
//! follower without entering the owning worker's command queue (the
//! read-your-writes bound is enforced by the routing layer; see
//! `Gateway::session_view`).

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use dmps_floor::FloorArbiter;
use dmps_simnet::{Delivery, HostId, Link, Network};

use crate::error::{ClusterError, Result};
use crate::instrument::ReplicaMetrics;
use crate::ring::ShardId;
use crate::session::SessionStore;
use crate::shard::{
    replay_event, segment_crc, GlobalGroupId, Shard, ShardEvent, ShardSnapshot, ShardState,
    ShardView, SnapshotDelta,
};

/// Estimated wire size of one logged event, for the simulated link's
/// bandwidth model. Replication correctness never depends on this.
const EVENT_SIZE_ESTIMATE: u64 = 48;
/// Fixed per-message framing overhead, same caveat.
const FRAME_SIZE_ESTIMATE: u64 = 16;
/// Consecutive no-progress retransmission rounds [`ReplicaSet::force_quorum`]
/// tolerates before concluding the quorum is unreachable (partitioned or
/// fenced) and giving up. Loss alone never trips this: a lossy round still
/// moves acks with overwhelming probability, and any movement resets the
/// budget.
const STALL_BUDGET: u32 = 64;

/// A message on a shard's replication network. Every variant carries the
/// sender's leader epoch, which is what fences a stale leader after a
/// partitioned failover.
#[derive(Debug, Clone)]
pub(crate) enum ReplicaMsg {
    /// Leader → follower: the log suffix starting at `from_seq`. The segment
    /// is behind an `Arc` so one materialized suffix serves the whole fleet
    /// (and the follower's pending buffer) without per-follower copies.
    Append {
        /// The sending leader's epoch.
        epoch: u64,
        /// Sequence number of the first event in `events`.
        from_seq: u64,
        /// CRC-32 of the shipped events' canonical encoding (the sealed
        /// segment's recorded checksum); verified before the follower
        /// replays the segment.
        crc: u32,
        /// The shipped events. An empty run is an epoch announcement.
        events: Arc<[ShardEvent]>,
    },
    /// Follower → leader: "my durable position is now `acked`". Carries the
    /// follower's epoch: an ack from a higher epoch tells a stale leader it
    /// has been fenced.
    Ack {
        /// The acking follower's epoch.
        epoch: u64,
        /// The follower's durable position (next sequence it needs shipped).
        acked: u64,
    },
    /// Leader → follower: state re-seed for a follower that fell behind the
    /// leader's compaction base. Ships only the checkpoint suffix the
    /// follower is missing: the full base is included only when the
    /// follower's acked position predates it; otherwise just the
    /// differential checkpoints past that position.
    Resync {
        /// The sending leader's epoch.
        epoch: u64,
        /// The leader's full snapshot base, when the follower needs it.
        base: Option<Box<ShardSnapshot>>,
        /// The differential checkpoints the follower is missing, oldest
        /// first (a contiguous suffix of the leader's chain).
        deltas: Vec<SnapshotDelta>,
    },
}

impl ReplicaMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            ReplicaMsg::Append { events, .. } => {
                events.len() as u64 * EVENT_SIZE_ESTIMATE + FRAME_SIZE_ESTIMATE
            }
            ReplicaMsg::Ack { .. } => FRAME_SIZE_ESTIMATE,
            ReplicaMsg::Resync { base, deltas, .. } => {
                base.as_ref().map_or(0, |s| s.size_bytes() as u64)
                    + deltas.iter().map(|d| d.size_bytes() as u64).sum::<u64>()
                    + FRAME_SIZE_ESTIMATE
            }
        }
    }
}

/// One follower's live state: the same arbiter/session/frozen triple a shard
/// holds, plus the durably-received-but-unapplied tail of the shipped log.
/// Shared with the routing layer (reads) behind a mutex; the worker thread
/// only locks it briefly while buffering a delivery — state-machine
/// application happens in [`FollowerCore::catch_up`], on the reader's (or
/// promoter's) dime.
#[derive(Debug)]
pub(crate) struct FollowerCore {
    /// The shard this copy replicates (names [`ClusterError::Corrupt`]).
    shard: ShardId,
    arbiter: FloorArbiter,
    session: SessionStore,
    frozen: BTreeSet<GlobalGroupId>,
    /// Events applied to the state machine so far (next sequence it needs).
    applied: u64,
    /// Durably received, not yet applied segments covering
    /// `applied..durable`, each with the CRC its `Append` carried. Segments
    /// are contiguous in arrival order; a retransmitted segment may overlap
    /// its predecessor, which [`FollowerCore::catch_up`] skips by sequence
    /// arithmetic (the CRC always covers the full shipped slice).
    pending: Vec<(u64, u32, Arc<[ShardEvent]>)>,
    /// Durable log position (next sequence this follower needs shipped).
    durable: u64,
    /// Highest leader epoch observed; traffic below it is rejected.
    epoch: u64,
    /// Set when this copy quarantined itself (checksum mismatch, replay
    /// failure, unrestorable resync); asks the leader to re-ship the suffix
    /// past `durable` from its healthy copy.
    needs_repair: bool,
}

impl FollowerCore {
    fn new(shard: ShardId) -> Self {
        FollowerCore {
            shard,
            arbiter: FloorArbiter::with_defaults(),
            session: SessionStore::new(),
            frozen: BTreeSet::new(),
            applied: 0,
            pending: Vec::new(),
            durable: 0,
            epoch: 0,
            needs_repair: false,
        }
    }

    /// Buffers a shipped log segment as durable. Returns `false` — and
    /// changes nothing — when the segment carries a stale epoch (a fenced
    /// leader's append). Otherwise the epoch is adopted, and: a segment
    /// entirely inside already-held history is skipped (re-shipped suffixes
    /// after a lost ack are idempotent); a gap — the segment starts past
    /// `durable`, meaning an earlier `Append` was lost — is ignored
    /// entirely, and the leader's retransmission heals it; an empty segment
    /// is a pure epoch announcement.
    fn receive(&mut self, epoch: u64, from_seq: u64, crc: u32, events: Arc<[ShardEvent]>) -> bool {
        if epoch < self.epoch {
            return false;
        }
        self.epoch = epoch;
        if events.is_empty() || from_seq > self.durable {
            return true;
        }
        let end = from_seq + events.len() as u64;
        if end <= self.durable {
            return true;
        }
        self.pending.push((from_seq, crc, events));
        self.durable = end;
        true
    }

    /// Quarantines this copy after an integrity failure: the suspect pending
    /// tail is dropped, the durable position rolls back to the consistently
    /// applied prefix, and the repair flag asks the leader to re-ship from
    /// its healthy copy. Returns the error recorded against the shard.
    fn quarantine(&mut self, what: String) -> ClusterError {
        self.pending.clear();
        self.durable = self.applied;
        self.needs_repair = true;
        ClusterError::Corrupt {
            shard: self.shard,
            what,
        }
    }

    /// Replays the pending tail into the follower's state machine, verifying
    /// each segment's CRC first. Reads and promotion call this, so `applied`
    /// equals `durable` whenever the state is actually observed.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Corrupt`] on a checksum mismatch or an event
    /// that fails to re-apply; the copy quarantines itself (see
    /// [`FollowerCore::quarantine`]) and stays consistent at its applied
    /// position, awaiting repair.
    fn catch_up(&mut self) -> Result<()> {
        for (from_seq, crc, events) in std::mem::take(&mut self.pending) {
            let actual = segment_crc(&events);
            if actual != crc {
                return Err(self.quarantine(format!(
                    "replicated segment at seq {from_seq} checksum mismatch \
                     ({actual:08x} != {crc:08x})"
                )));
            }
            let skip = (self.applied - from_seq) as usize;
            for event in events.iter().skip(skip) {
                if let Err(e) = replay_event(
                    &mut self.arbiter,
                    &mut self.session,
                    &mut self.frozen,
                    event,
                ) {
                    return Err(self.quarantine(format!("replicated event does not replay: {e}")));
                }
                self.applied += 1;
            }
        }
        Ok(())
    }

    /// Re-seeds the follower from a leader checkpoint chain (compaction
    /// passed its durable position). Returns `Ok(false)` — untouched — for a
    /// stale epoch. The follower first drains whatever it already holds,
    /// then folds only the chain suffix past its own applied position: the
    /// base if it is newer, then each newer delta. A delta's
    /// window-soundness (it folds correctly onto any state inside
    /// `[base_seq, applied_seq]`) covers the case where the follower sits
    /// mid-window. A wholly stale resync is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Corrupt`] when an artifact fails to restore
    /// or fold. The copy resets to empty and quarantines — a torn base
    /// could leave it half-restored, so the repair is a full re-seed from
    /// sequence zero rather than a suffix re-ship.
    fn install_resync(
        &mut self,
        epoch: u64,
        base: Option<&ShardSnapshot>,
        deltas: &[SnapshotDelta],
    ) -> Result<bool> {
        if epoch < self.epoch {
            return Ok(false);
        }
        self.epoch = epoch;
        // Apply what is already buffered first — it may cover part of the
        // chain and is cheaper than re-restoring state we hold.
        self.catch_up()?;
        let tip = deltas
            .last()
            .map(SnapshotDelta::applied_seq)
            .or_else(|| base.map(ShardSnapshot::applied_seq))
            .unwrap_or(0);
        if tip <= self.durable {
            return Ok(true);
        }
        match self.fold_resync(base, deltas) {
            Ok(()) => {
                self.durable = self.applied;
                self.pending.clear();
                Ok(true)
            }
            Err(e) => {
                // Folding mutates in place, so a failure may leave the copy
                // inconsistent: reset it entirely and re-seed from scratch.
                self.arbiter = FloorArbiter::with_defaults();
                self.session = SessionStore::new();
                self.frozen = BTreeSet::new();
                self.applied = 0;
                Err(self.quarantine(format!("resync does not restore: {e}")))
            }
        }
    }

    /// The fallible body of [`FollowerCore::install_resync`]: restore the
    /// base if it is newer than this copy, then fold each newer delta.
    fn fold_resync(
        &mut self,
        base: Option<&ShardSnapshot>,
        deltas: &[SnapshotDelta],
    ) -> Result<()> {
        if let Some(snapshot) = base {
            if snapshot.applied_seq() > self.applied {
                // Restore into temporaries so a torn artifact cannot leave
                // the copy with a new arbiter but a stale session store.
                let arbiter = FloorArbiter::restore(&snapshot.arbiter)?;
                let session =
                    dmps_wire::from_str::<SessionStore>(&snapshot.session).map_err(|e| {
                        ClusterError::Floor(dmps_floor::FloorError::CorruptSnapshot(format!(
                            "session store: {e}"
                        )))
                    })?;
                self.arbiter = arbiter;
                self.session = session;
                self.frozen = snapshot.frozen.iter().copied().collect();
                self.applied = snapshot.applied_seq();
            }
        }
        for delta in deltas {
            if delta.applied_seq() <= self.applied {
                continue;
            }
            self.arbiter.apply_delta(&delta.arbiter)?;
            for (group, content) in &delta.sessions {
                self.session.replace(*group, content.clone());
            }
            for group in &delta.purged {
                self.session.remove(*group);
            }
            self.frozen = delta.frozen.iter().copied().collect();
            self.applied = delta.applied_seq();
        }
        Ok(())
    }

    /// The follower's durable log position (next sequence it needs shipped).
    /// This is what the follower acks — durability, not application.
    fn durable(&self) -> u64 {
        self.durable
    }

    /// Takes the repair flag: `true` once after each self-quarantine, so the
    /// leader rewinds its cursors and re-ships exactly once per incident.
    fn take_repair(&mut self) -> bool {
        std::mem::take(&mut self.needs_repair)
    }

    /// The follower's applied log position. The routing layer compares this
    /// against a client's read-your-writes bound, after [`catch_up`]
    /// (`Self::catch_up`) has drained the pending tail.
    pub(crate) fn applied(&self) -> u64 {
        self.applied
    }

    /// Drains the pending tail before a read is served from this follower.
    /// A corrupt segment quarantines the copy instead of panicking: the
    /// read is then served from the (consistent) applied prefix, and the
    /// routing layer's read-your-writes bound forwards to the leader when
    /// that prefix is not fresh enough for the caller.
    pub(crate) fn catch_up_for_read(&mut self) {
        let _ = self.catch_up();
    }

    /// Read access to the follower's arbiter (queue-position reads).
    pub(crate) fn arbiter(&self) -> &FloorArbiter {
        &self.arbiter
    }

    /// The follower's copy of a group's session content.
    pub(crate) fn session_view(&self, group: GlobalGroupId) -> crate::session::GroupSession {
        self.session.view(group)
    }

    /// A shard-shaped health view served from this follower. Leader-only
    /// storage fields (log geometry, snapshot presence, dedup occupancy,
    /// recovery count) are reported as zero/absent — the follower holds live
    /// state, not the durable log; `log_retained` carries the follower's
    /// applied position instead.
    pub(crate) fn view(&self, id: ShardId) -> ShardView {
        ShardView {
            id,
            state: ShardState::Active,
            recoveries: 0,
            log_base: 0,
            log_retained: self.applied as usize,
            has_snapshot: false,
            dedup_entries: 0,
            session_dedup_entries: 0,
            session_groups: self.session.group_count(),
            frozen_groups: self.frozen.len(),
            log_bytes: 0,
            session_bytes: self.session.size_bytes(),
            dedup_bytes: 0,
            snapshot_bytes: 0,
            snapshot_deltas: 0,
            stats: self.arbiter.stats(),
        }
    }
}

/// The leader-side handle to one shard's replica fleet: the simulated
/// network, the per-follower send/ack cursors, and the quorum bookkeeping.
/// Owned by the shard's worker thread; only the `FollowerCore`s inside are
/// shared (with the read path).
#[derive(Debug)]
pub(crate) struct ReplicaSet {
    net: Network<ReplicaMsg>,
    leader: HostId,
    /// Follower `i` lives on `hosts[i]` (= host index `i + 1`).
    hosts: Vec<HostId>,
    followers: Vec<Arc<Mutex<FollowerCore>>>,
    /// Highest durable position follower `i` has acknowledged.
    acked: Vec<u64>,
    /// Position up to which follower `i` has been sent the log.
    sent: Vec<u64>,
    /// Highest position covered by a write quorum (leader + enough acks).
    quorum_committed: u64,
    /// Follower acks needed per position (quorum minus the leader itself).
    quorum_acks: usize,
    /// This leader's epoch, bumped at every promotion and stamped on all
    /// outgoing traffic (and into released decisions).
    epoch: u64,
    /// Set when a follower's higher-epoch ack fenced this leader: another
    /// incarnation has been promoted, so this one must stop releasing and
    /// demote itself.
    fenced: bool,
    metrics: ReplicaMetrics,
}

impl ReplicaSet {
    /// Builds the replica fleet for `shard` with `replicas` followers over
    /// `link`. Zero replicas yields an inert set (every call is a no-op and
    /// `quorum_committed` tracks nothing — the worker skips the pipeline).
    pub(crate) fn new(
        shard: ShardId,
        replicas: usize,
        link: Link,
        metrics: ReplicaMetrics,
    ) -> Self {
        // One deterministic seed per (shard, fleet size): reproducible loss
        // and jitter without any global RNG.
        let seed = 0xD31A_5EED_u64 ^ ((shard.index() as u64) << 32) ^ replicas as u64;
        let mut net = Network::new(seed);
        let leader = net.add_host(format!("shard-{}-leader", shard.index()));
        let mut hosts = Vec::with_capacity(replicas);
        let mut followers = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let host = net.add_host(format!("shard-{}-replica-{i}", shard.index()));
            net.connect(leader, host, link)
                .expect("connect replica link");
            hosts.push(host);
            followers.push(Arc::new(Mutex::new(FollowerCore::new(shard))));
        }
        ReplicaSet {
            net,
            leader,
            hosts,
            followers,
            acked: vec![0; replicas],
            sent: vec![0; replicas],
            quorum_committed: 0,
            // Total quorum is (N+1)/2 + 1 copies counting the leader's own
            // append, so (N+1)/2 follower acks — always ≥ 1 for N ≥ 1, which
            // is what makes promotion lossless.
            quorum_acks: replicas.div_ceil(2),
            epoch: 1,
            fenced: false,
            metrics,
        }
    }

    /// Whether this shard runs unreplicated (the worker skips the pipeline).
    pub(crate) fn is_empty(&self) -> bool {
        self.followers.is_empty()
    }

    /// The shared follower cores, for the routing layer's read path.
    pub(crate) fn followers(&self) -> &[Arc<Mutex<FollowerCore>>] {
        &self.followers
    }

    /// Highest log position covered by a write quorum. Replies for a batch
    /// release only once this reaches the batch's end position.
    pub(crate) fn quorum_committed(&self) -> u64 {
        self.quorum_committed
    }

    /// The current leader epoch, stamped into released decisions. Zero on an
    /// unreplicated shard (there is no election to number).
    pub(crate) fn epoch(&self) -> u64 {
        if self.followers.is_empty() {
            0
        } else {
            self.epoch
        }
    }

    /// Whether a higher-epoch ack has fenced this leader (see
    /// [`ReplicaSet::force_quorum`]).
    #[cfg(test)]
    pub(crate) fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// Fault injection: partitions the leader away from its entire follower
    /// fleet (both directions — appends and acks all drop) until
    /// [`ReplicaSet::heal_partition`]. Counted under
    /// `cluster.shard.N.fault.partitions`.
    pub(crate) fn partition_leader(&mut self) {
        if self.followers.is_empty() {
            return;
        }
        self.net
            .partition(&[self.leader], &self.hosts, false)
            .expect("replica hosts exist");
        self.metrics.partitions.incr();
    }

    /// Heals every partition on the replica network.
    pub(crate) fn heal_partition(&mut self) {
        self.net.heal();
    }

    /// Fault injection: flips the stored CRC of follower `i`'s newest
    /// pending segment — one replica copy's bytes rotting on the wire or at
    /// rest. Detection happens at the follower's next catch-up (read or
    /// promotion), which quarantines the copy and asks the leader for
    /// repair. Returns `false` when the follower holds nothing to corrupt.
    pub(crate) fn inject_follower_corruption(&mut self, follower: usize) -> bool {
        let Some(core) = self.followers.get(follower) else {
            return false;
        };
        let mut core = core.lock().expect("follower core");
        match core.pending.last_mut() {
            Some((_, crc, _)) => {
                *crc ^= 1;
                true
            }
            None => false,
        }
    }

    /// Ships every follower the sealed log segments it has not been sent
    /// yet. Called by the worker right after each group commit (which seals
    /// the batch into a segment first); the acks arrive later (that is the
    /// pipeline). The log, the wire and every follower share the same
    /// reference-counted segment — no event is copied to replicate it.
    ///
    /// A follower that quarantined itself since the last call (checksum
    /// mismatch on a shipped segment) has its cursors rewound to its rolled-
    /// back durable position first, so the suspect suffix is re-shipped from
    /// the leader's healthy copy — the repair path.
    pub(crate) fn replicate(&mut self, shard: &Shard) {
        if self.followers.is_empty() {
            return;
        }
        let log = shard.log();
        for i in 0..self.hosts.len() {
            let (durable, repair) = {
                let mut core = self.followers[i].lock().expect("follower core");
                (core.durable(), core.take_repair())
            };
            if repair {
                // The copy rolled back to `durable`; anything we believed
                // sent or acked past it is untrusted. Re-ship from there.
                self.metrics.checksum_failures.incr();
                self.metrics.repairs.incr();
                self.sent[i] = self.sent[i].min(durable);
                self.acked[i] = self.acked[i].min(durable);
            }
            if self.sent[i] < log.base() {
                // Compaction passed this follower's cursor: the history it
                // needs is gone, so re-seed it from the checkpoint chain —
                // but ship only the suffix past the follower's acked
                // position. Chain contiguity (each delta's window starts at
                // the previous checkpoint's tip) guarantees the first
                // shipped delta's window contains that position.
                let snapshot = shard
                    .latest_snapshot()
                    .expect("log base > 0 implies a snapshot");
                let acked = self.acked[i];
                let (base, deltas) = if acked >= snapshot.applied_seq() {
                    (
                        None,
                        shard
                            .snapshot_deltas()
                            .iter()
                            .filter(|d| d.applied_seq() > acked)
                            .cloned()
                            .collect(),
                    )
                } else {
                    (
                        Some(Box::new(snapshot.clone())),
                        shard.snapshot_deltas().to_vec(),
                    )
                };
                self.metrics.resyncs.incr();
                let epoch = self.epoch;
                self.send_to(
                    i,
                    ReplicaMsg::Resync {
                        epoch,
                        base,
                        deltas,
                    },
                );
                self.sent[i] = log.base();
            }
            let (segments, sealed_end) = log.segments_from(self.sent[i]);
            for (from_seq, events) in segments {
                // A segment may straddle the cursor (retransmit after loss);
                // the follower skips the duplicate prefix by arithmetic. The
                // CRC shipped is the recorded seal-time checksum, so leader-
                // side rot is carried (and caught) rather than papered over;
                // a segment with no recorded CRC (shortened by repair) is
                // re-checksummed fresh.
                let crc = shard
                    .segment_crc_at(from_seq)
                    .unwrap_or_else(|| segment_crc(&events));
                let epoch = self.epoch;
                self.send_to(
                    i,
                    ReplicaMsg::Append {
                        epoch,
                        from_seq,
                        crc,
                        events,
                    },
                );
            }
            self.sent[i] = self.sent[i].max(sealed_end);
        }
    }

    fn send_to(&mut self, follower: usize, msg: ReplicaMsg) {
        let size = msg.size_bytes();
        // A send can fail only if the host is down (crashed in a failover
        // experiment); the retransmission path heals exactly like loss.
        let _ = self.net.send(self.leader, self.hosts[follower], msg, size);
    }

    /// Drains the replication network: applies `Append`/`Resync` deliveries
    /// to follower cores (each answers with an `Ack`) and folds `Ack`s into
    /// the quorum bookkeeping. Cheap when nothing is in flight.
    pub(crate) fn pump(&mut self) {
        while let Some(delivery) = self.net.next_delivery() {
            self.handle(delivery);
        }
        self.recompute_quorum();
    }

    fn handle(&mut self, delivery: Delivery<ReplicaMsg>) {
        if delivery.to == self.leader {
            if let ReplicaMsg::Ack { epoch, acked } = delivery.payload {
                if epoch > self.epoch {
                    // A newer leader has been promoted: this incarnation is
                    // fenced. The worker sees `force_quorum` fail and
                    // demotes the shard instead of ever releasing again.
                    self.fenced = true;
                    return;
                }
                let i = delivery.from.index() - 1;
                if acked > self.acked[i] {
                    self.acked[i] = acked;
                    self.metrics.acks.incr();
                }
            }
            return;
        }
        let i = delivery.to.index() - 1;
        let (durable, epoch) = {
            let mut core = self.followers[i].lock().expect("follower core");
            match delivery.payload {
                ReplicaMsg::Append {
                    epoch,
                    from_seq,
                    crc,
                    events,
                } => {
                    if !core.receive(epoch, from_seq, crc, events) {
                        self.metrics.fenced_appends.incr();
                    }
                }
                ReplicaMsg::Resync {
                    epoch,
                    base,
                    deltas,
                } => match core.install_resync(epoch, base.as_deref(), &deltas) {
                    Ok(true) => {}
                    Ok(false) => self.metrics.fenced_appends.incr(),
                    // The copy quarantined itself; the repair flag asks the
                    // (current) leader for a full re-seed on its next
                    // replicate pass.
                    Err(_) => {}
                },
                ReplicaMsg::Ack { .. } => {}
            }
            (core.durable(), core.epoch)
        };
        let ack = ReplicaMsg::Ack {
            epoch,
            acked: durable,
        };
        let size = ack.size_bytes();
        let _ = self.net.send(self.hosts[i], self.leader, ack, size);
    }

    fn recompute_quorum(&mut self) {
        if self.acked.is_empty() {
            return;
        }
        // The quorum-committed position is the quorum_acks-th highest
        // follower ack: that many followers (plus the leader) hold the
        // prefix up to it.
        let mut sorted = self.acked.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let covered = sorted[self.quorum_acks - 1];
        if covered > self.quorum_committed {
            self.quorum_committed = covered;
        }
    }

    /// Drives the quorum to `target`, retransmitting lost suffixes. The
    /// worker calls this when its pipeline window fills, before blocking on
    /// an empty queue, and at every control barrier.
    ///
    /// Returns `false` — without reaching the target — when this leader has
    /// been fenced by a newer epoch, or when [`STALL_BUDGET`] consecutive
    /// retransmission rounds moved nothing (the fleet is partitioned away).
    /// The worker then answers the still-parked batches `ShardDown` and
    /// demotes the shard: the self-demotion half of fencing.
    pub(crate) fn force_quorum(&mut self, shard: &Shard, target: u64) -> bool {
        if self.followers.is_empty() {
            return true;
        }
        let mut stalls: u32 = 0;
        loop {
            self.pump();
            if self.fenced {
                return false;
            }
            if self.quorum_committed >= target {
                return true;
            }
            let progress_mark = (self.quorum_committed, self.acked.clone());
            // Anything sent but unacked may have been lost: rewind the
            // laggards' cursors to their acked positions and re-ship.
            self.metrics.retransmits.incr();
            for i in 0..self.sent.len() {
                if self.acked[i] < target {
                    self.sent[i] = self.acked[i];
                }
            }
            self.replicate(shard);
            self.pump();
            if self.fenced {
                return false;
            }
            if self.quorum_committed >= target {
                return true;
            }
            if (self.quorum_committed, &self.acked) == (progress_mark.0, &progress_mark.1)
                && self.net.pending_count() == 0
            {
                stalls += 1;
                if stalls >= STALL_BUDGET {
                    return false;
                }
            } else {
                stalls = 0;
            }
        }
    }

    /// Failover: bumps the leader epoch (fencing any stale incarnation the
    /// moment the fleet hears the announcement) and promotes the most
    /// caught-up follower into the crashed shard. Only the log tail past the
    /// follower's applied position is replayed (tail-catch-up) — against
    /// full-log replay from the snapshot, which is what [`Shard::recover`]
    /// does and what this falls back to with no followers (or a follower
    /// stranded behind the log base).
    ///
    /// When the crashed shard's own durable artifacts fail verification
    /// (injected corruption), the quorum state is adopted wholesale instead
    /// ([`Shard::repair_from`]): the untrusted snapshot chain and log are
    /// discarded, a fresh checksummed base is cut, and the repair is counted
    /// under `cluster.shard.N.fault.repairs`. A follower copy that fails its
    /// own catch-up quarantines itself and the next-best copy is used — one
    /// rotten replica never blocks failover.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ClusterError::Floor`] when a logged event fails to
    /// re-apply, or [`crate::ClusterError::Corrupt`] when the durable
    /// artifacts are corrupt and no follower holds state to repair from
    /// (the shard stays quarantined).
    pub(crate) fn promote(&mut self, shard: &mut Shard) -> Result<()> {
        if self.followers.is_empty() {
            return shard.recover();
        }
        self.epoch += 1;
        self.fenced = false;
        // Let in-flight appends land first: promotion should start from the
        // best state the fleet actually holds.
        self.pump();
        let durable_ok = shard.verify_durable().is_ok();
        // Catch every follower up to its durable tail. A corrupt copy
        // quarantines itself (rolling back to its applied prefix) and is
        // simply less caught-up; it stays usable and gets repaired later.
        let best = (0..self.followers.len())
            .max_by_key(|&i| {
                let mut core = self.followers[i].lock().expect("follower core");
                let _ = core.catch_up();
                core.applied()
            })
            .expect("non-empty fleet");
        let (arbiter, session, frozen, from_seq) = {
            let core = self.followers[best].lock().expect("follower core");
            (
                core.arbiter.clone(),
                core.session.clone(),
                core.frozen.clone(),
                core.applied(),
            )
        };
        let result = if !durable_ok {
            if from_seq < shard.log().base() {
                // Local artifacts are untrusted and the fleet holds nothing
                // recent enough to repair from: quarantine.
                shard.verify_durable()
            } else {
                // Adopt the quorum state wholesale; the discarded leader
                // tail past it was never quorum-committed, so no released
                // decision loses its events.
                shard.repair_from(arbiter, session, frozen, from_seq);
                self.metrics.repairs.incr();
                // The log was truncated to the adopted position: anything
                // believed sent or acked past it no longer exists.
                for i in 0..self.hosts.len() {
                    self.sent[i] = self.sent[i].min(from_seq);
                    self.acked[i] = self.acked[i].min(from_seq);
                }
                Ok(())
            }
        } else if from_seq < shard.log().base() {
            // The whole fleet is stranded behind compaction (possible only
            // when quorum was never forced, e.g. an idle shard): full replay.
            shard.recover()
        } else {
            let mut arbiter = arbiter;
            let mut session = session;
            let mut frozen = frozen;
            let lag = shard.log().next_seq().saturating_sub(from_seq);
            for event in shard.log().events_from(from_seq) {
                replay_event(&mut arbiter, &mut session, &mut frozen, event)?;
            }
            shard.adopt(arbiter, session, frozen);
            shard.reconcile_orphans(shard.log().next_seq());
            self.metrics.catch_up_lag.record(lag);
            Ok(())
        };
        // Announce the new epoch to the whole fleet — an empty append per
        // follower. From this instant any stale leader's traffic is fenced.
        for i in 0..self.hosts.len() {
            let msg = ReplicaMsg::Append {
                epoch: self.epoch,
                from_seq: self.sent[i],
                crc: 0,
                events: Vec::new().into(),
            };
            self.send_to(i, msg);
        }
        result
    }

    /// Test hook: pretends this leader handle belongs to epoch `epoch`, so
    /// fencing can be exercised without a second `ReplicaSet` object.
    #[cfg(test)]
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::ClusterTelemetry;
    use crate::shard::CorruptionTarget;
    use dmps_floor::{ArbiterEvent, FcmMode, FloorRequest, GroupId, Member, MemberId, Role};

    fn arbitrated(shard: &Shard) -> u64 {
        let s = shard.arbiter().stats();
        s.granted + s.queued + s.denied + s.aborted
    }

    fn fixture(replicas: usize) -> (Shard, ReplicaSet, ClusterTelemetry) {
        let telemetry = ClusterTelemetry::new(0);
        let shard = Shard::new(ShardId(0), 0, 64);
        let set = ReplicaSet::new(ShardId(0), replicas, Link::lan(), telemetry.replica(0));
        (shard, set, telemetry)
    }

    fn commit_some(shard: &mut Shard, requests: usize) {
        shard
            .apply(ArbiterEvent::CreateGroup {
                name: "g".into(),
                mode: FcmMode::EqualControl,
            })
            .unwrap();
        for i in 0..4 {
            shard
                .apply(ArbiterEvent::AddMember {
                    group: GroupId(0),
                    member: Member::new(format!("m{i}"), Role::Participant),
                })
                .unwrap();
        }
        for i in 0..requests {
            shard
                .apply(ArbiterEvent::Arbitrate {
                    request: FloorRequest::speak(GroupId(0), MemberId(i % 4)),
                })
                .unwrap();
        }
        shard.seal_log();
    }

    #[test]
    fn stale_epoch_appends_are_fenced_and_leader_demotes() {
        let (mut shard, mut set, telemetry) = fixture(2);
        commit_some(&mut shard, 8);
        set.replicate(&shard);
        assert!(set.force_quorum(&shard, shard.log().next_seq()));

        // A failover elsewhere bumps the fleet to a new epoch...
        shard.crash();
        set.promote(&mut shard).unwrap();
        let new_epoch = set.epoch();
        set.pump();

        // ...and this handle turns back into the stale pre-failover leader.
        set.set_epoch(new_epoch - 1);
        set.fenced = false;
        commit_some(&mut shard, 4);
        let before: Vec<u64> = set
            .followers()
            .iter()
            .map(|f| f.lock().unwrap().durable())
            .collect();
        set.replicate(&shard);
        assert!(
            !set.force_quorum(&shard, shard.log().next_seq()),
            "a fenced leader must fail to force quorum"
        );
        assert!(set.is_fenced());
        // The stale appends changed no follower's durable position: no fork.
        let after: Vec<u64> = set
            .followers()
            .iter()
            .map(|f| f.lock().unwrap().durable())
            .collect();
        assert_eq!(before, after);
        assert!(telemetry
            .registry
            .names()
            .iter()
            .any(|n| n == "cluster.shard.0.fault.fenced_appends"));
    }

    #[test]
    fn partition_bounds_force_quorum_and_heals() {
        let (mut shard, mut set, _telemetry) = fixture(2);
        commit_some(&mut shard, 8);
        set.partition_leader();
        set.replicate(&shard);
        assert!(
            !set.force_quorum(&shard, shard.log().next_seq()),
            "a fully partitioned leader must give up, not spin"
        );
        assert!(!set.is_fenced(), "partition is not fencing");
        set.heal_partition();
        assert!(set.force_quorum(&shard, shard.log().next_seq()));
    }

    #[test]
    fn corrupt_follower_copy_quarantines_and_is_repaired() {
        let (mut shard, mut set, _telemetry) = fixture(2);
        commit_some(&mut shard, 8);
        set.replicate(&shard);
        assert!(set.force_quorum(&shard, shard.log().next_seq()));
        assert!(set.inject_follower_corruption(0));

        // The rotten copy quarantines at its next catch-up...
        {
            let mut core = set.followers()[0].lock().unwrap();
            core.catch_up_for_read();
            assert_eq!(core.applied(), 0, "suspect tail must not be applied");
            assert_eq!(core.durable(), 0, "durable rolls back to applied");
        }
        // ...and the next replicate pass re-ships the healthy suffix.
        set.replicate(&shard);
        assert!(set.force_quorum(&shard, shard.log().next_seq()));
        {
            let mut core = set.followers()[0].lock().unwrap();
            core.catch_up_for_read();
            assert_eq!(core.applied(), shard.log().next_seq());
        }
    }

    #[test]
    fn promote_repairs_corrupt_leader_from_quorum() {
        let (mut shard, mut set, telemetry) = fixture(2);
        commit_some(&mut shard, 8);
        set.replicate(&shard);
        assert!(set.force_quorum(&shard, shard.log().next_seq()));
        let tip = shard.log().next_seq();

        shard.take_snapshot();
        assert!(shard.inject_corruption(CorruptionTarget::SnapshotBase));
        shard.crash();
        assert!(shard.recover().is_err(), "local recovery must detect rot");

        set.promote(&mut shard).expect("repair from quorum");
        assert!(shard.is_active());
        assert_eq!(shard.log().next_seq(), tip);
        shard.verify_durable().expect("repair cut a clean base");
        assert_eq!(arbitrated(&shard), 8);
        assert!(telemetry
            .registry
            .names()
            .iter()
            .any(|n| n == "cluster.shard.0.fault.repairs"));
    }

    #[test]
    fn promotion_still_tail_catches_up_with_clean_artifacts() {
        let (mut shard, mut set, _telemetry) = fixture(2);
        commit_some(&mut shard, 8);
        set.replicate(&shard);
        assert!(set.force_quorum(&shard, shard.log().next_seq()));
        // More work the fleet never hears about (leader-only tail).
        commit_some(&mut shard, 4);
        let tip = shard.log().next_seq();
        let epoch_before = set.epoch();
        shard.crash();
        set.promote(&mut shard).unwrap();
        assert!(shard.is_active());
        assert_eq!(set.epoch(), epoch_before + 1);
        // The committed tail survived: all 12 arbitrations are in the state.
        assert_eq!(arbitrated(&shard), 12);
        assert_eq!(shard.log().next_seq(), tip);
    }
}
