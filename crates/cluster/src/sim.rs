//! Driving a [`Cluster`] over the deterministic network simulator.
//!
//! [`ClusterSim`] deploys each shard's primary (and a cold standby) on its
//! own simulated host, a gateway host that routes client floor requests to
//! the owning shard, and a failure schedule that crashes shard hosts
//! mid-traffic — the harness behind the failover integration tests and the
//! `sharded_campus_lectures` example. Request→decision latencies are
//! recorded per shard so grant-latency statistics can be computed with
//! `dmps::metrics::GrantLatencyStats`.
//!
//! Whole presentation sessions travel the same network: session operations
//! (chat, whiteboard strokes, annotations, synchronized-media schedules) are
//! scheduled with [`ClusterSim::submit_session_at`], routed to the shard
//! owning the group, floor-gated and durably logged there, and acknowledged
//! back to the gateway ([`ClusterSim::session_acks`]).
//!
//! With [`ClusterSim::enable_retransmission`], the gateway also models the
//! client-side half of exactly-once delivery: every request carries a
//! cluster-unique id, and when a failover completes, requests (floor *and*
//! session) that were sent to the crashed shard but never answered are
//! retransmitted under their original ids. The shard's dedup windows answer
//! already-applied ids from their decision journals, so a retry cannot
//! double-apply a floor event or double-deliver a chat line, and the gateway
//! drops duplicate decisions by id — every submission yields exactly one
//! recorded decision.
//!
//! [`ClusterSim::enable_timeout_retry`] models the client-side timer
//! instead: every transmission arms a per-request deadline, and an id still
//! unanswered when the deadline fires is re-sent under the same id — up to a
//! bounded per-id retry budget — without waiting for any failure signal.
//! That heals pure message loss on a lossy link (which failover-triggered
//! retransmission never sees), with the same dedup windows keeping delivery
//! exactly-once.
//!
//! Backpressure note: the simulated gateway applies each request with a
//! synchronous per-message round-trip (`request_with_id`), so at most one
//! command per shard is in a bounded ingest queue at any instant and the
//! [`ClusterConfig::queue_capacity`] /
//! [`OverloadPolicy`](crate::OverloadPolicy) knobs cannot saturate here. A
//! request that *is* shed (`ClusterError::Overloaded`) dies unanswered like
//! a frozen-window refusal and is healed by the same retransmission
//! machinery; the thread-based overload storms live in
//! `tests/integration_overload.rs`, where real concurrency fills the
//! queues.
//!
//! Every run also produces a merged, time-ordered cluster [`Trace`]
//! ([`ClusterSim::trace`]): scheduled failures (crash, failover,
//! handoff prepare/commit/abort), retransmission passes, and every
//! decision/ack the gateway records — with journal *replays* (the dedup
//! window answering a retried id) distinguished from first-time decisions —
//! land in one event stream, so a crash, the recovery, and the first
//! replayed decision after it can be read off a single table
//! ([`Trace::to_table`]).
//!
//! Rebalancing runs under traffic too: [`ClusterSim::add_shard`] grows the
//! cluster mid-simulation, and [`ClusterSim::schedule_handoff`] drives the
//! two-phase live migration of a group with the prepare and commit as
//! *separate* plan entries — so a [`ClusterSim::schedule_crash`] of the
//! source or destination host can land exactly between the phases, which is
//! how the mid-handoff crash-consistency scenarios are exercised. Requests
//! that hit a frozen window are refused without an answer and healed by the
//! same retransmission machinery after the commit (toward the new owner) or
//! abort (back to the source).
//!
//! ```
//! use dmps_cluster::{ClusterConfig, ClusterSim, GlobalRequest, SessionOp};
//! use dmps_floor::{FcmMode, Member, Role};
//! use dmps_simnet::{Link, SimTime};
//!
//! let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 7, Link::lan());
//! let g = sim.cluster_mut().create_group("lecture", FcmMode::FreeAccess).unwrap();
//! let m = sim.cluster_mut().register_member(Member::new("t", Role::Chair));
//! sim.cluster_mut().join_group(g, m).unwrap();
//! sim.submit_at(SimTime::from_millis(10), GlobalRequest::speak(g, m)).unwrap();
//! sim.submit_session_at(SimTime::from_millis(20), SessionOp::chat(g, m, "hi")).unwrap();
//! sim.run_to_idle();
//! assert_eq!(sim.decisions().len(), 1);
//! assert_eq!(sim.session_acks().len(), 1);
//! assert_eq!(sim.cluster().session_view(g).unwrap().chat.len(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use dmps_floor::ArbitrationOutcome;
use dmps_simnet::{HostId, Link, Network, SimTime, Trace};

use crate::cluster::{Cluster, ClusterConfig, GlobalRequest, HandoffTicket};
use crate::error::{ClusterError, Result};
use crate::ring::ShardId;
use crate::session::{SessionOp, SessionOutcome, SessionRejection};
use crate::shard::{CorruptionTarget, GlobalGroupId};

/// Messages on the cluster's simulated control network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterMsg {
    /// Gateway → shard: arbitrate this request.
    Request {
        /// The cluster-unique request id (idempotency key for retries).
        seq: u64,
        /// The request.
        request: GlobalRequest,
    },
    /// Shard → gateway: the arbitration decision.
    Decision {
        /// The request id.
        seq: u64,
        /// The group the request addressed.
        group: GlobalGroupId,
        /// The outcome.
        outcome: ArbitrationOutcome,
        /// Whether the shard answered from its decision journal (a
        /// retransmitted id replayed by the dedup window) instead of
        /// arbitrating anew.
        replayed: bool,
    },
    /// Gateway → shard: apply this session operation.
    Session {
        /// The cluster-unique request id (idempotency key for retries).
        seq: u64,
        /// The operation.
        op: SessionOp,
    },
    /// Shard → gateway: the session decision.
    SessionAck {
        /// The request id.
        seq: u64,
        /// The group the operation addressed.
        group: GlobalGroupId,
        /// The outcome.
        outcome: SessionOutcome,
        /// Whether the shard answered from its session journal instead of
        /// applying the operation anew.
        replayed: bool,
    },
    /// Gateway self-timer: check whether `seq` has been answered and re-send
    /// it under the same id if not (see
    /// [`ClusterSim::enable_timeout_retry`]).
    RetryCheck {
        /// The request id to check.
        seq: u64,
    },
}

impl ClusterMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            ClusterMsg::Request { .. } => 64,
            ClusterMsg::Decision { outcome, .. } => 64 + outcome.suspensions().len() as u64 * 16,
            ClusterMsg::Session { op, .. } => 16 + op.size_bytes(),
            ClusterMsg::SessionAck { .. } => 48,
            // A pure gateway timer; never occupies link bandwidth.
            ClusterMsg::RetryCheck { .. } => 0,
        }
    }
}

/// A scheduled failure-plan entry.
#[derive(Debug, Clone, Copy)]
enum FailureAction {
    Crash(ShardId),
    Failover(ShardId),
    /// Phase 1 of a scheduled live handoff: freeze + export the group
    /// toward the given shard (`None` = the group's ring placement).
    HandoffPrepare(GlobalGroupId, Option<ShardId>),
    /// Phase 2: commit the prepared handoff (or abort it if the destination
    /// died in the gap — the point of scheduling the phases separately is
    /// that a crash entry can land *between* them).
    HandoffCommit(GlobalGroupId),
    /// Partition a replicated shard's leader away from its follower fleet,
    /// through the non-barrier fault path — batches already shipped stay
    /// parked mid-quorum-write under the partition.
    PartitionLeader(ShardId),
    /// Heal the shard's replication partition; if the leader demoted itself
    /// under it (stall budget exhausted, pipeline failed), promote a
    /// follower and run the retransmission pass like a failover.
    HealPartition(ShardId),
    /// Silently corrupt one durable artifact of the shard; detection (and
    /// quorum repair) happens at the next recovery or resync.
    Corrupt(ShardId, CorruptionTarget),
}

/// What a gateway retransmission pass re-sends.
#[derive(Debug, Clone, Copy)]
enum RetransmitScope {
    /// Everything whose group the given shard currently owns (failover).
    Shard(ShardId),
    /// One group's traffic (post-handoff frozen-window healing).
    Group(GlobalGroupId),
}

/// The hosts backing one shard.
#[derive(Debug, Clone, Copy)]
struct ShardHosts {
    primary: HostId,
    standby: HostId,
    /// Which of the two currently serves.
    serving: HostId,
}

/// A sharded cluster deployed over `dmps-simnet`.
#[derive(Debug)]
pub struct ClusterSim {
    net: Network<ClusterMsg>,
    cluster: Cluster,
    gateway: HostId,
    hosts: Vec<ShardHosts>,
    plan: Vec<(SimTime, FailureAction)>,
    sent_at: BTreeMap<u64, (SimTime, ShardId)>,
    /// Requests sent but not yet answered, by id — the retransmission queue.
    outstanding: BTreeMap<u64, GlobalRequest>,
    /// Session operations sent but not yet acknowledged, by id.
    outstanding_sessions: BTreeMap<u64, SessionOp>,
    /// Ids already answered (duplicate decisions are dropped).
    answered: BTreeSet<u64>,
    /// `Some(delay)` when gateway retransmission after failover is on.
    retransmission: Option<Duration>,
    /// `Some((timeout, budget))` when per-request timeout retry is on.
    timeout_retry: Option<(Duration, u32)>,
    /// Timeout retries already spent per still-unanswered request id.
    retry_budget: BTreeMap<u64, u32>,
    timeout_retries: u64,
    retransmits: u64,
    latencies: Vec<Vec<Duration>>,
    decisions: Vec<(u64, GlobalGroupId, ArbitrationOutcome)>,
    session_acks: Vec<(u64, GlobalGroupId, SessionOutcome)>,
    failovers: u64,
    /// Prepared-but-not-committed live handoffs, by group.
    pending_handoffs: BTreeMap<GlobalGroupId, HandoffTicket>,
    handoffs_committed: u64,
    handoffs_aborted: u64,
    /// Merged, time-ordered event trace of the whole run.
    trace: Trace,
}

impl ClusterSim {
    /// Deploys a cluster: one gateway host, and a primary + standby host per
    /// shard, all connected to the gateway over `link`. `seed` drives every
    /// random network effect (jitter, loss), so runs are reproducible.
    pub fn new(config: ClusterConfig, seed: u64, link: Link) -> Self {
        let cluster = Cluster::new(config);
        let mut net: Network<ClusterMsg> = Network::new(seed);
        let gateway = net.add_host("gateway");
        let mut hosts = Vec::new();
        for i in 0..config.shards {
            let primary = net.add_host(format!("shard-{i}"));
            let standby = net.add_host(format!("shard-{i}-standby"));
            net.connect(gateway, primary, link).expect("fresh hosts");
            net.connect(gateway, standby, link).expect("fresh hosts");
            hosts.push(ShardHosts {
                primary,
                standby,
                serving: primary,
            });
        }
        ClusterSim {
            net,
            cluster,
            gateway,
            hosts,
            plan: Vec::new(),
            sent_at: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            outstanding_sessions: BTreeMap::new(),
            answered: BTreeSet::new(),
            retransmission: None,
            timeout_retry: None,
            retry_budget: BTreeMap::new(),
            timeout_retries: 0,
            retransmits: 0,
            latencies: vec![Vec::new(); config.shards],
            decisions: Vec::new(),
            session_acks: Vec::new(),
            failovers: 0,
            pending_handoffs: BTreeMap::new(),
            handoffs_committed: 0,
            handoffs_aborted: 0,
            trace: Trace::new(),
        }
    }

    /// Control-plane access: set up groups and members directly (membership
    /// changes are an out-of-band administrative path in this harness; only
    /// floor requests travel the simulated network).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Read access to the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Read access to the network (drop records, counters).
    pub fn network(&self) -> &Network<ClusterMsg> {
        &self.net
    }

    /// The merged cluster trace: failures, recoveries, handoff phases,
    /// retransmission passes, and every decision/ack (replays marked with
    /// the `"replay"` / `"session-replay"` categories), in global time
    /// order. Render it with [`Trace::to_table`].
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The host currently serving a shard.
    pub fn serving_host(&self, shard: ShardId) -> HostId {
        self.hosts[shard.0].serving
    }

    /// Number of failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Number of scheduled live handoffs that committed.
    pub fn handoffs_committed(&self) -> u64 {
        self.handoffs_committed
    }

    /// Number of scheduled live handoffs that aborted (destination down at
    /// commit time; the group kept serving on its source).
    pub fn handoffs_aborted(&self) -> u64 {
        self.handoffs_aborted
    }

    /// Number of requests the gateway retransmitted after failovers.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Turns on gateway retransmission: when a failover completes, requests
    /// sent to the crashed shard but never answered are re-sent `delay`
    /// later under their original ids. Combined with the shard dedup window
    /// this makes request delivery exactly-once despite crashes.
    pub fn enable_retransmission(&mut self, delay: Duration) {
        self.retransmission = Some(delay);
    }

    /// Turns on timeout-driven gateway retry: every (re)transmission of a
    /// request or session operation arms a check `timeout` later, and an id
    /// still unanswered when its check fires is re-sent under the same id to
    /// the host *currently* serving its group — up to `budget` retries per
    /// id, after which the gateway gives up on it (traced as
    /// `"retry-exhausted"`).
    ///
    /// Orthogonal to [`ClusterSim::enable_retransmission`], which re-sends
    /// only when a *failover completes*: timeout retry needs no failure
    /// signal, so it also heals pure message loss on a lossy link. The
    /// shard dedup windows keep both paths exactly-once — a retry of an
    /// already-applied id is answered from the decision journal, and the
    /// gateway drops duplicate answers by id.
    pub fn enable_timeout_retry(&mut self, timeout: Duration, budget: u32) {
        self.timeout_retry = Some((timeout, budget));
    }

    /// Number of timeout-driven retries sent so far (distinct from
    /// [`ClusterSim::retransmits`], which counts failover/handoff healing
    /// passes).
    pub fn timeout_retries(&self) -> u64 {
        self.timeout_retries
    }

    /// Schedules a client floor request to be sent at global time `at`.
    ///
    /// # Errors
    ///
    /// Returns routing errors for unknown ids (the request must address an
    /// existing group/member so the gateway can resolve the owning shard).
    pub fn submit_at(&mut self, at: SimTime, request: GlobalRequest) -> Result<u64> {
        // Resolve now to surface routing errors early; the serving host is
        // resolved again at send time so failovers redirect traffic.
        let _ = self.cluster.placement(request.group)?;
        let seq = self.cluster.allocate_request_id();
        self.net
            .schedule(self.gateway, at, ClusterMsg::Request { seq, request })
            .expect("gateway timers are always schedulable");
        Ok(seq)
    }

    /// Schedules a session operation (chat, whiteboard, annotation, media
    /// schedule) to be sent at global time `at`.
    ///
    /// # Errors
    ///
    /// Returns routing errors for unknown ids (the operation must address an
    /// existing group/member so the gateway can resolve the owning shard).
    pub fn submit_session_at(&mut self, at: SimTime, op: SessionOp) -> Result<u64> {
        // Resolve now to surface routing errors early; the serving host is
        // resolved again at send time so failovers redirect traffic.
        let _ = self.cluster.placement(op.group)?;
        let seq = self.cluster.allocate_request_id();
        self.net
            .schedule(self.gateway, at, ClusterMsg::Session { seq, op })
            .expect("gateway timers are always schedulable");
        Ok(seq)
    }

    /// Schedules a crash of the shard's serving host at `at`, with the
    /// standby completing snapshot-plus-log-replay recovery `downtime`
    /// later.
    pub fn schedule_crash(&mut self, at: SimTime, shard: ShardId, downtime: Duration) {
        self.plan.push((at, FailureAction::Crash(shard)));
        self.plan
            .push((at + downtime, FailureAction::Failover(shard)));
        self.plan.sort_by_key(|&(t, _)| t);
    }

    /// Schedules a replication partition isolating `shard`'s leader from its
    /// whole follower fleet at `at`, healed `heal_after` later. The
    /// partition is injected through the worker's non-barrier fault path, so
    /// quorum writes already in flight stay parked *under* it — the leader
    /// burns its retransmission stall budget, answers every parked decision
    /// `ShardDown`, and demotes itself. The heal entry then promotes a
    /// follower (epoch bump — the old leader is fenced) and, with
    /// [`ClusterSim::enable_retransmission`] on, re-drives the stranded
    /// requests exactly-once through the reconciled dedup journals. A no-op
    /// on an unreplicated shard (quorum of one: nothing ever stalls).
    pub fn schedule_partition(&mut self, at: SimTime, shard: ShardId, heal_after: Duration) {
        self.plan.push((at, FailureAction::PartitionLeader(shard)));
        self.plan
            .push((at + heal_after, FailureAction::HealPartition(shard)));
        self.plan.sort_by_key(|&(t, _)| t);
    }

    /// Schedules silent corruption of one of `shard`'s durable artifacts at
    /// `at` (see [`CorruptionTarget`]). Nothing fails immediately — the
    /// damage sits in the checksummed store until the next recovery or
    /// resync reads it, which is the point: pair it with a later
    /// [`ClusterSim::schedule_crash`] to force that read and watch the
    /// quorum repair (or, unreplicated, the `Corrupt` quarantine) in the
    /// [`ClusterSim::trace`].
    pub fn schedule_corruption(&mut self, at: SimTime, shard: ShardId, target: CorruptionTarget) {
        self.plan.push((at, FailureAction::Corrupt(shard, target)));
        self.plan.sort_by_key(|&(t, _)| t);
    }

    /// Grows the cluster by one shard mid-simulation: the ring is enlarged
    /// and a fresh primary + standby host pair joins the network over
    /// `link`. Existing groups stay put until a scheduled handoff (or an
    /// out-of-band `rebalance_active`) moves them.
    pub fn add_shard(&mut self, link: Link) -> ShardId {
        let id = self.cluster.add_shard();
        let primary = self.net.add_host(format!("shard-{}", id.0));
        let standby = self.net.add_host(format!("shard-{}-standby", id.0));
        self.net
            .connect(self.gateway, primary, link)
            .expect("fresh hosts");
        self.net
            .connect(self.gateway, standby, link)
            .expect("fresh hosts");
        self.hosts.push(ShardHosts {
            primary,
            standby,
            serving: primary,
        });
        self.latencies.push(Vec::new());
        id
    }

    /// Schedules a two-phase live handoff of `group` toward `target`
    /// (`None` = its ring placement): prepare (freeze + export) fires at
    /// `at`, commit `commit_after` later. The gap between the phases is the
    /// window a [`ClusterSim::schedule_crash`] entry can land in, which is
    /// how the mid-handoff crash scenarios are driven. Requests that hit the
    /// frozen window die unanswered (the shard refuses them with
    /// `GroupFrozen`) and are healed by the post-handoff retransmission pass
    /// when [`ClusterSim::enable_retransmission`] is on.
    pub fn schedule_handoff(
        &mut self,
        at: SimTime,
        group: GlobalGroupId,
        target: Option<ShardId>,
        commit_after: Duration,
    ) {
        self.plan
            .push((at, FailureAction::HandoffPrepare(group, target)));
        self.plan
            .push((at + commit_after, FailureAction::HandoffCommit(group)));
        self.plan.sort_by_key(|&(t, _)| t);
    }

    fn apply_failure(&mut self, at: SimTime, action: FailureAction) {
        match action {
            FailureAction::Crash(shard) => {
                let serving = self.hosts[shard.0].serving;
                // The process dies: volatile arbiter state and all in-flight
                // traffic to/from the host are gone.
                self.net.crash_host(serving).expect("host exists");
                self.cluster.crash_shard(shard);
                self.trace.record(
                    at,
                    Some(serving),
                    "crash",
                    format!("shard {} serving host down", shard.0),
                );
            }
            FailureAction::Failover(shard) => {
                let hosts = self.hosts[shard.0];
                let standby = if hosts.serving == hosts.primary {
                    hosts.standby
                } else {
                    hosts.primary
                };
                // Promotion repairs checksum-corrupt copies from the replica
                // quorum; damage it cannot repair (unreplicated corruption)
                // quarantines the shard instead of serving from bad state —
                // traced, shard left down, traffic keeps failing ShardDown.
                if let Err(e) = self.cluster.recover_shard(shard) {
                    self.trace.record(
                        at,
                        Some(standby),
                        "quarantine",
                        format!("shard {} recovery refused: {e}", shard.0),
                    );
                    return;
                }
                // The crashed station may later be repaired and become the
                // new standby.
                let _ = self.net.set_host_up(hosts.serving, true);
                self.hosts[shard.0].serving = standby;
                self.failovers += 1;
                self.trace.record(
                    at,
                    Some(standby),
                    "recover",
                    format!("shard {} failed over to standby (snapshot+replay)", shard.0),
                );
                if let Some(delay) = self.retransmission {
                    self.retransmit_unanswered(at, at + delay, RetransmitScope::Shard(shard));
                }
            }
            FailureAction::HandoffPrepare(group, target) => {
                // A prepare that cannot start — source down, a handoff
                // already in flight, or the group already home — is simply
                // skipped; traffic keeps flowing on the source.
                if let Ok(ticket) = self.cluster.handoff_prepare(group, target) {
                    self.trace.record(
                        at,
                        None,
                        "handoff-prepare",
                        format!("group {} frozen for export", group.0),
                    );
                    self.pending_handoffs.insert(group, ticket);
                }
            }
            FailureAction::HandoffCommit(group) => {
                let Some(ticket) = self.pending_handoffs.remove(&group) else {
                    return;
                };
                match self.cluster.handoff_commit(ticket) {
                    Ok(()) => {
                        self.handoffs_committed += 1;
                        self.trace.record(
                            at,
                            None,
                            "handoff-commit",
                            format!("group {} installed on new owner", group.0),
                        );
                    }
                    // Destination down at commit time: the commit aborted
                    // internally, the source unfroze and serves again.
                    Err(_) => {
                        self.handoffs_aborted += 1;
                        self.trace.record(
                            at,
                            None,
                            "handoff-abort",
                            format!("group {} resumed on source", group.0),
                        );
                    }
                }
                // Requests that hit the frozen window were refused without a
                // reply; heal them like failover retransmission does. After a
                // commit they route to the new owner, after an abort back to
                // the source — exactly-once either way, through the migrated
                // (or retained) journal slices.
                if let Some(delay) = self.retransmission {
                    self.retransmit_unanswered(at, at + delay, RetransmitScope::Group(group));
                }
            }
            FailureAction::PartitionLeader(shard) => {
                self.cluster.isolate_shard_leader(shard);
                self.trace.record(
                    at,
                    Some(self.hosts[shard.0].serving),
                    "partition",
                    format!("shard {} leader isolated from its followers", shard.0),
                );
            }
            FailureAction::HealPartition(shard) => {
                self.cluster.heal_shard_partition(shard);
                self.trace.record(
                    at,
                    Some(self.hosts[shard.0].serving),
                    "heal",
                    format!("shard {} replication partition healed", shard.0),
                );
                // A leader that tried to quorum-commit under the partition
                // demoted itself; promote a follower (epoch bump fences the
                // old leader) and heal the stranded traffic like a failover.
                // A leader that stayed quiet is still serving — nothing to
                // promote.
                if !self.cluster.is_shard_active(shard) {
                    if let Err(e) = self.cluster.recover_shard(shard) {
                        self.trace.record(
                            at,
                            None,
                            "quarantine",
                            format!("shard {} recovery refused: {e}", shard.0),
                        );
                        return;
                    }
                    self.failovers += 1;
                    self.trace.record(
                        at,
                        None,
                        "recover",
                        format!("shard {} promoted a follower (epoch bump)", shard.0),
                    );
                    if let Some(delay) = self.retransmission {
                        self.retransmit_unanswered(at, at + delay, RetransmitScope::Shard(shard));
                    }
                }
            }
            FailureAction::Corrupt(shard, target) => {
                let hit = self.cluster.inject_corruption(shard, target);
                self.trace.record(
                    at,
                    Some(self.hosts[shard.0].serving),
                    "corrupt",
                    format!(
                        "shard {} {target:?} {}",
                        shard.0,
                        if hit {
                            "silently corrupted"
                        } else {
                            "not present (nothing corrupted)"
                        }
                    ),
                );
            }
        }
    }

    /// What a retransmission pass covers: everything a recovered shard owns
    /// (failover healing) or one group's traffic (post-handoff healing).
    fn retransmit_scope_matches(&self, scope: RetransmitScope, group: GlobalGroupId) -> bool {
        match scope {
            RetransmitScope::Shard(shard) => self
                .cluster
                .placement(group)
                .is_ok_and(|p| p.shard == shard),
            RetransmitScope::Group(g) => group == g,
        }
    }

    /// Re-schedules every unanswered request and session operation in
    /// `scope` under its original id, to be sent at `at` (the pass itself is
    /// decided — and traced — at `now`). The shard's dedup windows turn
    /// retries of already-applied requests into journal replays, so this
    /// cannot double-apply a floor event or double-deliver content.
    fn retransmit_unanswered(&mut self, now: SimTime, at: SimTime, scope: RetransmitScope) {
        let before = self.retransmits;
        let retries: Vec<(u64, GlobalRequest)> = self
            .outstanding
            .iter()
            .filter(|(_, request)| self.retransmit_scope_matches(scope, request.group))
            .map(|(&seq, &request)| (seq, request))
            .collect();
        for (seq, request) in retries {
            self.net
                .schedule(self.gateway, at, ClusterMsg::Request { seq, request })
                .expect("gateway timers are always schedulable");
            self.retransmits += 1;
        }
        let session_retries: Vec<(u64, SessionOp)> = self
            .outstanding_sessions
            .iter()
            .filter(|(_, op)| self.retransmit_scope_matches(scope, op.group))
            .map(|(&seq, op)| (seq, op.clone()))
            .collect();
        for (seq, op) in session_retries {
            self.net
                .schedule(self.gateway, at, ClusterMsg::Session { seq, op })
                .expect("gateway timers are always schedulable");
            self.retransmits += 1;
        }
        // Traced at `now` (not the future send time) so the trace stays in
        // global time order.
        if self.retransmits > before {
            self.trace.record(
                now,
                None,
                "retransmit",
                format!(
                    "{} unanswered submissions re-scheduled for {at}",
                    self.retransmits - before
                ),
            );
        }
    }

    fn shard_of_host(&self, host: HostId) -> Option<ShardId> {
        self.hosts
            .iter()
            .position(|h| h.primary == host || h.standby == host)
            .map(ShardId)
    }

    /// Runs the simulation — deliveries and scheduled failures in global
    /// time order — until the network is idle and the failure plan is
    /// exhausted.
    pub fn run_to_idle(&mut self) {
        loop {
            let next_delivery = self.net.peek_time();
            let next_failure = self.plan.first().map(|&(t, _)| t);
            match (next_delivery, next_failure) {
                (None, None) => break,
                (Some(d), Some(f)) if f <= d => {
                    let (t, action) = self.plan.remove(0);
                    self.apply_failure(t, action);
                }
                (None, Some(_)) => {
                    let (t, action) = self.plan.remove(0);
                    self.apply_failure(t, action);
                }
                _ => {
                    let delivery = self.net.next_delivery().expect("peeked");
                    self.dispatch(delivery.at, delivery.from, delivery.to, delivery.payload);
                }
            }
        }
    }

    fn dispatch(&mut self, at: SimTime, from: HostId, to: HostId, msg: ClusterMsg) {
        if to == self.gateway {
            match msg {
                // A gateway timer: route the client request to the shard
                // currently serving the group.
                ClusterMsg::Request { seq, request } if from == to => {
                    let Ok(placement) = self.cluster.placement(request.group) else {
                        return;
                    };
                    let serving = self.hosts[placement.shard.0].serving;
                    // First-send time is what client-observed latency (and
                    // retransmission accounting) is measured from.
                    self.sent_at.entry(seq).or_insert((at, placement.shard));
                    self.outstanding.insert(seq, request);
                    let msg = ClusterMsg::Request { seq, request };
                    let size = msg.size_bytes();
                    let _ = self.net.send(self.gateway, serving, msg, size);
                    self.arm_retry_check(at, seq);
                }
                ClusterMsg::Decision {
                    seq,
                    group,
                    outcome,
                    replayed,
                } => {
                    if !self.answered.insert(seq) {
                        // A duplicate decision (original answered, then a
                        // retransmitted copy was replayed): exactly-once
                        // accounting drops it.
                        return;
                    }
                    self.outstanding.remove(&seq);
                    self.retry_budget.remove(&seq);
                    if let Some((sent, shard)) = self.sent_at.get(&seq).copied() {
                        self.latencies[shard.0].push(at.duration_since(sent));
                    }
                    self.trace.record(
                        at,
                        Some(from),
                        if replayed { "replay" } else { "decision" },
                        format!(
                            "seq {seq} group {} {}",
                            group.0,
                            if outcome.is_granted() {
                                "granted"
                            } else {
                                "not granted"
                            }
                        ),
                    );
                    self.decisions.push((seq, group, outcome));
                }
                // A gateway timer: route the session operation to the shard
                // currently serving the group.
                ClusterMsg::Session { seq, op } if from == to => {
                    let Ok(placement) = self.cluster.placement(op.group) else {
                        return;
                    };
                    let serving = self.hosts[placement.shard.0].serving;
                    self.outstanding_sessions.insert(seq, op.clone());
                    let msg = ClusterMsg::Session { seq, op };
                    let size = msg.size_bytes();
                    let _ = self.net.send(self.gateway, serving, msg, size);
                    self.arm_retry_check(at, seq);
                }
                ClusterMsg::SessionAck {
                    seq,
                    group,
                    outcome,
                    replayed,
                } => {
                    if !self.answered.insert(seq) {
                        // Exactly-once accounting drops duplicate acks.
                        return;
                    }
                    self.outstanding_sessions.remove(&seq);
                    self.retry_budget.remove(&seq);
                    self.trace.record(
                        at,
                        Some(from),
                        if replayed {
                            "session-replay"
                        } else {
                            "session-ack"
                        },
                        format!("seq {seq} group {}", group.0),
                    );
                    self.session_acks.push((seq, group, outcome));
                }
                // A gateway timer: the retry deadline for `seq` passed.
                ClusterMsg::RetryCheck { seq } if from == to => {
                    self.timeout_retry_check(at, seq);
                }
                ClusterMsg::Request { .. }
                | ClusterMsg::Session { .. }
                | ClusterMsg::RetryCheck { .. } => {}
            }
        } else if self.shard_of_host(to).is_some() {
            match msg {
                ClusterMsg::Request { seq, request } => {
                    // The shard primary arbitrates — idempotently in the
                    // request id, so a retransmitted request that was already
                    // applied is answered from the decision journal — and
                    // replies to the gateway. Shard down, a frozen handoff
                    // window, or an `Overloaded` shed: the request dies
                    // unanswered and retransmission heals it.
                    let Ok((outcome, replayed)) = self.cluster.request_with_id(seq, request) else {
                        return;
                    };
                    let reply = ClusterMsg::Decision {
                        seq,
                        group: request.group,
                        outcome,
                        replayed,
                    };
                    let size = reply.size_bytes();
                    let _ = self.net.send(to, self.gateway, reply, size);
                }
                ClusterMsg::Session { seq, op } => {
                    // Same shape for session operations: floor-gated, durably
                    // logged, idempotent in the request id.
                    let group = op.group;
                    let (outcome, replayed) = match self.cluster.session_with_id(seq, op) {
                        Ok((outcome, replayed)) => (outcome, replayed),
                        // A member never instantiated on the owning shard is a
                        // membership rejection — it must be *acked* (otherwise
                        // the op would sit in the retransmission queue
                        // forever), and whether it surfaces here or inside
                        // `apply_session` depends only on ring placement.
                        Err(ClusterError::NotOnShard { .. })
                        | Err(ClusterError::UnknownMember(_)) => (
                            SessionOutcome::Rejected {
                                reason: SessionRejection::NotAMember,
                            },
                            false,
                        ),
                        // Shard down / unroutable: the op dies with the host;
                        // failover retransmission heals it.
                        Err(_) => return,
                    };
                    let reply = ClusterMsg::SessionAck {
                        seq,
                        group,
                        outcome,
                        replayed,
                    };
                    let size = reply.size_bytes();
                    let _ = self.net.send(to, self.gateway, reply, size);
                }
                ClusterMsg::Decision { .. }
                | ClusterMsg::SessionAck { .. }
                | ClusterMsg::RetryCheck { .. } => {}
            }
        }
    }

    /// Arms a timeout-retry check for `seq`, `timeout` after the
    /// transmission at `at` (no-op unless
    /// [`ClusterSim::enable_timeout_retry`] is on).
    fn arm_retry_check(&mut self, at: SimTime, seq: u64) {
        if let Some((timeout, _)) = self.timeout_retry {
            self.net
                .schedule(self.gateway, at + timeout, ClusterMsg::RetryCheck { seq })
                .expect("gateway timers are always schedulable");
        }
    }

    /// A retry deadline fired: if `seq` is still unanswered and its budget
    /// is not exhausted, re-send it under the same id to the host currently
    /// serving its group and arm the next check.
    fn timeout_retry_check(&mut self, at: SimTime, seq: u64) {
        if self.answered.contains(&seq) {
            return;
        }
        let Some((_, budget)) = self.timeout_retry else {
            return;
        };
        let used = self.retry_budget.get(&seq).copied().unwrap_or(0);
        if used >= budget {
            self.trace.record(
                at,
                None,
                "retry-exhausted",
                format!("seq {seq} abandoned after {used} timeout retries"),
            );
            return;
        }
        // Re-send under the original id; the placement (and the serving
        // host) is re-resolved so retries follow failovers and handoffs.
        let msg = if let Some(request) = self.outstanding.get(&seq).copied() {
            ClusterMsg::Request { seq, request }
        } else if let Some(op) = self.outstanding_sessions.get(&seq).cloned() {
            ClusterMsg::Session { seq, op }
        } else {
            return;
        };
        let group = match &msg {
            ClusterMsg::Request { request, .. } => request.group,
            ClusterMsg::Session { op, .. } => op.group,
            _ => unreachable!("only submissions are retried"),
        };
        let Ok(placement) = self.cluster.placement(group) else {
            return;
        };
        let serving = self.hosts[placement.shard.0].serving;
        let size = msg.size_bytes();
        let _ = self.net.send(self.gateway, serving, msg, size);
        self.retry_budget.insert(seq, used + 1);
        self.timeout_retries += 1;
        self.trace.record(
            at,
            None,
            "timeout-retry",
            format!("seq {seq} re-sent (retry {} of {budget})", used + 1),
        );
        self.arm_retry_check(at, seq);
    }

    /// Request→decision latency samples observed for one shard, measured
    /// from the first transmission of each request.
    pub fn latencies(&self, shard: ShardId) -> &[Duration] {
        &self.latencies[shard.0]
    }

    /// Every decision received by the gateway, in arrival order as
    /// `(request id, group, outcome)` — at most one entry per request id.
    pub fn decisions(&self) -> &[(u64, GlobalGroupId, ArbitrationOutcome)] {
        &self.decisions
    }

    /// Every session acknowledgement received by the gateway, in arrival
    /// order as `(request id, group, outcome)` — at most one entry per
    /// request id.
    pub fn session_acks(&self) -> &[(u64, GlobalGroupId, SessionOutcome)] {
        &self.session_acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::{FcmMode, Member, Role};

    #[test]
    fn requests_flow_and_latencies_are_recorded() {
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 11, Link::lan());
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let m = sim
            .cluster_mut()
            .register_member(Member::new("t", Role::Chair));
        sim.cluster_mut().join_group(g, m).unwrap();
        for i in 0..10u64 {
            sim.submit_at(SimTime::from_millis(i * 10), GlobalRequest::speak(g, m))
                .unwrap();
        }
        sim.run_to_idle();
        assert_eq!(sim.decisions().len(), 10);
        // Every submission got a distinct request id, so decisions correlate
        // one-to-one with submissions.
        let mut seqs: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        let shard = sim.cluster().placement(g).unwrap().shard;
        assert_eq!(sim.latencies(shard).len(), 10);
        assert!(sim.latencies(shard).iter().all(|&l| l > Duration::ZERO));
    }

    #[test]
    fn crash_during_traffic_fails_over_to_standby() {
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 5, Link::lan());
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let shard = sim.cluster().placement(g).unwrap().shard;
        let speakers: Vec<_> = (0..3)
            .map(|i| {
                let m = sim
                    .cluster_mut()
                    .register_member(Member::new(format!("m{i}"), Role::Participant));
                sim.cluster_mut().join_group(g, m).unwrap();
                m
            })
            .collect();
        let primary = sim.serving_host(shard);
        for i in 0..40u64 {
            sim.submit_at(
                SimTime::from_millis(50 * i),
                GlobalRequest::speak(g, speakers[(i % 3) as usize]),
            )
            .unwrap();
        }
        sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1);
        assert_ne!(sim.serving_host(shard), primary, "standby serves now");
        // Without retransmission, some requests were answered and some died
        // with the host.
        assert!(!sim.decisions().is_empty());
        assert!(sim.decisions().len() < 40);
        assert_eq!(sim.retransmits(), 0);
        assert!(sim
            .network()
            .dropped()
            .iter()
            .any(|d| d.reason == dmps_simnet::DropReason::HostDown));
        sim.cluster().check_invariants().unwrap();
        // Exactly one token holder after recovery.
        let placement = sim.cluster().placement(g).unwrap();
        let arbiter = sim.cluster().arbiter(placement.shard);
        let token = arbiter.token(placement.local).unwrap();
        assert!(token.holder().is_some());
    }

    #[test]
    fn retransmission_answers_every_request_exactly_once() {
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 5, Link::lan());
        sim.enable_retransmission(Duration::from_millis(40));
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let shard = sim.cluster().placement(g).unwrap().shard;
        let speakers: Vec<_> = (0..3)
            .map(|i| {
                let m = sim
                    .cluster_mut()
                    .register_member(Member::new(format!("m{i}"), Role::Participant));
                sim.cluster_mut().join_group(g, m).unwrap();
                m
            })
            .collect();
        let mut seqs = Vec::new();
        for i in 0..40u64 {
            seqs.push(
                sim.submit_at(
                    SimTime::from_millis(50 * i),
                    GlobalRequest::speak(g, speakers[(i % 3) as usize]),
                )
                .unwrap(),
            );
        }
        sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1);
        assert!(sim.retransmits() > 0, "the crash must strand some requests");
        // Exactly one decision per submission, despite drops and retries.
        let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        answered.sort_unstable();
        assert_eq!(answered, seqs, "every request answered exactly once");
        sim.cluster().check_invariants().unwrap();
    }

    #[test]
    fn crash_failover_run_yields_time_ordered_trace_with_identifiable_replay() {
        // Zero jitter and a fat 30 ms pipe make the replay deterministic: the
        // request sent at 850 ms is applied and durably logged at ~880 ms, its
        // decision is still in flight when the host dies at 900 ms, and the
        // post-failover retry is answered from the recovered journal.
        let link = Link {
            latency: Duration::from_millis(30),
            jitter: Duration::ZERO,
            ..Link::lan()
        };
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 5, link);
        sim.enable_retransmission(Duration::from_millis(40));
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let shard = sim.cluster().placement(g).unwrap().shard;
        let speakers: Vec<_> = (0..3)
            .map(|i| {
                let m = sim
                    .cluster_mut()
                    .register_member(Member::new(format!("m{i}"), Role::Participant));
                sim.cluster_mut().join_group(g, m).unwrap();
                m
            })
            .collect();
        for i in 0..40u64 {
            sim.submit_at(
                SimTime::from_millis(50 * i),
                GlobalRequest::speak(g, speakers[(i % 3) as usize]),
            )
            .unwrap();
        }
        sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1);
        assert!(sim.retransmits() > 0);

        let trace = sim.trace();
        // One merged stream, in global time order.
        assert!(
            trace.events().windows(2).all(|w| w[0].at <= w[1].at),
            "trace must be time-ordered"
        );
        // The crash, the recovery, and the retransmission pass are all in it.
        let crash = trace.of_category("crash").next().expect("crash traced");
        let recover = trace
            .of_category("recover")
            .next()
            .expect("recovery traced");
        assert_eq!(crash.at, SimTime::from_millis(900));
        assert_eq!(recover.at, SimTime::from_millis(1_200));
        assert_eq!(trace.of_category("retransmit").count(), 1);
        // Retried ids answered from the recovered journal are marked as
        // replays — identifiable, and strictly after the recovery. A retried
        // id the crashed shard never applied arbitrates anew and stays
        // "decision".
        let replay = trace
            .of_category("replay")
            .next()
            .expect("the in-flight decision at crash time must replay");
        assert!(replay.at > recover.at, "replays only after recovery");
        // Decisions + replays account for every answered request exactly.
        let answered = trace.of_category("decision").count() + trace.of_category("replay").count();
        assert_eq!(answered, sim.decisions().len());
        // And the rendered table carries the story end to end.
        let table = sim.trace().to_table();
        assert!(table.contains("crash"));
        assert!(table.contains("failed over to standby"));
    }

    #[test]
    fn session_traffic_survives_crash_with_exactly_once_delivery() {
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 5, Link::lan());
        sim.enable_retransmission(Duration::from_millis(40));
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let shard = sim.cluster().placement(g).unwrap().shard;
        let m = sim
            .cluster_mut()
            .register_member(Member::new("t", Role::Chair));
        sim.cluster_mut().join_group(g, m).unwrap();
        let mut seqs = Vec::new();
        for i in 0..40u64 {
            seqs.push(
                sim.submit_session_at(
                    SimTime::from_millis(50 * i),
                    SessionOp::chat(g, m, format!("line {i}")),
                )
                .unwrap(),
            );
        }
        sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1);
        assert!(sim.retransmits() > 0, "the crash must strand some ops");
        // Exactly one ack per submission, despite drops and retries.
        let mut acked: Vec<u64> = sim.session_acks().iter().map(|(s, ..)| *s).collect();
        acked.sort_unstable();
        assert_eq!(acked, seqs, "every session op acked exactly once");
        // And exactly one recorded chat line per submission: the recovered
        // session store was reconstructed by snapshot+replay, and retries
        // replayed from the session journal instead of re-appending.
        let view = sim.cluster().session_view(g).unwrap();
        assert_eq!(view.chat.len(), 40);
        sim.cluster().check_invariants().unwrap();
    }

    /// A 2-shard campus plus one added mid-sim; one Equal Control group with
    /// a held token and live traffic, scheduled for a live handoff to the
    /// new shard.
    fn handoff_scenario(
        seed: u64,
    ) -> (
        ClusterSim,
        GlobalGroupId,
        Vec<crate::shard::GlobalMemberId>,
        Vec<u64>,
        ShardId,
        ShardId,
    ) {
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), seed, Link::lan());
        sim.enable_retransmission(Duration::from_millis(40));
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let source = sim.cluster().placement(g).unwrap().shard;
        let speakers: Vec<_> = (0..3)
            .map(|i| {
                let m = sim
                    .cluster_mut()
                    .register_member(Member::new(format!("m{i}"), Role::Participant));
                sim.cluster_mut().join_group(g, m).unwrap();
                m
            })
            .collect();
        let target = sim.add_shard(Link::lan());
        let mut seqs = Vec::new();
        for i in 0..40u64 {
            seqs.push(
                sim.submit_at(
                    SimTime::from_millis(50 * i),
                    GlobalRequest::speak(g, speakers[(i % 3) as usize]),
                )
                .unwrap(),
            );
        }
        // Prepare at 900 ms, commit 300 ms later: requests land before,
        // inside, and after the frozen window.
        sim.schedule_handoff(
            SimTime::from_millis(900),
            g,
            Some(target),
            Duration::from_millis(300),
        );
        (sim, g, speakers, seqs, source, target)
    }

    #[test]
    fn scheduled_handoff_moves_live_group_exactly_once() {
        let (mut sim, g, _speakers, seqs, source, target) = handoff_scenario(5);
        sim.run_to_idle();
        assert_eq!(sim.handoffs_committed(), 1);
        assert_eq!(sim.handoffs_aborted(), 0);
        assert_eq!(sim.cluster().placement(g).unwrap().shard, target);
        assert!(
            sim.retransmits() > 0,
            "the frozen window must strand some requests"
        );
        // Every request answered exactly once despite the migration.
        let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        answered.sort_unstable();
        assert_eq!(answered, seqs, "every request answered exactly once");
        sim.cluster().check_invariants().unwrap();
        // Exactly one serving copy: the source husk is empty and unfrozen,
        // the destination holds the token.
        assert_eq!(sim.cluster().shard_view(source).frozen_groups, 0);
        let placement = sim.cluster().placement(g).unwrap();
        let arbiter = sim.cluster().arbiter(placement.shard);
        assert!(arbiter.token(placement.local).unwrap().holder().is_some());
    }

    #[test]
    fn source_crash_mid_handoff_recovers_consistently() {
        let (mut sim, g, _speakers, seqs, source, target) = handoff_scenario(5);
        // The source host dies inside the prepare→commit gap and its standby
        // recovers only after the commit already ran: the commit proceeds on
        // the destination and the source recovers as a frozen husk.
        sim.schedule_crash(
            SimTime::from_millis(1_000),
            source,
            Duration::from_millis(500),
        );
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1);
        assert_eq!(sim.handoffs_committed(), 1);
        assert_eq!(sim.cluster().placement(g).unwrap().shard, target);
        sim.cluster().check_invariants().unwrap();
        // Snapshot+replay restored the source *with* its frozen marker, so
        // even a stale route cannot make the husk serve the group.
        assert_eq!(sim.cluster().shard_view(source).frozen_groups, 1);
        // Exactly-once still holds end to end.
        let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        answered.sort_unstable();
        assert_eq!(answered, seqs);
        let placement = sim.cluster().placement(g).unwrap();
        let arbiter = sim.cluster().arbiter(placement.shard);
        assert!(arbiter.token(placement.local).unwrap().holder().is_some());
    }

    #[test]
    fn destination_crash_mid_handoff_aborts_back_to_source() {
        let (mut sim, g, _speakers, seqs, source, target) = handoff_scenario(5);
        // The destination dies inside the gap and stays down through the
        // commit: the handoff aborts and the group keeps serving on its
        // source, token state untouched.
        sim.schedule_crash(
            SimTime::from_millis(1_000),
            target,
            Duration::from_millis(500),
        );
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1);
        assert_eq!(sim.handoffs_committed(), 0);
        assert_eq!(sim.handoffs_aborted(), 1);
        assert_eq!(sim.cluster().placement(g).unwrap().shard, source);
        assert_eq!(sim.cluster().shard_view(source).frozen_groups, 0);
        sim.cluster().check_invariants().unwrap();
        let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        answered.sort_unstable();
        assert_eq!(answered, seqs);
        let placement = sim.cluster().placement(g).unwrap();
        let arbiter = sim.cluster().arbiter(placement.shard);
        assert!(arbiter.token(placement.local).unwrap().holder().is_some());
    }

    #[test]
    fn same_seed_same_handoff_same_state() {
        let run = |seed: u64| {
            let (mut sim, g, _, _, source, _) = handoff_scenario(seed);
            sim.schedule_crash(
                SimTime::from_millis(1_000),
                source,
                Duration::from_millis(500),
            );
            sim.run_to_idle();
            let placement = sim.cluster().placement(g).unwrap();
            (
                dmps_wire::to_string(&sim.cluster().arbiter(placement.shard)),
                placement.shard,
                sim.decisions().len(),
                sim.retransmits(),
                sim.handoffs_committed(),
            )
        };
        assert_eq!(run(91), run(91), "identical seeds reproduce exactly");
    }

    #[test]
    fn timeout_retry_heals_message_loss_exactly_once() {
        // A 20% lossy link with no crashes at all: failover-triggered
        // retransmission would never fire, so only the per-request timer can
        // heal the drops.
        let link = Link {
            loss_rate: 0.2,
            ..Link::lan()
        };
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(2), 23, link);
        sim.enable_timeout_retry(Duration::from_millis(30), 10);
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let m = sim
            .cluster_mut()
            .register_member(Member::new("t", Role::Chair));
        sim.cluster_mut().join_group(g, m).unwrap();
        let mut seqs = Vec::new();
        for i in 0..30u64 {
            seqs.push(
                sim.submit_at(SimTime::from_millis(40 * i), GlobalRequest::speak(g, m))
                    .unwrap(),
            );
            seqs.push(
                sim.submit_session_at(
                    SimTime::from_millis(40 * i + 20),
                    SessionOp::chat(g, m, format!("line {i}")),
                )
                .unwrap(),
            );
        }
        sim.run_to_idle();
        assert!(
            sim.timeout_retries() > 0,
            "a 20% lossy link must strand some submissions"
        );
        assert_eq!(sim.retransmits(), 0, "no failover passes ran");
        // Exactly one answer per submission despite drops and retries.
        let mut answered: Vec<u64> = sim
            .decisions()
            .iter()
            .map(|(s, ..)| *s)
            .chain(sim.session_acks().iter().map(|(s, ..)| *s))
            .collect();
        answered.sort_unstable();
        seqs.sort_unstable();
        assert_eq!(answered, seqs, "every submission answered exactly once");
        // And exactly one recorded chat line per session op.
        assert_eq!(sim.cluster().session_view(g).unwrap().chat.len(), 30);
        assert!(sim.trace().of_category("timeout-retry").count() > 0);
        sim.cluster().check_invariants().unwrap();
    }

    #[test]
    fn timeout_retry_budget_bounds_the_retries() {
        // The shard link is fully lossy in both directions, so no request is
        // ever answered: the gateway must give up after exactly `budget`
        // retries per id instead of retrying forever.
        let link = Link {
            loss_rate: 1.0,
            ..Link::lan()
        };
        let mut sim = ClusterSim::new(ClusterConfig::with_shards(1), 9, link);
        sim.enable_timeout_retry(Duration::from_millis(30), 3);
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let m = sim
            .cluster_mut()
            .register_member(Member::new("t", Role::Chair));
        sim.cluster_mut().join_group(g, m).unwrap();
        for i in 0..4u64 {
            sim.submit_at(SimTime::from_millis(10 * i), GlobalRequest::speak(g, m))
                .unwrap();
        }
        sim.run_to_idle();
        assert!(sim.decisions().is_empty(), "nothing survives a 100% loss");
        assert_eq!(
            sim.timeout_retries(),
            4 * 3,
            "exactly budget retries per request"
        );
        assert_eq!(sim.trace().of_category("retry-exhausted").count(), 4);
    }

    /// A replicated 2-shard cluster with one busy Equal Control group:
    /// the scenario every fault-plan test below perturbs.
    fn replicated_scenario(
        seed: u64,
    ) -> (ClusterSim, GlobalGroupId, Vec<u64>, crate::ring::ShardId) {
        let mut sim = ClusterSim::new(
            ClusterConfig::with_shards(2).with_replicas(2),
            seed,
            Link::lan(),
        );
        sim.enable_retransmission(Duration::from_millis(40));
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let shard = sim.cluster().placement(g).unwrap().shard;
        let speakers: Vec<_> = (0..3)
            .map(|i| {
                let m = sim
                    .cluster_mut()
                    .register_member(Member::new(format!("m{i}"), Role::Participant));
                sim.cluster_mut().join_group(g, m).unwrap();
                m
            })
            .collect();
        let mut seqs = Vec::new();
        for i in 0..40u64 {
            seqs.push(
                sim.submit_at(
                    SimTime::from_millis(50 * i),
                    GlobalRequest::speak(g, speakers[(i % 3) as usize]),
                )
                .unwrap(),
            );
        }
        (sim, g, seqs, shard)
    }

    #[test]
    fn partition_isolating_leader_fails_over_exactly_once() {
        let (mut sim, g, seqs, shard) = replicated_scenario(5);
        // The leader is cut off from its whole fleet mid-traffic: its next
        // quorum write burns the stall budget, the pipeline fails (ShardDown
        // answers), and the shard self-demotes. The heal entry promotes a
        // follower under a bumped epoch and re-drives the stranded ids.
        sim.schedule_partition(SimTime::from_millis(900), shard, Duration::from_millis(300));
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1, "demotion under partition must promote");
        assert!(
            sim.retransmits() > 0,
            "the partition must strand some requests"
        );
        assert_eq!(sim.trace().of_category("partition").count(), 1);
        assert_eq!(sim.trace().of_category("heal").count(), 1);
        // Exactly-once despite the demote/promote cycle: the reconciled
        // dedup journal answers retries of quorum-surviving ids as replays
        // and re-arbitrates the rest.
        let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        answered.sort_unstable();
        assert_eq!(answered, seqs, "every request answered exactly once");
        sim.cluster().check_invariants().unwrap();
        let placement = sim.cluster().placement(g).unwrap();
        let arbiter = sim.cluster().arbiter(placement.shard);
        assert!(arbiter.token(placement.local).unwrap().holder().is_some());
    }

    #[test]
    fn same_seed_same_partition_same_state() {
        let run = |seed: u64| {
            let (mut sim, g, _, shard) = replicated_scenario(seed);
            sim.schedule_partition(SimTime::from_millis(900), shard, Duration::from_millis(300));
            sim.run_to_idle();
            let placement = sim.cluster().placement(g).unwrap();
            (
                dmps_wire::to_string(&sim.cluster().arbiter(placement.shard)),
                sim.decisions().len(),
                sim.retransmits(),
                sim.failovers(),
            )
        };
        assert_eq!(run(41), run(41), "identical seeds reproduce exactly");
    }

    #[test]
    fn corrupt_leader_segment_is_repaired_from_quorum_at_failover() {
        let (mut sim, g, seqs, shard) = replicated_scenario(5);
        // Silent bit-rot on the leader's newest sealed segment, then a crash:
        // promotion's checksum verification catches it and repairs the new
        // leader from the replica quorum instead of serving from bad state.
        sim.schedule_corruption(
            SimTime::from_millis(850),
            shard,
            CorruptionTarget::SealedSegment,
        );
        sim.schedule_crash(SimTime::from_millis(900), shard, Duration::from_millis(300));
        sim.run_to_idle();
        assert_eq!(sim.failovers(), 1, "repair must let the failover complete");
        assert_eq!(sim.trace().of_category("corrupt").count(), 1);
        assert_eq!(sim.trace().of_category("quarantine").count(), 0);
        let mut answered: Vec<u64> = sim.decisions().iter().map(|(s, ..)| *s).collect();
        answered.sort_unstable();
        assert_eq!(answered, seqs, "every request answered exactly once");
        sim.cluster().check_invariants().unwrap();
        let placement = sim.cluster().placement(g).unwrap();
        let arbiter = sim.cluster().arbiter(placement.shard);
        assert!(arbiter.token(placement.local).unwrap().holder().is_some());
    }

    #[test]
    fn unreplicated_corruption_quarantines_instead_of_aborting() {
        // No replicas: there is no quorum to repair from, so recovery must
        // refuse (ClusterError::Corrupt) and quarantine the shard — never
        // abort the process, never serve from corrupt state. A tight
        // event-count checkpoint cadence guarantees a snapshot base exists
        // to rot.
        let mut config = ClusterConfig::with_shards(2);
        config.snapshot_every = 8;
        config.snapshot_every_bytes = 0;
        let mut sim = ClusterSim::new(config, 5, Link::lan());
        let g = sim
            .cluster_mut()
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let shard = sim.cluster().placement(g).unwrap().shard;
        let m = sim
            .cluster_mut()
            .register_member(Member::new("t", Role::Chair));
        sim.cluster_mut().join_group(g, m).unwrap();
        for i in 0..20u64 {
            sim.submit_at(SimTime::from_millis(10 * i), GlobalRequest::speak(g, m))
                .unwrap();
        }
        sim.schedule_corruption(
            SimTime::from_millis(500),
            shard,
            CorruptionTarget::SnapshotBase,
        );
        sim.schedule_crash(SimTime::from_millis(600), shard, Duration::from_millis(200));
        sim.run_to_idle();
        let corrupt = sim
            .trace()
            .of_category("corrupt")
            .next()
            .expect("corruption traced");
        assert!(
            corrupt.detail.contains("silently corrupted"),
            "the snapshot base must exist to corrupt: {}",
            corrupt.detail
        );
        assert_eq!(sim.failovers(), 0, "a corrupt standby must not serve");
        assert_eq!(sim.trace().of_category("quarantine").count(), 1);
        assert!(!sim.cluster().is_shard_active(shard));
    }

    #[test]
    fn same_seed_same_failover_same_state() {
        let run = |seed: u64| {
            let mut sim = ClusterSim::new(ClusterConfig::with_shards(3), seed, Link::dsl());
            sim.enable_retransmission(Duration::from_millis(25));
            let g = sim
                .cluster_mut()
                .create_group("lecture", FcmMode::EqualControl)
                .unwrap();
            let shard = sim.cluster().placement(g).unwrap().shard;
            let ms: Vec<_> = (0..4)
                .map(|i| {
                    let m = sim
                        .cluster_mut()
                        .register_member(Member::new(format!("m{i}"), Role::Participant));
                    sim.cluster_mut().join_group(g, m).unwrap();
                    m
                })
                .collect();
            for i in 0..60u64 {
                sim.submit_at(
                    SimTime::from_millis(20 * i),
                    GlobalRequest::speak(g, ms[(i % 4) as usize]),
                )
                .unwrap();
            }
            sim.schedule_crash(SimTime::from_millis(600), shard, Duration::from_millis(200));
            sim.run_to_idle();
            let placement = sim.cluster().placement(g).unwrap();
            (
                dmps_wire::to_string(&sim.cluster().arbiter(placement.shard)),
                sim.decisions().len(),
                sim.retransmits(),
                sim.network().dropped().len(),
            )
        };
        assert_eq!(run(77), run(77), "identical seeds reproduce exactly");
    }
}
