//! Gateways: cheaply-cloneable concurrent ingest handles.
//!
//! A [`Gateway`] is the multi-gateway face of the control plane: it shares
//! the cluster's [`Directory`](crate::Directory) and bounded shard worker
//! queues through an `Arc`, but owns a private results stream that decisions
//! for *its* submissions come back on. Cloning a gateway is two channel
//! allocations, one registry slot and an `Arc` bump — hand one clone to
//! every front-end thread and they all ingest concurrently:
//!
//! * [`Gateway::submit`] routes a request (read-mostly directory lookups,
//!   one bounded-queue push) and returns its cluster-unique request id. The
//!   submit path itself performs **no per-request heap allocation**: the id
//!   comes from a leased block
//!   ([`ClusterConfig::seq_lease`](crate::ClusterConfig::seq_lease)) instead
//!   of a shared atomic, and the command carries a small copyable reply
//!   handle instead of a cloned channel sender.
//! * [`Gateway::submit_batch`] is the vectored form: one id-lease, one
//!   directory pass and one queue reservation per owning shard for a whole
//!   slice of requests.
//! * [`Gateway::recv_decision`] / [`Gateway::collect_decisions`] stream the
//!   decisions back (workers deliver them coalesced per batch; the gateway
//!   unpacks transparently), each tagged with the request id and whether it
//!   was replayed from a shard's dedup window.
//! * [`Gateway::resubmit`] retries a request under its original id — the
//!   retransmission path after a shard crash *or* after a shed
//!   ([`ClusterError::Overloaded`]). The owning shard's dedup window
//!   guarantees an already-applied event is answered from the decision
//!   journal instead of double-applying.
//!
//! Backpressure: every shard's ingest queue is bounded
//! ([`ClusterConfig::queue_capacity`](crate::ClusterConfig::queue_capacity)).
//! When it is full, the configured
//! [`OverloadPolicy`](crate::OverloadPolicy) applies — `Block` makes
//! `submit` wait for space (lossless), `Shed` answers the submission with
//! [`ClusterError::Overloaded`] on this gateway's decision stream, so a
//! storm can never exhaust memory and never loses a request silently.
//!
//! Session traffic — the non-floor half of a DMPS presentation session —
//! rides the same pipelines: [`Gateway::submit_session`] /
//! [`Gateway::submit_session_batch`] route chat lines, whiteboard strokes,
//! annotations and synchronized-media schedules to the shard owning the
//! group, where they are floor-gated, durably group-committed, and answered
//! with [`SessionDecision`]s on this gateway's private session stream
//! ([`Gateway::recv_session_decision`]). [`Gateway::resubmit_session`] is
//! the exactly-once retry path, mirroring [`Gateway::resubmit`].
//!
//! Reads scale out with replication: when
//! [`ClusterConfig::replicas`](crate::ClusterConfig::replicas) is non-zero,
//! [`Gateway::session_view`], [`Gateway::shard_view`] and
//! [`Gateway::queue_position`] are served from the owning shard's followers
//! instead of its (write-busy) leader. Each gateway tracks a per-shard
//! **read-your-writes bound** — the highest [`Decision::commit`] /
//! [`SessionDecision::commit`] position it has observed in its decision
//! streams — and a follower serves a read only when its applied position has
//! reached that bound; otherwise the read transparently forwards to the
//! leader. A gateway therefore always reads its own acknowledged writes,
//! while read throughput grows with the replica count.
//!
//! Control-plane operations (groups, membership, invitations) are exposed
//! with `&self` receivers as well, so administrative traffic can run from
//! any gateway without a cluster-wide lock.
//!
//! During a live group handoff
//! ([`Cluster::rebalance_active`](crate::Cluster::rebalance_active)) the
//! routing layer *parks* streamed submissions for the frozen group and
//! re-drives them — toward the new owner after the commit, back to the
//! source after an abort — so `submit`/`submit_session` callers never
//! observe the migration beyond added latency; the synchronous
//! [`Gateway::request`]/[`Gateway::session`] paths and the membership
//! mutations ([`Gateway::join_group`]/[`Gateway::leave_group`]) instead
//! fail fast with [`ClusterError::GroupFrozen`] and are expected to retry.
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest, SessionOp};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
//! let g = cluster.create_group("lecture", FcmMode::FreeAccess).unwrap();
//! let gateway = cluster.gateway();
//! let m = gateway.register_member(Member::new("teacher", Role::Chair));
//! gateway.join_group(g, m).unwrap();
//! // Floor and session traffic stream decisions back to this gateway.
//! let seq = gateway.submit(GlobalRequest::speak(g, m)).unwrap();
//! assert_eq!(gateway.recv_decision().unwrap().seq, seq);
//! let seq = gateway.submit_session(SessionOp::chat(g, m, "hello")).unwrap();
//! let decision = gateway.recv_session_decision().unwrap();
//! assert_eq!(decision.seq, seq);
//! assert!(decision.outcome.unwrap().is_delivered());
//! // Vectored ingest: one directory pass and one queue reservation per
//! // shard for the whole batch.
//! let seqs = gateway.submit_batch(&[
//!     GlobalRequest::speak(g, m),
//!     GlobalRequest::release_floor(g, m),
//! ]);
//! let decisions = gateway.collect_decisions(seqs.len()).unwrap();
//! assert_eq!(decisions.len(), 2);
//! ```

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};

use dmps_floor::{ArbitrationOutcome, FcmMode, InvitationStatus, Member};

use crate::cluster::{Core, Decision, GlobalRequest};
use crate::directory::{ClusterInvitation, GroupPlacement};
use crate::error::{ClusterError, Result};
use crate::instrument::GatewayMetrics;
use crate::queue::QueueStats;
use crate::ring::ShardId;
use crate::session::{GroupSession, SessionDecision, SessionOp, SessionOutcome};
use crate::shard::{GlobalGroupId, GlobalMemberId};
use crate::worker::{ReplyHandle, ReplyTo};

/// A decision stream: workers deliver decisions coalesced (one `Vec` per
/// gateway per drained batch); the buffer unpacks them one at a time.
#[derive(Debug)]
struct Stream<T> {
    rx: Receiver<Vec<T>>,
    buf: VecDeque<T>,
}

impl<T> Stream<T> {
    fn new(rx: Receiver<Vec<T>>) -> Self {
        Stream {
            rx,
            buf: VecDeque::new(),
        }
    }

    fn next_blocking(&mut self) -> Option<T> {
        loop {
            if let Some(value) = self.buf.pop_front() {
                return Some(value);
            }
            match self.rx.recv() {
                Ok(batch) => self.buf.extend(batch),
                Err(_) => return None,
            }
        }
    }

    fn next_ready(&mut self) -> Option<T> {
        loop {
            if let Some(value) = self.buf.pop_front() {
                return Some(value);
            }
            match self.rx.try_recv() {
                Ok(batch) => self.buf.extend(batch),
                Err(_) => return None,
            }
        }
    }
}

/// A leased block of request ids, handed out locally without touching the
/// shared directory counter.
#[derive(Debug)]
struct SeqLease {
    next: u64,
    end: u64,
}

/// A concurrent ingest handle onto the sharded control plane.
///
/// Created from [`Cluster::gateway`](crate::Cluster::gateway) and cloned
/// freely; each clone receives the decisions of its own submissions only.
#[derive(Debug)]
pub struct Gateway {
    core: Arc<Core>,
    /// This gateway's slot in the shared reply registry; commands carry this
    /// small copyable handle instead of a cloned `Sender`.
    handle: ReplyHandle,
    /// Behind a (virtually always uncontended) mutex only so a `&Gateway`
    /// can be shared across scoped threads; the intended pattern is still
    /// one clone per thread.
    decisions: Mutex<Stream<Decision>>,
    sessions: Mutex<Stream<SessionDecision>>,
    /// The current request-id lease (empty until the first submission).
    lease: Mutex<SeqLease>,
    /// This gateway's submit-side instruments (`gateway.N.*`), pre-resolved
    /// once at registration.
    metrics: GatewayMetrics,
    /// Per-shard read-your-writes watermarks (indexed by shard id, grown on
    /// demand): the highest commit sequence among decisions this gateway has
    /// *received* per shard. Follower-served reads must have applied at
    /// least this position; see [`Gateway::session_view`].
    watermarks: Mutex<Vec<u64>>,
}

impl Clone for Gateway {
    /// A clone shares the directory and shard pipelines but gets fresh,
    /// empty decision streams (and its own registry slot and id lease).
    fn clone(&self) -> Self {
        Gateway::new(self.core.clone())
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // Free the registry slot; in-flight decisions addressed to it are
        // dropped by the generation check, never delivered to a successor.
        self.core.registry().unregister(self.handle);
    }
}

impl Gateway {
    pub(crate) fn new(core: Arc<Core>) -> Self {
        let (decisions_tx, decisions_rx) = channel();
        let (sessions_tx, sessions_rx) = channel();
        let handle = core.registry().register(decisions_tx, sessions_tx);
        let metrics = core.telemetry().gateway(handle.index());
        Gateway {
            core,
            handle,
            decisions: Mutex::new(Stream::new(decisions_rx)),
            sessions: Mutex::new(Stream::new(sessions_rx)),
            lease: Mutex::new(SeqLease { next: 0, end: 0 }),
            metrics,
            watermarks: Mutex::new(Vec::new()),
        }
    }

    /// Folds a released decision's durability position into this gateway's
    /// per-shard read-your-writes watermark. Decisions with `commit == 0`
    /// (routing errors, sheds) carry no durability information and leave the
    /// watermark untouched.
    fn observe_commit(&self, shard: Option<ShardId>, commit: u64) {
        if commit == 0 {
            return;
        }
        let Some(shard) = shard else { return };
        let mut marks = self.watermarks.lock().expect("watermark lock");
        let index = shard.0;
        if marks.len() <= index {
            marks.resize(index + 1, 0);
        }
        if marks[index] < commit {
            marks[index] = commit;
        }
    }

    /// This gateway's current read bound for a shard: the highest commit
    /// sequence it has observed there (0 before any acked write).
    fn read_bound(&self, shard: ShardId) -> u64 {
        let marks = self.watermarks.lock().expect("watermark lock");
        marks.get(shard.0).copied().unwrap_or(0)
    }

    /// Allocates a request id from this gateway's lease, refilling the lease
    /// from the shared counter only once per
    /// [`ClusterConfig::seq_lease`](crate::ClusterConfig::seq_lease) ids.
    /// Ids stay monotone per gateway, so decision ordering by id still
    /// equals submission order on each gateway.
    fn alloc_seq(&self) -> u64 {
        self.alloc_seq_run(1)
    }

    /// Allocates `n` contiguous request ids from this gateway's lease,
    /// returning the first. When the lease cannot cover the run, its
    /// remainder is discarded and a fresh block (covering at least the run)
    /// is leased — per-gateway monotonicity is the contract
    /// `collect_decisions`/`flush` ordering rests on, so a batch must never
    /// hand out newer ids while older lease ids are still unspent behind it.
    fn alloc_seq_run(&self, n: u64) -> u64 {
        let mut lease = self.lease.lock().expect("seq lease");
        if lease.end - lease.next < n {
            let block = n.max(self.core.config().seq_lease.max(1));
            let start = self.core.directory().alloc_seq_block(block);
            lease.next = start;
            lease.end = start + block;
        }
        let seq = lease.next;
        lease.next += n;
        seq
    }

    // ----- ingest -----------------------------------------------------------

    /// Routes a request to its owning shard's bounded worker queue and
    /// returns its cluster-unique request id. The decision streams back to
    /// this gateway's channel; if the shard shed the request under a full
    /// queue ([`OverloadPolicy::Shed`](crate::OverloadPolicy::Shed)), the
    /// streamed decision carries [`ClusterError::Overloaded`] and
    /// [`Gateway::resubmit`] under the same id retries exactly-once.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn submit(&self, request: GlobalRequest) -> Result<u64> {
        let seq = self.alloc_seq();
        self.core
            .submit_as(seq, request, ReplyTo::Gateway(self.handle))?;
        Ok(seq)
    }

    /// Routes a whole batch of requests with amortized costs — one
    /// request-id lease, one directory pass, one parking-lot guard, one
    /// queue reservation per owning shard — returning their ids in
    /// submission order.
    ///
    /// Unlike [`Gateway::submit`], per-request routing failures do not fail
    /// the batch: every returned id resolves to exactly one streamed
    /// decision (arbitration outcome, routing error, or
    /// [`ClusterError::Overloaded`] on a shed), so
    /// `collect_decisions(seqs.len())` always accounts exactly.
    pub fn submit_batch(&self, requests: &[GlobalRequest]) -> Vec<u64> {
        if requests.is_empty() {
            return Vec::new();
        }
        self.metrics.batch_size.record(requests.len() as u64);
        // Ids come through this gateway's lease (not a separate directory
        // block), so interleaved `submit` and `submit_batch` calls stay
        // monotone per gateway.
        let start = self.alloc_seq_run(requests.len() as u64);
        self.core
            .submit_batch_as(start, requests, &ReplyTo::Gateway(self.handle))
    }

    /// Retries a request under its original id (gateway retransmission). If
    /// the owning shard already applied the request and still holds its
    /// decision in the dedup window, the recorded decision is replayed
    /// (`Decision::replayed == true`) instead of double-applying the event.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn resubmit(&self, seq: u64, request: GlobalRequest) -> Result<()> {
        self.metrics.retries.incr();
        self.core
            .submit_as(seq, request, ReplyTo::Gateway(self.handle))
    }

    /// Blocks until the next decision for one of this gateway's submissions
    /// arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] when the shard pipelines are
    /// gone (the cluster was torn down).
    pub fn recv_decision(&self) -> Result<Decision> {
        let decision = self
            .decisions
            .lock()
            .expect("decision stream lock")
            .next_blocking()
            .ok_or(ClusterError::Disconnected)?;
        self.observe_commit(decision.shard, decision.commit);
        Ok(decision)
    }

    /// The next already-delivered decision, if any (never blocks).
    pub fn try_recv_decision(&self) -> Option<Decision> {
        let decision = self
            .decisions
            .lock()
            .expect("decision stream lock")
            .next_ready()?;
        self.observe_commit(decision.shard, decision.commit);
        Some(decision)
    }

    /// Collects exactly `n` decisions (blocking), sorted by request id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] when the shard pipelines are
    /// gone before `n` decisions arrived.
    pub fn collect_decisions(&self, n: usize) -> Result<Vec<Decision>> {
        let mut decisions = Vec::with_capacity(n);
        {
            let mut stream = self.decisions.lock().expect("decision stream lock");
            for _ in 0..n {
                decisions.push(stream.next_blocking().ok_or(ClusterError::Disconnected)?);
            }
        }
        for d in &decisions {
            self.observe_commit(d.shard, d.commit);
        }
        decisions.sort_by_key(|d| d.seq);
        Ok(decisions)
    }

    /// Submits and synchronously arbitrates one request, bypassing this
    /// gateway's decision stream.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors, including
    /// [`ClusterError::Overloaded`] when the owning shard shed the request.
    pub fn request(&self, request: GlobalRequest) -> Result<ArbitrationOutcome> {
        self.request_as(self.alloc_seq(), request)
            .map(|(outcome, _)| outcome)
    }

    /// Synchronous arbitration under a caller-provided id, folding the
    /// released decision's commit position into this gateway's read bound —
    /// the façade's retransmission path ([`Cluster::request_with_id`]).
    ///
    /// [`Cluster::request_with_id`]: crate::Cluster::request_with_id
    pub(crate) fn request_as(
        &self,
        seq: u64,
        request: GlobalRequest,
    ) -> Result<(ArbitrationOutcome, bool)> {
        let decision = self.core.request_raw(seq, request)?;
        self.observe_commit(decision.shard, decision.commit);
        decision.outcome.map(|o| ((*o).clone(), decision.replayed))
    }

    // ----- session operations -----------------------------------------------

    /// Routes a session operation (chat, whiteboard, annotation, media
    /// schedule) to the shard owning its group and returns its
    /// cluster-unique request id. The decision streams back to this
    /// gateway's session channel; sheds surface as
    /// [`ClusterError::Overloaded`] decisions exactly like floor requests.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the operation cannot be routed.
    pub fn submit_session(&self, op: SessionOp) -> Result<u64> {
        let seq = self.alloc_seq();
        self.core
            .submit_session_as(seq, op, ReplyTo::Gateway(self.handle))?;
        Ok(seq)
    }

    /// Routes a whole batch of session operations — the vectored twin of
    /// [`Gateway::submit_batch`], with the same exactly-one-decision-per-id
    /// contract on the session stream.
    pub fn submit_session_batch(&self, ops: Vec<SessionOp>) -> Vec<u64> {
        if ops.is_empty() {
            return Vec::new();
        }
        self.metrics.batch_size.record(ops.len() as u64);
        let start = self.alloc_seq_run(ops.len() as u64);
        self.core
            .submit_session_batch_as(start, ops, &ReplyTo::Gateway(self.handle))
    }

    /// Retries a session operation under its original id (gateway
    /// retransmission). An already-delivered operation is answered from the
    /// owning shard's session journal (`SessionDecision::replayed == true`)
    /// instead of delivering the content twice.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the operation cannot be routed.
    pub fn resubmit_session(&self, seq: u64, op: SessionOp) -> Result<()> {
        self.metrics.retries.incr();
        self.core
            .submit_session_as(seq, op, ReplyTo::Gateway(self.handle))
    }

    /// Blocks until the next session decision for one of this gateway's
    /// submissions arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] when the shard pipelines are
    /// gone (the cluster was torn down).
    pub fn recv_session_decision(&self) -> Result<SessionDecision> {
        let decision = self
            .sessions
            .lock()
            .expect("session stream lock")
            .next_blocking()
            .ok_or(ClusterError::Disconnected)?;
        self.observe_commit(decision.shard, decision.commit);
        Ok(decision)
    }

    /// The next already-delivered session decision, if any (never blocks).
    pub fn try_recv_session_decision(&self) -> Option<SessionDecision> {
        let decision = self
            .sessions
            .lock()
            .expect("session stream lock")
            .next_ready()?;
        self.observe_commit(decision.shard, decision.commit);
        Some(decision)
    }

    /// Submits and synchronously applies one session operation, bypassing
    /// this gateway's session stream.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors, including
    /// [`ClusterError::Overloaded`] when the owning shard shed the
    /// operation.
    pub fn session(&self, op: SessionOp) -> Result<SessionOutcome> {
        self.session_as(self.alloc_seq(), op)
            .map(|(outcome, _)| outcome)
    }

    /// Synchronous session application under a caller-provided id, folding
    /// the released decision's commit position into this gateway's read
    /// bound — the session twin of [`Gateway::request_as`].
    pub(crate) fn session_as(&self, seq: u64, op: SessionOp) -> Result<(SessionOutcome, bool)> {
        let decision = self.core.session_raw(seq, op)?;
        self.observe_commit(decision.shard, decision.commit);
        decision.outcome.map(|o| ((*o).clone(), decision.replayed))
    }

    // ----- reads ------------------------------------------------------------

    /// The recorded session state of a group.
    ///
    /// With replication enabled ([`ClusterConfig::replicas`] > 0) the read
    /// is served from one of the owning shard's followers whenever that
    /// follower has applied at least this gateway's read-your-writes bound —
    /// the highest [`Decision::commit`] position the gateway has observed on
    /// that shard — and is forwarded to the leader otherwise. Either way the
    /// view reflects every write this gateway has already seen acknowledged.
    ///
    /// [`ClusterConfig::replicas`]: crate::ClusterConfig::replicas
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn session_view(&self, group: GlobalGroupId) -> Result<GroupSession> {
        let shard = self.core.directory().placement(group)?.shard;
        self.core
            .session_view_bounded(group, self.read_bound(shard))
    }

    /// A diagnostic view of one shard, served from a caught-up follower when
    /// replication is enabled (falling back to the leader under this
    /// gateway's read-your-writes bound, like [`Gateway::session_view`]). A
    /// follower-served view reports the *follower's* state: `log_retained`
    /// is its applied position and leader-only storage fields (log base,
    /// snapshot, dedup occupancy) read as zero.
    pub fn shard_view(&self, shard: ShardId) -> crate::ShardView {
        self.core.shard_view_bounded(shard, self.read_bound(shard))
    }

    /// A member's position in a group's floor queue — `Some(0)` while
    /// holding the token, `Some(n)` when waiting `n`-th in line, `None` when
    /// neither. Served from a caught-up follower when replication is
    /// enabled, under this gateway's read-your-writes bound.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors, and floor errors when the group does not
    /// arbitrate a token.
    pub fn queue_position(
        &self,
        group: GlobalGroupId,
        member: GlobalMemberId,
    ) -> Result<Option<usize>> {
        let shard = self.core.directory().placement(group)?.shard;
        self.core
            .queue_position_bounded(group, member, self.read_bound(shard))
    }

    // ----- backpressure -----------------------------------------------------

    /// Occupancy statistics of one shard's bounded ingest queue; see
    /// [`Cluster::queue_stats`](crate::Cluster::queue_stats).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn queue_stats(&self, shard: ShardId) -> QueueStats {
        self.core.queue_stats(shard)
    }

    // ----- control plane ----------------------------------------------------

    /// Registers a member with the cluster directory.
    pub fn register_member(&self, template: Member) -> GlobalMemberId {
        self.core.directory().register_member(template)
    }

    /// Creates a top-level group, placed by consistent hashing.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the owning shard is failed.
    pub fn create_group(&self, name: impl Into<String>, mode: FcmMode) -> Result<GlobalGroupId> {
        self.core.create_group(name.into(), mode)
    }

    /// Adds a member to a group (instantiating it on the owning shard if
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn join_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.join_group(group, member)
    }

    /// Removes a member from a group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn leave_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.leave_group(group, member)
    }

    /// A member invites another into a new private sub-group; see
    /// [`Cluster::invite`](crate::Cluster::invite).
    ///
    /// # Errors
    ///
    /// Returns unknown-id, not-a-member and shard-down errors.
    pub fn invite(
        &self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        self.core.invite(parent, from, to, mode, target)
    }

    /// The invitee answers a cluster-level invitation.
    ///
    /// # Errors
    ///
    /// Returns invitation and shard-down errors.
    pub fn respond_invitation(
        &self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        self.core.respond_invitation(invitation, responder, accept)
    }

    /// The cluster-level invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: u64) -> Result<ClusterInvitation> {
        self.core.directory().invitation(id)
    }

    /// Where a group currently lives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn placement(&self, group: GlobalGroupId) -> Result<GroupPlacement> {
        self.core.directory().placement(group)
    }

    /// Checks the cluster invariants; see
    /// [`Cluster::check_invariants`](crate::Cluster::check_invariants).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        self.core.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use dmps_floor::Role;

    #[test]
    fn cloned_gateways_receive_only_their_own_decisions() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let a = cluster.gateway();
        let b = cluster.gateway();
        let ma = a.register_member(Member::new("a", Role::Chair));
        a.join_group(g, ma).unwrap();
        let mb = b.register_member(Member::new("b", Role::Participant));
        b.join_group(g, mb).unwrap();
        let seq_a = a.submit(GlobalRequest::speak(g, ma)).unwrap();
        let seq_b = b.submit(GlobalRequest::speak(g, mb)).unwrap();
        assert_ne!(seq_a, seq_b, "request ids are cluster-unique");
        let da = a.recv_decision().unwrap();
        let db = b.recv_decision().unwrap();
        assert_eq!(da.seq, seq_a);
        assert_eq!(db.seq, seq_b);
        assert!(a.try_recv_decision().is_none(), "b's decision not on a");
        assert!(b.try_recv_decision().is_none(), "a's decision not on b");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn resubmit_replays_instead_of_double_applying() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let gw = cluster.gateway();
        let m = gw.register_member(Member::new("m", Role::Chair));
        gw.join_group(g, m).unwrap();
        let seq = gw.submit(GlobalRequest::speak(g, m)).unwrap();
        let first = gw.recv_decision().unwrap();
        assert!(!first.replayed);
        assert!(first.outcome.as_ref().unwrap().is_granted());
        // The "decision was lost, client retries" path.
        gw.resubmit(seq, GlobalRequest::speak(g, m)).unwrap();
        let retry = gw.recv_decision().unwrap();
        assert!(retry.replayed, "retry answered from the dedup window");
        assert_eq!(retry.outcome, first.outcome);
        // Exactly one grant was applied.
        let shard = gw.placement(g).unwrap().shard;
        assert_eq!(cluster.shard_view(shard).stats.granted, 1);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn batched_submit_matches_single_submits() {
        let cluster = Cluster::new(ClusterConfig::with_shards(4));
        let gw = cluster.gateway();
        let mut requests = Vec::new();
        for i in 0..24 {
            let g = gw
                .create_group(format!("g{i}"), FcmMode::EqualControl)
                .unwrap();
            let m = gw.register_member(Member::new(format!("m{i}"), Role::Chair));
            gw.join_group(g, m).unwrap();
            requests.push(GlobalRequest::speak(g, m));
            requests.push(GlobalRequest::release_floor(g, m));
        }
        let seqs = gw.submit_batch(&requests);
        assert_eq!(seqs.len(), requests.len());
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "one lease: ids stay in submission order"
        );
        let decisions = gw.collect_decisions(seqs.len()).unwrap();
        assert_eq!(decisions.len(), seqs.len());
        for decision in &decisions {
            assert!(
                decision.outcome.as_ref().unwrap().is_granted(),
                "speak then release both grant in a singleton group"
            );
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_scalar_and_batched_submits_keep_ids_monotone() {
        // Batches draw ids through the gateway's lease, not a separate
        // directory block — otherwise a scalar submit after a batch could
        // hand out an older unspent lease id, and `collect_decisions`
        // (sorted by id) would no longer equal submission order.
        let cluster = Cluster::new(ClusterConfig::with_shards(2));
        let gw = cluster.gateway();
        let g = gw.create_group("lecture", FcmMode::EqualControl).unwrap();
        let m = gw.register_member(Member::new("m", Role::Chair));
        gw.join_group(g, m).unwrap();
        let speak = GlobalRequest::speak(g, m);
        let release = GlobalRequest::release_floor(g, m);
        let mut seqs = Vec::new();
        seqs.push(gw.submit(speak).unwrap());
        seqs.extend(gw.submit_batch(&[release, speak]));
        seqs.push(gw.submit(release).unwrap());
        // A batch larger than the remaining lease forces a refill mid-run.
        let big: Vec<GlobalRequest> = (0..150)
            .map(|i| if i % 2 == 0 { speak } else { release })
            .collect();
        seqs.extend(gw.submit_batch(&big));
        seqs.push(gw.submit(speak).unwrap());
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "per-gateway ids stay strictly increasing across interleaving"
        );
        let decisions = gw.collect_decisions(seqs.len()).unwrap();
        let order: Vec<u64> = decisions.iter().map(|d| d.seq).collect();
        assert_eq!(order, seqs, "sorted-by-id equals submission order");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn batched_submit_answers_unroutable_requests_on_the_stream() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let gw = cluster.gateway();
        let m = gw.register_member(Member::new("m", Role::Chair));
        gw.join_group(g, m).unwrap();
        let ghost = GlobalGroupId(999);
        let seqs = gw.submit_batch(&[GlobalRequest::speak(g, m), GlobalRequest::speak(ghost, m)]);
        let decisions = gw.collect_decisions(2).unwrap();
        assert_eq!(decisions[0].seq, seqs[0]);
        assert!(decisions[0].outcome.as_ref().unwrap().is_granted());
        assert!(matches!(
            decisions[1].outcome,
            Err(ClusterError::UnknownGroup(u)) if u == ghost
        ));
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn session_decisions_stream_to_the_submitting_gateway() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let a = cluster.gateway();
        let b = cluster.gateway();
        let ma = a.register_member(Member::new("a", Role::Chair));
        a.join_group(g, ma).unwrap();
        let mb = b.register_member(Member::new("b", Role::Participant));
        b.join_group(g, mb).unwrap();
        let sa = a.submit_session(SessionOp::chat(g, ma, "from a")).unwrap();
        let sb = b
            .submit_session(SessionOp::whiteboard(g, mb, "from b"))
            .unwrap();
        let da = a.recv_session_decision().unwrap();
        let db = b.recv_session_decision().unwrap();
        assert_eq!(da.seq, sa);
        assert_eq!(db.seq, sb);
        assert!(da.outcome.unwrap().is_delivered());
        assert!(a.try_recv_session_decision().is_none(), "b's not on a");
        assert!(b.try_recv_session_decision().is_none(), "a's not on b");
        let view = a.session_view(g).unwrap();
        assert_eq!(view.chat, vec![(ma, "from a".to_string())]);
        assert_eq!(view.whiteboard, vec![(mb, "from b".to_string())]);
        // Retransmission replays from the session journal instead of
        // delivering the line twice.
        a.resubmit_session(sa, SessionOp::chat(g, ma, "from a"))
            .unwrap();
        let retry = a.recv_session_decision().unwrap();
        assert!(retry.replayed);
        assert_eq!(a.session_view(g).unwrap().chat.len(), 1);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn session_batch_delivers_in_submission_order() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let gw = cluster.gateway();
        let m = gw.register_member(Member::new("m", Role::Chair));
        gw.join_group(g, m).unwrap();
        let ops: Vec<SessionOp> = (0..8)
            .map(|i| SessionOp::chat(g, m, format!("line {i}")))
            .collect();
        let seqs = gw.submit_session_batch(ops);
        assert_eq!(seqs.len(), 8);
        for &seq in &seqs {
            let decision = gw.recv_session_decision().unwrap();
            assert_eq!(decision.seq, seq, "session stream preserves order");
            assert!(decision.outcome.unwrap().is_delivered());
        }
        let chat = gw.session_view(g).unwrap().chat;
        assert_eq!(chat.len(), 8);
        assert!(chat
            .iter()
            .enumerate()
            .all(|(i, (_, line))| line == &format!("line {i}")));
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn gateway_keeps_pipelines_alive_after_cluster_drop() {
        let gw = {
            let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
            let g = cluster
                .create_group("lecture", FcmMode::FreeAccess)
                .unwrap();
            let gw = cluster.gateway();
            let m = gw.register_member(Member::new("m", Role::Chair));
            gw.join_group(g, m).unwrap();
            gw.submit(GlobalRequest::speak(g, m)).unwrap();
            gw
            // `cluster` (and its façade gateway) drop here.
        };
        let decision = gw.recv_decision().unwrap();
        assert!(decision.outcome.unwrap().is_granted());
        gw.check_invariants().unwrap();
    }

    #[test]
    fn dropped_gateways_slot_is_recycled_without_leaking_decisions() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let a = cluster.gateway();
        let m = a.register_member(Member::new("m", Role::Chair));
        a.join_group(g, m).unwrap();
        // Drain a's decision so dropping it cannot race an in-flight send,
        // then drop it and register a successor that reuses the slot.
        let seq = a.submit(GlobalRequest::speak(g, m)).unwrap();
        assert_eq!(a.recv_decision().unwrap().seq, seq);
        drop(a);
        let b = cluster.gateway();
        let seq_b = b.submit(GlobalRequest::release_floor(g, m)).unwrap();
        let decision = b.recv_decision().unwrap();
        assert_eq!(decision.seq, seq_b, "b sees exactly its own decision");
        assert!(b.try_recv_decision().is_none());
        cluster.check_invariants().unwrap();
    }
}
