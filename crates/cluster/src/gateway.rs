//! Gateways: cheaply-cloneable concurrent ingest handles.
//!
//! A [`Gateway`] is the multi-gateway face of the control plane: it shares
//! the cluster's [`Directory`](crate::Directory) and shard worker queues
//! through an `Arc`, but owns a private results channel that decisions for
//! *its* submissions stream back on. Cloning a gateway is two channel
//! allocations and an `Arc` bump — hand one clone to every front-end thread
//! and they all ingest concurrently:
//!
//! * [`Gateway::submit`] routes a request (read-mostly directory lookups,
//!   one MPSC send) and returns its cluster-unique request id.
//! * [`Gateway::recv_decision`] / [`Gateway::collect_decisions`] stream the
//!   decisions back, each tagged with the request id and whether it was
//!   replayed from a shard's dedup window.
//! * [`Gateway::resubmit`] retries a request under its original id — the
//!   retransmission path after a shard crash. The owning shard's dedup
//!   window guarantees an already-applied event is answered from the
//!   decision journal instead of double-applying.
//!
//! Session traffic — the non-floor half of a DMPS presentation session —
//! rides the same pipelines: [`Gateway::submit_session`] routes a chat line,
//! whiteboard stroke, annotation or synchronized-media schedule to the shard
//! owning the group, where it is floor-gated, durably logged, and answered
//! with a [`SessionDecision`] on this gateway's private session stream
//! ([`Gateway::recv_session_decision`]). [`Gateway::resubmit_session`] is
//! the exactly-once retry path, mirroring [`Gateway::resubmit`].
//!
//! Control-plane operations (groups, membership, invitations) are exposed
//! with `&self` receivers as well, so administrative traffic can run from
//! any gateway without a cluster-wide lock.
//!
//! During a live group handoff
//! ([`Cluster::rebalance_active`](crate::Cluster::rebalance_active)) the
//! routing layer *parks* streamed submissions for the frozen group and
//! re-drives them — toward the new owner after the commit, back to the
//! source after an abort — so `submit`/`submit_session` callers never
//! observe the migration beyond added latency; the synchronous
//! [`Gateway::request`]/[`Gateway::session`] paths and the membership
//! mutations ([`Gateway::join_group`]/[`Gateway::leave_group`]) instead
//! fail fast with [`ClusterError::GroupFrozen`] and are expected to retry.
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest, SessionOp};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
//! let g = cluster.create_group("lecture", FcmMode::FreeAccess).unwrap();
//! let gateway = cluster.gateway();
//! let m = gateway.register_member(Member::new("teacher", Role::Chair));
//! gateway.join_group(g, m).unwrap();
//! // Floor and session traffic stream decisions back to this gateway.
//! let seq = gateway.submit(GlobalRequest::speak(g, m)).unwrap();
//! assert_eq!(gateway.recv_decision().unwrap().seq, seq);
//! let seq = gateway.submit_session(SessionOp::chat(g, m, "hello")).unwrap();
//! let decision = gateway.recv_session_decision().unwrap();
//! assert_eq!(decision.seq, seq);
//! assert!(decision.outcome.unwrap().is_delivered());
//! ```

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use dmps_floor::{ArbitrationOutcome, FcmMode, InvitationStatus, Member};

use crate::cluster::{Core, Decision, GlobalRequest};
use crate::directory::{ClusterInvitation, GroupPlacement};
use crate::error::{ClusterError, Result};
use crate::ring::ShardId;
use crate::session::{GroupSession, SessionDecision, SessionOp, SessionOutcome};
use crate::shard::{GlobalGroupId, GlobalMemberId};

/// A concurrent ingest handle onto the sharded control plane.
///
/// Created from [`Cluster::gateway`](crate::Cluster::gateway) and cloned
/// freely; each clone receives the decisions of its own submissions only.
#[derive(Debug)]
pub struct Gateway {
    core: Arc<Core>,
    decisions_tx: Sender<Decision>,
    /// Behind a (virtually always uncontended) mutex only so a `&Gateway`
    /// can be shared across scoped threads; the intended pattern is still
    /// one clone per thread.
    decisions_rx: Mutex<Receiver<Decision>>,
    sessions_tx: Sender<SessionDecision>,
    sessions_rx: Mutex<Receiver<SessionDecision>>,
}

impl Clone for Gateway {
    /// A clone shares the directory and shard pipelines but gets fresh,
    /// empty decision streams.
    fn clone(&self) -> Self {
        Gateway::new(self.core.clone())
    }
}

impl Gateway {
    pub(crate) fn new(core: Arc<Core>) -> Self {
        let (decisions_tx, decisions_rx) = channel();
        let (sessions_tx, sessions_rx) = channel();
        Gateway {
            core,
            decisions_tx,
            decisions_rx: Mutex::new(decisions_rx),
            sessions_tx,
            sessions_rx: Mutex::new(sessions_rx),
        }
    }

    // ----- ingest -----------------------------------------------------------

    /// Routes a request to its owning shard's worker queue and returns its
    /// cluster-unique request id. The decision streams back to this
    /// gateway's channel.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn submit(&self, request: GlobalRequest) -> Result<u64> {
        let seq = self.core.directory().alloc_seq();
        self.core
            .submit_as(seq, request, self.decisions_tx.clone())?;
        Ok(seq)
    }

    /// Retries a request under its original id (gateway retransmission). If
    /// the owning shard already applied the request and still holds its
    /// decision in the dedup window, the recorded decision is replayed
    /// (`Decision::replayed == true`) instead of double-applying the event.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn resubmit(&self, seq: u64, request: GlobalRequest) -> Result<()> {
        self.core.submit_as(seq, request, self.decisions_tx.clone())
    }

    /// Blocks until the next decision for one of this gateway's submissions
    /// arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] when the shard pipelines are
    /// gone (the cluster was torn down).
    pub fn recv_decision(&self) -> Result<Decision> {
        self.decisions_rx
            .lock()
            .expect("decision stream lock")
            .recv()
            .map_err(|_| ClusterError::Disconnected)
    }

    /// The next already-delivered decision, if any (never blocks).
    pub fn try_recv_decision(&self) -> Option<Decision> {
        self.decisions_rx
            .lock()
            .expect("decision stream lock")
            .try_recv()
            .ok()
    }

    /// Collects exactly `n` decisions (blocking), sorted by request id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] when the shard pipelines are
    /// gone before `n` decisions arrived.
    pub fn collect_decisions(&self, n: usize) -> Result<Vec<Decision>> {
        let mut decisions = Vec::with_capacity(n);
        for _ in 0..n {
            decisions.push(self.recv_decision()?);
        }
        decisions.sort_by_key(|d| d.seq);
        Ok(decisions)
    }

    /// Submits and synchronously arbitrates one request, bypassing this
    /// gateway's decision stream.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn request(&self, request: GlobalRequest) -> Result<ArbitrationOutcome> {
        self.core.request(request)
    }

    // ----- session operations -----------------------------------------------

    /// Routes a session operation (chat, whiteboard, annotation, media
    /// schedule) to the shard owning its group and returns its
    /// cluster-unique request id. The decision streams back to this
    /// gateway's session channel.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the operation cannot be routed.
    pub fn submit_session(&self, op: SessionOp) -> Result<u64> {
        let seq = self.core.directory().alloc_seq();
        self.core
            .submit_session_as(seq, op, self.sessions_tx.clone())?;
        Ok(seq)
    }

    /// Retries a session operation under its original id (gateway
    /// retransmission). An already-delivered operation is answered from the
    /// owning shard's session journal (`SessionDecision::replayed == true`)
    /// instead of delivering the content twice.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the operation cannot be routed.
    pub fn resubmit_session(&self, seq: u64, op: SessionOp) -> Result<()> {
        self.core
            .submit_session_as(seq, op, self.sessions_tx.clone())
    }

    /// Blocks until the next session decision for one of this gateway's
    /// submissions arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] when the shard pipelines are
    /// gone (the cluster was torn down).
    pub fn recv_session_decision(&self) -> Result<SessionDecision> {
        self.sessions_rx
            .lock()
            .expect("session stream lock")
            .recv()
            .map_err(|_| ClusterError::Disconnected)
    }

    /// The next already-delivered session decision, if any (never blocks).
    pub fn try_recv_session_decision(&self) -> Option<SessionDecision> {
        self.sessions_rx
            .lock()
            .expect("session stream lock")
            .try_recv()
            .ok()
    }

    /// Submits and synchronously applies one session operation, bypassing
    /// this gateway's session stream.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn session(&self, op: SessionOp) -> Result<SessionOutcome> {
        self.core.session(op)
    }

    /// The recorded session state of a group, read from its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn session_view(&self, group: GlobalGroupId) -> Result<GroupSession> {
        self.core.session_view(group)
    }

    // ----- control plane ----------------------------------------------------

    /// Registers a member with the cluster directory.
    pub fn register_member(&self, template: Member) -> GlobalMemberId {
        self.core.directory().register_member(template)
    }

    /// Creates a top-level group, placed by consistent hashing.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the owning shard is failed.
    pub fn create_group(&self, name: impl Into<String>, mode: FcmMode) -> Result<GlobalGroupId> {
        self.core.create_group(name.into(), mode)
    }

    /// Adds a member to a group (instantiating it on the owning shard if
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn join_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.join_group(group, member)
    }

    /// Removes a member from a group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn leave_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.leave_group(group, member)
    }

    /// A member invites another into a new private sub-group; see
    /// [`Cluster::invite`](crate::Cluster::invite).
    ///
    /// # Errors
    ///
    /// Returns unknown-id, not-a-member and shard-down errors.
    pub fn invite(
        &self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        self.core.invite(parent, from, to, mode, target)
    }

    /// The invitee answers a cluster-level invitation.
    ///
    /// # Errors
    ///
    /// Returns invitation and shard-down errors.
    pub fn respond_invitation(
        &self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        self.core.respond_invitation(invitation, responder, accept)
    }

    /// The cluster-level invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: u64) -> Result<ClusterInvitation> {
        self.core.directory().invitation(id)
    }

    /// Where a group currently lives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn placement(&self, group: GlobalGroupId) -> Result<GroupPlacement> {
        self.core.directory().placement(group)
    }

    /// Checks the cluster invariants; see
    /// [`Cluster::check_invariants`](crate::Cluster::check_invariants).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        self.core.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use dmps_floor::Role;

    #[test]
    fn cloned_gateways_receive_only_their_own_decisions() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let a = cluster.gateway();
        let b = cluster.gateway();
        let ma = a.register_member(Member::new("a", Role::Chair));
        a.join_group(g, ma).unwrap();
        let mb = b.register_member(Member::new("b", Role::Participant));
        b.join_group(g, mb).unwrap();
        let seq_a = a.submit(GlobalRequest::speak(g, ma)).unwrap();
        let seq_b = b.submit(GlobalRequest::speak(g, mb)).unwrap();
        assert_ne!(seq_a, seq_b, "request ids are cluster-unique");
        let da = a.recv_decision().unwrap();
        let db = b.recv_decision().unwrap();
        assert_eq!(da.seq, seq_a);
        assert_eq!(db.seq, seq_b);
        assert!(a.try_recv_decision().is_none(), "b's decision not on a");
        assert!(b.try_recv_decision().is_none(), "a's decision not on b");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn resubmit_replays_instead_of_double_applying() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let gw = cluster.gateway();
        let m = gw.register_member(Member::new("m", Role::Chair));
        gw.join_group(g, m).unwrap();
        let seq = gw.submit(GlobalRequest::speak(g, m)).unwrap();
        let first = gw.recv_decision().unwrap();
        assert!(!first.replayed);
        assert!(first.outcome.as_ref().unwrap().is_granted());
        // The "decision was lost, client retries" path.
        gw.resubmit(seq, GlobalRequest::speak(g, m)).unwrap();
        let retry = gw.recv_decision().unwrap();
        assert!(retry.replayed, "retry answered from the dedup window");
        assert_eq!(retry.outcome, first.outcome);
        // Exactly one grant was applied.
        let shard = gw.placement(g).unwrap().shard;
        assert_eq!(cluster.shard_view(shard).stats.granted, 1);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn session_decisions_stream_to_the_submitting_gateway() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::FreeAccess)
            .unwrap();
        let a = cluster.gateway();
        let b = cluster.gateway();
        let ma = a.register_member(Member::new("a", Role::Chair));
        a.join_group(g, ma).unwrap();
        let mb = b.register_member(Member::new("b", Role::Participant));
        b.join_group(g, mb).unwrap();
        let sa = a.submit_session(SessionOp::chat(g, ma, "from a")).unwrap();
        let sb = b
            .submit_session(SessionOp::whiteboard(g, mb, "from b"))
            .unwrap();
        let da = a.recv_session_decision().unwrap();
        let db = b.recv_session_decision().unwrap();
        assert_eq!(da.seq, sa);
        assert_eq!(db.seq, sb);
        assert!(da.outcome.unwrap().is_delivered());
        assert!(a.try_recv_session_decision().is_none(), "b's not on a");
        assert!(b.try_recv_session_decision().is_none(), "a's not on b");
        let view = a.session_view(g).unwrap();
        assert_eq!(view.chat, vec![(ma, "from a".to_string())]);
        assert_eq!(view.whiteboard, vec![(mb, "from b".to_string())]);
        // Retransmission replays from the session journal instead of
        // delivering the line twice.
        a.resubmit_session(sa, SessionOp::chat(g, ma, "from a"))
            .unwrap();
        let retry = a.recv_session_decision().unwrap();
        assert!(retry.replayed);
        assert_eq!(a.session_view(g).unwrap().chat.len(), 1);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn gateway_keeps_pipelines_alive_after_cluster_drop() {
        let gw = {
            let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
            let g = cluster
                .create_group("lecture", FcmMode::FreeAccess)
                .unwrap();
            let gw = cluster.gateway();
            let m = gw.register_member(Member::new("m", Role::Chair));
            gw.join_group(g, m).unwrap();
            gw.submit(GlobalRequest::speak(g, m)).unwrap();
            gw
            // `cluster` (and its façade gateway) drop here.
        };
        let decision = gw.recv_decision().unwrap();
        assert!(decision.outcome.unwrap().is_granted());
        gw.check_invariants().unwrap();
    }
}
