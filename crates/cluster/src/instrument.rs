//! Telemetry wiring: the cluster-wide metric namespace, per-layer metric
//! bundles, and span plumbing.
//!
//! All instruments live in one shared [`MetricsRegistry`] under a stable
//! naming scheme:
//!
//! * `cluster.*` — routing-layer aggregates (`cluster.submit_latency_ns`,
//!   `cluster.sheds`, `cluster.parked_ops`, `cluster.redriven_ops`).
//! * `cluster.shard.N.*` — per-shard pipeline instruments (`queue_depth` and
//!   `queue_peak` time-series, `drain_batch` sizes, `commit_latency_ns`,
//!   `append_latency_ns`, `snapshot_pause_ns`, `with_stall_ns`,
//!   `dedup_hits`, `session_dedup_hits`).
//! * `cluster.shard.N.snapshot.*` — checkpoint instruments (`pause_us`
//!   ingest-stall histogram covering full and differential checkpoints,
//!   `delta_bytes` shipped by differential checkpoints, `chain_len` observed
//!   at each checkpoint).
//! * `cluster.shard.N.replica.*` — replication instruments (`acks` received
//!   from followers, `retransmits` of lost append segments, `resyncs` of
//!   compaction-lagged followers, the `catch_up_lag` replayed at promotion,
//!   and the `follower_reads` / `forwarded_reads` split of the scale-out
//!   read path).
//! * `cluster.shard.N.fault.*` — fault-plane instruments (`partitions`
//!   engaged on the replica network, `fenced_appends` rejected by epoch
//!   fencing, `checksum_failures` detected on durable artifacts, and
//!   `repairs` performed from the quorum).
//! * `gateway.G.*` — per-gateway instruments (`submit_batch_size`,
//!   `retries`, and per-op-kind `submit_latency_ns.KIND` histograms fed by
//!   sampled spans).
//!
//! The bundles below pre-resolve every hot-path instrument once at
//! construction so steady-state recording never touches the registry's name
//! map; only sampled-span completion (1-in-N) looks names up lazily.

use std::sync::Arc;

use dmps_telemetry::{
    Counter, Histogram, MetricsRegistry, Sampler, SpanLog, Stage, TimeSeries, TraceSpan,
};

/// Completed sampled spans retained for [`crate::Cluster::recent_spans`].
const SPAN_LOG_CAPACITY: usize = 256;
/// Queue-depth samples retained per shard.
const QUEUE_DEPTH_SAMPLES: usize = 512;
/// Every Nth drain contributes a queue-depth sample.
const QUEUE_DEPTH_CADENCE: u64 = 8;

/// Cluster-wide telemetry: one registry, one bounded span log and one 1-in-N
/// span sampler shared by the routing layer, every gateway, and every shard
/// worker.
#[derive(Debug)]
pub(crate) struct ClusterTelemetry {
    /// All named instruments.
    pub(crate) registry: Arc<MetricsRegistry>,
    /// Completed sampled spans, newest-retained.
    pub(crate) spans: Arc<SpanLog>,
    /// The 1-in-N span sampling decision source.
    pub(crate) sampler: Sampler,
    /// Requests answered `Overloaded` by a shedding queue.
    pub(crate) sheds: Arc<Counter>,
    /// Operations parked against frozen (mid-handoff) groups.
    pub(crate) parked: Arc<Counter>,
    /// Parked operations re-driven after an unfreeze.
    pub(crate) redriven: Arc<Counter>,
}

impl ClusterTelemetry {
    /// Builds the shared telemetry state. `trace_sampling` is the span rate
    /// (one span per `trace_sampling` submissions, 0 = tracing off).
    pub(crate) fn new(trace_sampling: u64) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let sheds = registry.counter("cluster.sheds");
        let parked = registry.counter("cluster.parked_ops");
        let redriven = registry.counter("cluster.redriven_ops");
        ClusterTelemetry {
            registry,
            spans: Arc::new(SpanLog::new(SPAN_LOG_CAPACITY)),
            sampler: Sampler::new(trace_sampling),
            sheds,
            parked,
            redriven,
        }
    }

    /// Starts a span if this submission is sampled. The unsampled path costs
    /// one branch plus (when tracing is on at all) one relaxed `fetch_add`.
    pub(crate) fn begin_span(&self, seq: u64, kind: &'static str) -> Option<Box<TraceSpan>> {
        self.sampler
            .hit()
            .then(|| Box::new(TraceSpan::begin(seq, kind)))
    }

    /// Reserves the sampling decisions for a whole batch with one atomic
    /// operation; feed the result to [`ClusterTelemetry::begin_span_in_run`]
    /// per item.
    pub(crate) fn reserve_span_run(&self, n: u64) -> Option<u64> {
        self.sampler.reserve(n)
    }

    /// Batch twin of [`ClusterTelemetry::begin_span`]: decides from a
    /// pre-reserved run, so the per-item cost is arithmetic only.
    pub(crate) fn begin_span_in_run(
        &self,
        run: Option<u64>,
        offset: u64,
        seq: u64,
        kind: &'static str,
    ) -> Option<Box<TraceSpan>> {
        run.filter(|&start| self.sampler.reserved_hit(start, offset))
            .map(|_| Box::new(TraceSpan::begin(seq, kind)))
    }

    /// The pipeline instruments shard `index`'s worker thread records into.
    pub(crate) fn worker(&self, index: usize) -> WorkerTelemetry {
        WorkerTelemetry {
            registry: Arc::clone(&self.registry),
            spans: Arc::clone(&self.spans),
            submit_latency: self.registry.histogram("cluster.submit_latency_ns"),
            session_latency: self.registry.histogram("cluster.session_latency_ns"),
            queue_depth: self.registry.time_series(
                &format!("cluster.shard.{index}.queue_depth"),
                QUEUE_DEPTH_SAMPLES,
                QUEUE_DEPTH_CADENCE,
            ),
            queue_peak: self.registry.time_series(
                &format!("cluster.shard.{index}.queue_peak"),
                QUEUE_DEPTH_SAMPLES,
                QUEUE_DEPTH_CADENCE,
            ),
            drain_batch: self
                .registry
                .histogram(&format!("cluster.shard.{index}.drain_batch")),
            commit_latency: self
                .registry
                .histogram(&format!("cluster.shard.{index}.commit_latency_ns")),
            with_stall: self
                .registry
                .histogram(&format!("cluster.shard.{index}.with_stall_ns")),
        }
    }

    /// The storage-side instruments installed into shard `index` itself.
    pub(crate) fn shard(&self, index: usize) -> ShardMetrics {
        ShardMetrics {
            append_latency: self
                .registry
                .histogram(&format!("cluster.shard.{index}.append_latency_ns")),
            snapshot_pause: self
                .registry
                .histogram(&format!("cluster.shard.{index}.snapshot_pause_ns")),
            snapshot_pause_us: self
                .registry
                .histogram(&format!("cluster.shard.{index}.snapshot.pause_us")),
            delta_bytes: self
                .registry
                .counter(&format!("cluster.shard.{index}.snapshot.delta_bytes")),
            chain_len: self
                .registry
                .histogram(&format!("cluster.shard.{index}.snapshot.chain_len")),
            dedup_hits: self
                .registry
                .counter(&format!("cluster.shard.{index}.dedup_hits")),
            session_dedup_hits: self
                .registry
                .counter(&format!("cluster.shard.{index}.session_dedup_hits")),
            checksum_failures: self
                .registry
                .counter(&format!("cluster.shard.{index}.fault.checksum_failures")),
        }
    }

    /// The replication instruments of shard `index`'s replica set.
    pub(crate) fn replica(&self, index: usize) -> ReplicaMetrics {
        ReplicaMetrics {
            acks: self
                .registry
                .counter(&format!("cluster.shard.{index}.replica.acks")),
            retransmits: self
                .registry
                .counter(&format!("cluster.shard.{index}.replica.retransmits")),
            resyncs: self
                .registry
                .counter(&format!("cluster.shard.{index}.replica.resyncs")),
            catch_up_lag: self
                .registry
                .histogram(&format!("cluster.shard.{index}.replica.catch_up_lag")),
            follower_reads: self
                .registry
                .counter(&format!("cluster.shard.{index}.replica.follower_reads")),
            forwarded_reads: self
                .registry
                .counter(&format!("cluster.shard.{index}.replica.forwarded_reads")),
            partitions: self
                .registry
                .counter(&format!("cluster.shard.{index}.fault.partitions")),
            fenced_appends: self
                .registry
                .counter(&format!("cluster.shard.{index}.fault.fenced_appends")),
            checksum_failures: self
                .registry
                .counter(&format!("cluster.shard.{index}.fault.checksum_failures")),
            repairs: self
                .registry
                .counter(&format!("cluster.shard.{index}.fault.repairs")),
        }
    }

    /// The instruments gateway `index` records into on its submit side.
    pub(crate) fn gateway(&self, index: u32) -> GatewayMetrics {
        GatewayMetrics {
            batch_size: self
                .registry
                .histogram(&format!("gateway.{index}.submit_batch_size")),
            retries: self.registry.counter(&format!("gateway.{index}.retries")),
        }
    }
}

/// Pre-resolved instruments for one shard worker's drain loop, plus the
/// shared registry/span-log ends of the span pipeline.
#[derive(Debug)]
pub(crate) struct WorkerTelemetry {
    registry: Arc<MetricsRegistry>,
    spans: Arc<SpanLog>,
    submit_latency: Arc<Histogram>,
    session_latency: Arc<Histogram>,
    /// Backlog remaining in the ingest queue, sampled at each drain.
    pub(crate) queue_depth: Arc<TimeSeries>,
    /// High-water mark of the ingest queue's occupancy window, sampled at
    /// each drain alongside `queue_depth` — the operator-facing series
    /// behind [`crate::QueueStats::peak_queued`].
    pub(crate) queue_peak: Arc<TimeSeries>,
    /// Commands taken per wakeup (the effective batch size).
    pub(crate) drain_batch: Arc<Histogram>,
    /// Group-commit duration per non-empty batch.
    pub(crate) commit_latency: Arc<Histogram>,
    /// Duration of each `With` control barrier closure.
    pub(crate) with_stall: Arc<Histogram>,
}

impl WorkerTelemetry {
    /// Completes a sampled span: stamps [`Stage::Replied`], feeds the
    /// submit→reply latency into the cluster-wide and per-gateway-per-kind
    /// histograms, and retains the span in the log. Runs 1-in-N, so the lazy
    /// registry lookup is off the hot path.
    pub(crate) fn finish_span(&self, mut span: TraceSpan, session: bool) {
        span.stamp(Stage::Replied);
        if let Some(total) = span.total_ns() {
            let aggregate = if session {
                &self.session_latency
            } else {
                &self.submit_latency
            };
            aggregate.record(total);
            if let Some(gateway) = span.gateway() {
                self.registry
                    .histogram(&format!(
                        "gateway.{gateway}.submit_latency_ns.{}",
                        span.kind()
                    ))
                    .record(total);
            }
        }
        self.spans.record(span);
    }
}

/// Storage-side instruments owned by a [`crate::Shard`]; absent on shards
/// built outside a cluster (unit tests, doc examples).
#[derive(Debug, Clone)]
pub(crate) struct ShardMetrics {
    /// `EventLog::append_batch` duration per group commit.
    pub(crate) append_latency: Arc<Histogram>,
    /// Full snapshot-capture pause duration.
    pub(crate) snapshot_pause: Arc<Histogram>,
    /// Checkpoint pause duration in microseconds — both full snapshots and
    /// differential checkpoints, so its max/p99 is the ingest stall the
    /// checkpoint subsystem as a whole inflicts.
    pub(crate) snapshot_pause_us: Arc<Histogram>,
    /// Total bytes shipped in differential checkpoints since start.
    pub(crate) delta_bytes: Arc<Counter>,
    /// Chain length observed at each checkpoint (0 = a fresh full base).
    pub(crate) chain_len: Arc<Histogram>,
    /// Floor requests answered from the dedup window (replays).
    pub(crate) dedup_hits: Arc<Counter>,
    /// Session operations answered from the dedup window (replays).
    pub(crate) session_dedup_hits: Arc<Counter>,
    /// Durable artifacts (snapshot base, deltas, sealed segments) that
    /// failed checksum verification. Shares its name — and therefore its
    /// underlying counter — with the replica set's fault bundle, so leader-
    /// side and follower-side detections aggregate per shard.
    pub(crate) checksum_failures: Arc<Counter>,
}

/// Replication instruments of one shard's replica set, recorded by the
/// owning worker thread (quorum pipeline) and by the routing layer (the
/// follower-read split).
#[derive(Debug, Clone)]
pub(crate) struct ReplicaMetrics {
    /// Follower acknowledgements received by the leader.
    pub(crate) acks: Arc<Counter>,
    /// Append segments retransmitted after loss on a replica link.
    pub(crate) retransmits: Arc<Counter>,
    /// Followers re-seeded from a snapshot because the leader compacted past
    /// their acked position.
    pub(crate) resyncs: Arc<Counter>,
    /// Log-tail events replayed when a follower was promoted at failover
    /// (the tail-catch-up cost, in events).
    pub(crate) catch_up_lag: Arc<Histogram>,
    /// Reads served directly from a follower (the read-your-writes bound
    /// held).
    pub(crate) follower_reads: Arc<Counter>,
    /// Reads forwarded to the leader because the chosen follower had not
    /// applied up to the caller's bound.
    pub(crate) forwarded_reads: Arc<Counter>,
    /// Partitions engaged on the replica network (leader isolations).
    pub(crate) partitions: Arc<Counter>,
    /// Appends and resyncs rejected by a follower because they carried a
    /// stale leader epoch (the fencing that prevents split-brain).
    pub(crate) fenced_appends: Arc<Counter>,
    /// Checksum mismatches detected on replicated segments or durable
    /// artifacts (same counter as the shard-side detections).
    pub(crate) checksum_failures: Arc<Counter>,
    /// Repairs performed from the quorum: follower re-ships after
    /// quarantine and leader state rebuilds from the best follower.
    pub(crate) repairs: Arc<Counter>,
}

/// Submit-side instruments owned by one [`crate::Gateway`].
#[derive(Debug)]
pub(crate) struct GatewayMetrics {
    /// Sizes handed to `submit_batch`/`submit_session_batch`.
    pub(crate) batch_size: Arc<Histogram>,
    /// Decisions re-requested through `resubmit`/`resubmit_session`.
    pub(crate) retries: Arc<Counter>,
}
