//! The shared, read-mostly cluster directory.
//!
//! The [`Directory`] holds everything the old single-threaded `Cluster`
//! router kept behind one `&mut self`: group placements, member records, the
//! reverse (shard, local id) → global id map, invitations, the consistent-hash
//! ring and the id counters. It is designed so the hot ingest path — routing a
//! floor request to its owning shard — takes `&self` and contends only on a
//! striped read lock:
//!
//! * Placement and membership maps are split into `STRIPES` stripes, each
//!   behind its own [`RwLock`]; a key's stripe is picked by the same
//!   splitmix64 hash the ring uses, so concurrent gateways routing different
//!   groups almost never touch the same lock, and routing itself only ever
//!   takes *read* locks.
//! * Id allocation is a handful of atomics, so `register_member`,
//!   `create_group` and request-id allocation never serialize behind a map
//!   lock.
//! * Invitations and the ring are whole-structure `RwLock`s: both are
//!   read-mostly and far off the ingest hot path.
//!
//! Writer discipline: the only lock ever held across a shard-worker
//! round-trip is the *member* stripe of the member being instantiated (see
//! `Core::ensure_on_shard`), which is what makes lazy member instantiation
//! race-free; shard workers never take directory locks, so no lock cycle can
//! form.
//!
//! The directory is populated through the cluster's control plane and read
//! through its lookup API:
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(4));
//! let g = cluster.create_group("lecture", FcmMode::FreeAccess).unwrap();
//! let m = cluster.register_member(Member::new("t", Role::Chair));
//! cluster.join_group(g, m).unwrap();
//! // Placement: which shard owns the group, and its dense local id there.
//! let placement = cluster.placement(g).unwrap();
//! // Member translation: global id → the shard's dense id and back.
//! let local = cluster.local_member(m, placement.shard).unwrap();
//! assert_eq!(cluster.global_member(placement.shard, local), Some(m));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use dmps_floor::{InvitationStatus, Member, MemberId};

use crate::error::{ClusterError, Result};
use crate::ring::{mix64, HashRing, ShardId};
use crate::shard::{GlobalGroupId, GlobalMemberId};

/// Number of lock stripes for the placement/membership maps. A small power of
/// two well above any realistic gateway count keeps write collisions rare
/// without bloating the struct.
pub(crate) const STRIPES: usize = 16;

/// Where a group currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPlacement {
    /// The owning shard.
    pub shard: ShardId,
    /// The group's dense id inside that shard's arbiter.
    pub local: dmps_floor::GroupId,
    /// The parent group for sub-groups spawned by invitation (may live on a
    /// different shard — that is the point of cross-shard invitations).
    pub parent: Option<GlobalGroupId>,
}

/// A member's directory record: its template plus its dense id on every shard
/// it has been instantiated on.
#[derive(Debug, Clone)]
pub(crate) struct MemberRecord {
    pub(crate) template: Member,
    pub(crate) locals: BTreeMap<ShardId, MemberId>,
}

/// A cluster-level invitation (parent and sub-group may be on different
/// shards).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInvitation {
    /// The inviting member.
    pub from: GlobalMemberId,
    /// The invited member.
    pub to: GlobalMemberId,
    /// The sub-group spawned for the invitation.
    pub subgroup: GlobalGroupId,
    /// Current status.
    pub status: InvitationStatus,
}

fn stripe_of(key: u64) -> usize {
    (mix64(key) % STRIPES as u64) as usize
}

/// The sharded, read-mostly directory of the cluster control plane.
#[derive(Debug)]
pub struct Directory {
    ring: RwLock<HashRing>,
    groups: Vec<RwLock<BTreeMap<GlobalGroupId, GroupPlacement>>>,
    members: Vec<RwLock<BTreeMap<GlobalMemberId, MemberRecord>>>,
    /// Reverse directory: which global member a shard-local id belongs to.
    locals: Vec<RwLock<BTreeMap<(ShardId, MemberId), GlobalMemberId>>>,
    invitations: RwLock<Vec<ClusterInvitation>>,
    next_group: AtomicU64,
    next_member: AtomicU64,
    next_seq: AtomicU64,
    /// Monotone ticket behind the follower-read round-robin: each bounded
    /// read takes one to spread load over a shard's replica fleet.
    next_read: AtomicU64,
}

impl Directory {
    /// A fresh directory over the given ring.
    pub(crate) fn new(ring: HashRing) -> Self {
        Directory {
            ring: RwLock::new(ring),
            groups: (0..STRIPES).map(|_| RwLock::new(BTreeMap::new())).collect(),
            members: (0..STRIPES).map(|_| RwLock::new(BTreeMap::new())).collect(),
            locals: (0..STRIPES).map(|_| RwLock::new(BTreeMap::new())).collect(),
            invitations: RwLock::new(Vec::new()),
            next_group: AtomicU64::new(0),
            next_member: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            next_read: AtomicU64::new(0),
        }
    }

    // ----- id allocation ----------------------------------------------------

    pub(crate) fn alloc_group(&self) -> u64 {
        self.next_group.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn alloc_member(&self) -> u64 {
        self.next_member.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a cluster-unique request id (the idempotency key the shard
    /// dedup window is keyed by).
    pub(crate) fn alloc_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Leases a contiguous block of `n` cluster-unique request ids with one
    /// atomic operation, returning the first id of the block.
    ///
    /// This is what keeps id allocation off the ingest hot path: each
    /// gateway leases a block and hands out ids locally
    /// ([`ClusterConfig::seq_lease`](crate::ClusterConfig::seq_lease)), and
    /// a batched submission leases exactly one block for the whole batch —
    /// instead of every request in the cluster hammering this one shared
    /// counter. Ids within a block are monotone, so a single gateway's
    /// request ids remain in submission order; unused tail ids of a lease
    /// are simply never observed (uniqueness, not density, is the
    /// contract).
    pub(crate) fn alloc_seq_block(&self, n: u64) -> u64 {
        self.next_seq.fetch_add(n, Ordering::Relaxed)
    }

    /// One follower-read round-robin ticket (modulo the fleet size at the
    /// call site — fleets can differ per shard).
    pub(crate) fn read_ticket(&self) -> u64 {
        self.next_read.fetch_add(1, Ordering::Relaxed)
    }

    // ----- ring -------------------------------------------------------------

    /// The shard the ring places a key on.
    pub fn shard_for(&self, key: u64) -> ShardId {
        self.ring.read().expect("ring lock").shard_for(key)
    }

    /// Grows the ring by one shard and returns the new shard's id.
    pub(crate) fn grow_ring(&self) -> ShardId {
        self.ring.write().expect("ring lock").add_shard()
    }

    // ----- groups -----------------------------------------------------------

    fn group_stripe(&self, id: GlobalGroupId) -> &RwLock<BTreeMap<GlobalGroupId, GroupPlacement>> {
        &self.groups[stripe_of(id.0)]
    }

    /// Where a group currently lives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn placement(&self, group: GlobalGroupId) -> Result<GroupPlacement> {
        self.group_stripe(group)
            .read()
            .expect("group stripe")
            .get(&group)
            .copied()
            .ok_or(ClusterError::UnknownGroup(group))
    }

    /// Records (or moves) a group's placement.
    pub(crate) fn place_group(&self, group: GlobalGroupId, placement: GroupPlacement) {
        self.group_stripe(group)
            .write()
            .expect("group stripe")
            .insert(group, placement);
    }

    /// Number of groups in the directory.
    pub fn group_count(&self) -> usize {
        self.groups
            .iter()
            .map(|s| s.read().expect("group stripe").len())
            .sum()
    }

    /// Every group owned by a shard.
    pub fn groups_on(&self, shard: ShardId) -> Vec<GlobalGroupId> {
        let mut out: Vec<GlobalGroupId> = self
            .groups
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("group stripe")
                    .iter()
                    .filter(|(_, p)| p.shard == shard)
                    .map(|(&g, _)| g)
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// A point-in-time copy of every placement, sorted by group id.
    pub(crate) fn placements_snapshot(&self) -> Vec<(GlobalGroupId, GroupPlacement)> {
        let mut out: Vec<(GlobalGroupId, GroupPlacement)> = self
            .groups
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("group stripe")
                    .iter()
                    .map(|(&g, &p)| (g, p))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|&(g, _)| g);
        out
    }

    // ----- members ----------------------------------------------------------

    pub(crate) fn member_stripe(
        &self,
        id: GlobalMemberId,
    ) -> &RwLock<BTreeMap<GlobalMemberId, MemberRecord>> {
        &self.members[stripe_of(id.0)]
    }

    /// Registers a member, returning its new global id.
    pub(crate) fn register_member(&self, template: Member) -> GlobalMemberId {
        let id = GlobalMemberId(self.alloc_member());
        self.member_stripe(id)
            .write()
            .expect("member stripe")
            .insert(
                id,
                MemberRecord {
                    template,
                    locals: BTreeMap::new(),
                },
            );
        id
    }

    /// Number of registered members.
    pub fn member_count(&self) -> usize {
        self.members
            .iter()
            .map(|s| s.read().expect("member stripe").len())
            .sum()
    }

    /// The member's display name (from its template).
    pub(crate) fn member_name(&self, member: GlobalMemberId) -> Result<String> {
        self.member_stripe(member)
            .read()
            .expect("member stripe")
            .get(&member)
            .map(|r| r.template.name.clone())
            .ok_or(ClusterError::UnknownMember(member))
    }

    /// The member's dense id on a shard, if instantiated there.
    pub fn local_member(&self, member: GlobalMemberId, shard: ShardId) -> Result<MemberId> {
        self.member_stripe(member)
            .read()
            .expect("member stripe")
            .get(&member)
            .ok_or(ClusterError::UnknownMember(member))?
            .locals
            .get(&shard)
            .copied()
            .ok_or(ClusterError::NotOnShard { member, shard })
    }

    /// A point-in-time copy of every member's shard-local ids.
    pub(crate) fn members_snapshot(&self) -> Vec<(GlobalMemberId, Vec<(ShardId, MemberId)>)> {
        let mut out: Vec<(GlobalMemberId, Vec<(ShardId, MemberId)>)> = self
            .members
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("member stripe")
                    .iter()
                    .map(|(&m, r)| (m, r.locals.iter().map(|(&s, &l)| (s, l)).collect()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|&(m, _)| m);
        out
    }

    // ----- reverse directory ------------------------------------------------

    fn locals_stripe(
        &self,
        shard: ShardId,
        local: MemberId,
    ) -> &RwLock<BTreeMap<(ShardId, MemberId), GlobalMemberId>> {
        &self.locals[stripe_of(((shard.0 as u64) << 32) ^ local.0 as u64)]
    }

    /// Records that `local` on `shard` is the instantiation of `member`.
    pub(crate) fn record_local(&self, shard: ShardId, local: MemberId, member: GlobalMemberId) {
        self.locals_stripe(shard, local)
            .write()
            .expect("locals stripe")
            .insert((shard, local), member);
    }

    /// The global member a shard-local id belongs to.
    pub fn global_of(&self, shard: ShardId, local: MemberId) -> Option<GlobalMemberId> {
        self.locals_stripe(shard, local)
            .read()
            .expect("locals stripe")
            .get(&(shard, local))
            .copied()
    }

    // ----- invitations ------------------------------------------------------

    /// The cluster-level invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: u64) -> Result<ClusterInvitation> {
        self.invitations
            .read()
            .expect("invitations lock")
            .get(id as usize)
            .cloned()
            .ok_or(ClusterError::UnknownInvitation(id))
    }

    pub(crate) fn push_invitation(&self, invitation: ClusterInvitation) -> u64 {
        let mut guard = self.invitations.write().expect("invitations lock");
        guard.push(invitation);
        guard.len() as u64 - 1
    }

    pub(crate) fn with_invitations_mut<R>(
        &self,
        f: impl FnOnce(&mut Vec<ClusterInvitation>) -> R,
    ) -> R {
        f(&mut self.invitations.write().expect("invitations lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::Role;

    #[test]
    fn ids_are_unique_under_concurrent_allocation() {
        let dir = std::sync::Arc::new(Directory::new(HashRing::new(4, 16)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let dir = dir.clone();
            handles.push(std::thread::spawn(move || {
                (0..500)
                    .map(|_| dir.register_member(Member::new("m", Role::Participant)))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<GlobalMemberId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2_000, "every allocation got a distinct id");
        assert_eq!(dir.member_count(), 2_000);
    }

    #[test]
    fn placement_round_trips_across_stripes() {
        let dir = Directory::new(HashRing::new(2, 16));
        for i in 0..200 {
            let g = GlobalGroupId(i);
            let p = GroupPlacement {
                shard: dir.shard_for(i),
                local: dmps_floor::GroupId(i as usize),
                parent: None,
            };
            dir.place_group(g, p);
            assert_eq!(dir.placement(g).unwrap(), p);
        }
        assert_eq!(dir.group_count(), 200);
        assert!(matches!(
            dir.placement(GlobalGroupId(999)),
            Err(ClusterError::UnknownGroup(_))
        ));
        let snapshot = dir.placements_snapshot();
        assert_eq!(snapshot.len(), 200);
        assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reverse_directory_tracks_instantiations() {
        let dir = Directory::new(HashRing::new(2, 16));
        let m = dir.register_member(Member::new("alice", Role::Chair));
        dir.record_local(ShardId(1), MemberId(7), m);
        assert_eq!(dir.global_of(ShardId(1), MemberId(7)), Some(m));
        assert_eq!(dir.global_of(ShardId(0), MemberId(7)), None);
        assert_eq!(dir.member_name(m).unwrap(), "alice");
    }
}
