//! Error types of the sharded control plane.

use std::fmt;

use dmps_floor::FloorError;

use crate::ring::ShardId;
use crate::shard::{GlobalGroupId, GlobalMemberId};

/// Convenience result alias for the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Errors raised by the sharded control plane.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A global group identifier is unknown to the directory.
    UnknownGroup(GlobalGroupId),
    /// A global member identifier is unknown to the directory.
    UnknownMember(GlobalMemberId),
    /// The shard owning the addressed group is down (crashed and not yet
    /// recovered).
    ShardDown(ShardId),
    /// A member is not registered on the shard the operation addresses.
    NotOnShard {
        /// The member.
        member: GlobalMemberId,
        /// The shard.
        shard: ShardId,
    },
    /// A cluster-level invitation identifier is unknown.
    UnknownInvitation(u64),
    /// An invitation was answered by somebody other than its recipient.
    NotTheInvitee(GlobalMemberId),
    /// An invitation was already answered.
    AlreadyAnswered(u64),
    /// A group could not be migrated because its floor state is active
    /// (token held or queued members).
    GroupNotIdle(GlobalGroupId),
    /// The group is frozen by an in-flight two-phase handoff; the operation
    /// is safe to retry once the handoff commits or aborts (streamed
    /// submissions are parked and re-driven automatically instead).
    GroupFrozen(GlobalGroupId),
    /// A live handoff was requested toward the shard that already owns the
    /// group.
    HandoffUnnecessary(GlobalGroupId),
    /// The owning shard's bounded ingest queue was full and the cluster's
    /// overload policy is [`OverloadPolicy::Shed`](crate::OverloadPolicy):
    /// the submission was not enqueued. Retry under the same request id
    /// ([`Gateway::resubmit`](crate::Gateway::resubmit)) once the storm
    /// drains — the shard dedup window keeps the retry exactly-once.
    Overloaded(ShardId),
    /// The shard worker pipelines are gone (the cluster was torn down while
    /// a decision was still awaited).
    Disconnected,
    /// Durable state failed its integrity check: a checksum mismatch or an
    /// unparseable artifact. The shard is quarantined (stays down) instead
    /// of the process aborting; with replicas the damage is repaired from
    /// the quorum during promotion instead of surfacing at all.
    Corrupt {
        /// The shard whose durable artifact failed verification.
        shard: ShardId,
        /// The artifact that failed (e.g. `snapshot base`, `log segment 42`).
        what: String,
    },
    /// An error surfaced from the underlying floor arbiter.
    Floor(FloorError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownGroup(g) => write!(f, "unknown cluster group {g}"),
            ClusterError::UnknownMember(m) => write!(f, "unknown cluster member {m}"),
            ClusterError::ShardDown(s) => write!(f, "shard {s} is down"),
            ClusterError::NotOnShard { member, shard } => {
                write!(f, "member {member} is not registered on shard {shard}")
            }
            ClusterError::UnknownInvitation(i) => write!(f, "unknown cluster invitation {i}"),
            ClusterError::NotTheInvitee(m) => write!(f, "member {m} is not the invitee"),
            ClusterError::AlreadyAnswered(i) => write!(f, "invitation {i} was already answered"),
            ClusterError::GroupNotIdle(g) => {
                write!(f, "group {g} has active floor state and cannot be migrated")
            }
            ClusterError::GroupFrozen(g) => {
                write!(f, "group {g} is frozen by an in-flight handoff")
            }
            ClusterError::HandoffUnnecessary(g) => {
                write!(f, "group {g} already lives on the handoff target shard")
            }
            ClusterError::Overloaded(s) => {
                write!(f, "shard {s} shed the submission: its ingest queue is full")
            }
            ClusterError::Disconnected => {
                write!(f, "the shard worker pipelines have shut down")
            }
            ClusterError::Corrupt { shard, what } => {
                write!(f, "shard {shard} durable state is corrupt: {what}")
            }
            ClusterError::Floor(e) => write!(f, "floor control error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Floor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FloorError> for ClusterError {
    fn from(e: FloorError) -> Self {
        ClusterError::Floor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            ClusterError::UnknownGroup(GlobalGroupId(1)),
            ClusterError::UnknownMember(GlobalMemberId(2)),
            ClusterError::ShardDown(ShardId(3)),
            ClusterError::NotOnShard {
                member: GlobalMemberId(4),
                shard: ShardId(0),
            },
            ClusterError::UnknownInvitation(5),
            ClusterError::NotTheInvitee(GlobalMemberId(6)),
            ClusterError::AlreadyAnswered(7),
            ClusterError::GroupNotIdle(GlobalGroupId(8)),
            ClusterError::GroupFrozen(GlobalGroupId(9)),
            ClusterError::HandoffUnnecessary(GlobalGroupId(10)),
            ClusterError::Overloaded(ShardId(1)),
            ClusterError::Disconnected,
            ClusterError::Corrupt {
                shard: ShardId(2),
                what: "snapshot base".into(),
            },
            ClusterError::Floor(FloorError::MissingDestination),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
