//! # dmps-cluster
//!
//! A sharded, failure-tolerant federation of floor-control arbiters — the
//! scale-out control plane the ROADMAP's "millions of concurrent users"
//! target needs, built on the paper's single-arbiter `FCM-Arbitrate`
//! semantics without weakening them.
//!
//! ## Architecture
//!
//! * **Sharding** ([`ring`]) — groups are partitioned across shards by
//!   consistent hashing on their [`GlobalGroupId`]; each shard is an
//!   independent [`dmps_floor::FloorArbiter`] so shards share nothing and
//!   scale linearly.
//! * **Routing & batching** ([`cluster`]) — the [`Cluster`] router translates
//!   cluster-wide ids to shard-local dense ids, batches requests per shard,
//!   and applies batches either sequentially or with one worker per shard
//!   ([`Cluster::flush_parallel`]).
//! * **Cross-shard invitations** — Group Discussion / Direct Contact
//!   sub-groups spawn on whatever shard the ring (or the caller) picks, so a
//!   popular lecture's breakouts spread over the cluster instead of
//!   hot-spotting their parent's shard.
//! * **Durability & failover** ([`shard`]) — every state mutation is an
//!   [`dmps_floor::ArbiterEvent`] appended to the shard's replicated log;
//!   snapshots ([`dmps_floor::ArbiterSnapshot`]) are taken on a cadence and
//!   compact the log. When a shard host crashes, a standby restores
//!   snapshot-plus-log-suffix and takes over with *exactly* the pre-crash
//!   floor state: no double grants, token uniqueness, suspension order — the
//!   invariants [`dmps_floor::FloorArbiter::check_invariants`] verifies.
//! * **Failure injection** ([`sim`]) — [`ClusterSim`] deploys the cluster
//!   over `dmps-simnet` hosts and crashes them mid-traffic on a seeded
//!   schedule, which is how the failover integration tests and the
//!   `sharded_campus_lectures` example exercise the recovery path
//!   deterministically.
//! * **Scale-out** — [`Cluster::add_shard`] grows the ring and
//!   [`Cluster::rebalance_idle`] migrates idle groups to it; groups with live
//!   token state stay pinned until they quiesce, because moving a held token
//!   between arbiters is exactly the double-grant risk failover avoids.
//!
//! ## Example
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(4));
//! let group = cluster.create_group("lecture", FcmMode::EqualControl).unwrap();
//! let teacher = cluster.register_member(Member::new("teacher", Role::Chair));
//! cluster.join_group(group, teacher).unwrap();
//!
//! cluster.submit(GlobalRequest::speak(group, teacher)).unwrap();
//! let decisions = cluster.flush_parallel();
//! assert!(decisions[0].outcome.as_ref().unwrap().is_granted());
//!
//! // Crash the shard owning the group; the standby recovers it exactly.
//! let shard = cluster.placement(group).unwrap().shard;
//! cluster.crash_shard(shard);
//! cluster.recover_shard(shard).unwrap();
//! cluster.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod ring;
pub mod shard;
pub mod sim;

pub use cluster::{
    Cluster, ClusterConfig, ClusterInvitation, Decision, GlobalRequest, GlobalRequestKind,
    GroupPlacement,
};
pub use error::{ClusterError, Result};
pub use ring::{HashRing, ShardId};
pub use shard::{EventLog, GlobalGroupId, GlobalMemberId, Shard, ShardState};
pub use sim::{ClusterMsg, ClusterSim};
