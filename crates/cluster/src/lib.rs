//! # dmps-cluster
//!
//! A sharded, failure-tolerant federation of floor-control arbiters — the
//! scale-out control plane the ROADMAP's "millions of concurrent users"
//! target needs, built on the paper's single-arbiter `FCM-Arbitrate`
//! semantics without weakening them.
//!
//! ## Architecture
//!
//! The paper's floor control mechanism serializes *who may speak*; this
//! crate is careful not to also serialize *who may ask*. Ingest is
//! concurrent end to end:
//!
//! * **Sharding** ([`ring`]) — groups are partitioned across shards by
//!   consistent hashing on their [`GlobalGroupId`]; each shard is an
//!   independent [`dmps_floor::FloorArbiter`] so shards share nothing and
//!   scale linearly.
//! * **Shared directory** ([`directory`]) — placements, membership and
//!   invitations live in a read-mostly [`Directory`] whose maps are split
//!   over per-stripe `RwLock`s (stripe picked by the same splitmix64 hash
//!   the ring uses) with atomic id counters. Routing a request takes `&self`
//!   and only read locks, so any number of gateways route concurrently; the
//!   old cluster-wide `&mut self` router lock is gone.
//! * **Worker pipelines** ([`worker`], [`queue`]) — each shard's state is
//!   owned by one persistent worker thread draining a **bounded** MPSC
//!   command queue ([`ClusterConfig::queue_capacity`]) in group-committed
//!   batches: one wakeup drains up to [`ClusterConfig::ingest_batch`]
//!   commands, arbitrates them all, appends their events to the durable log
//!   with one amortized [`EventLog::append_batch`] (and one snapshot-cadence
//!   check), and only then releases the decisions — coalesced into one
//!   channel send per submitting gateway. The queue is the shard's
//!   serialization point and its backpressure valve: when it is full, the
//!   configured [`OverloadPolicy`] either blocks the submitter (lossless)
//!   or sheds with [`ClusterError::Overloaded`] on the submitter's stream,
//!   so a storm can never exhaust memory and never loses a request
//!   silently. Control-plane commands are exempt from the bound, so
//!   crash-recovery and handoffs cannot be starved by a storm.
//! * **Gateways** ([`gateway`]) — a [`Gateway`] is a cheaply-cloneable
//!   ingest handle (`Arc` of the shared core + its own registered reply
//!   stream). Hand a clone to every front-end thread. The submit path does
//!   no per-request heap allocation: request ids come from per-gateway
//!   leased blocks ([`ClusterConfig::seq_lease`]) instead of a shared
//!   atomic, and commands carry a small registry handle instead of a cloned
//!   channel sender. [`Gateway::submit_batch`] /
//!   [`Gateway::submit_session_batch`] route a whole slice with one id
//!   lease, one directory pass and one queue reservation per shard.
//! * **Sessions** ([`session`]) — the content plane of a DMPS presentation
//!   session runs sharded too: every group carries its chat / whiteboard /
//!   annotation logs and synchronized-media schedule ([`GroupSession`]) on
//!   its owning shard, deliveries are floor-gated there
//!   ([`dmps_floor::FloorArbiter::may_deliver`]) exactly like a single DMPS
//!   server gates them, and session events share the shard's durable log, so
//!   a whole session — not just its floor requests — survives a crash.
//! * **Retransmission & dedup** ([`shard`]) — every arbitration is keyed by
//!   its request id in the owning shard's [`DedupWindow`], a bounded
//!   decision journal that is durable across shard crashes (conceptually it
//!   rides the replicated log). A gateway that never saw a decision —
//!   because the shard host died mid-request — simply retries under the same
//!   id: an already-applied event is answered from the journal
//!   ([`Decision::replayed`]) instead of double-applying, so retry-after-
//!   failover is exactly-once. Session operations get the same treatment
//!   through a second journal keyed by the same id space.
//! * **Durability & failover** ([`shard`]) — every state mutation is a
//!   [`ShardEvent`] (a floor mutation or a session delivery) appended to the
//!   shard's replicated log; snapshots ([`ShardSnapshot`]) are taken on a
//!   cadence and compact the log. When a shard host crashes, a standby
//!   restores snapshot-plus-log-suffix and takes over with *exactly* the
//!   pre-crash floor and session state: no double grants, token uniqueness,
//!   suspension order — the invariants
//!   [`dmps_floor::FloorArbiter::check_invariants`] verifies.
//! * **Replication & follower reads** — with
//!   [`ClusterConfig::replicas`] > 0 each shard worker ships every
//!   group-committed log suffix to N follower replicas over a private
//!   `dmps-simnet` network (latency, jitter and loss on the append path)
//!   and releases decisions only once a **quorum** of copies — counting the
//!   leader's own durable append — holds the batch. The quorum write is
//!   *pipelined*: the worker keeps draining and arbitrating the next batch
//!   while the previous batch's acks are still in flight
//!   ([`ClusterConfig::replica_pipeline`] bounds the window), so
//!   replication costs one network round-trip of latency, not one per
//!   batch of throughput. Failover promotes the most caught-up follower and
//!   replays only the committed tail it is missing, instead of rebuilding
//!   from snapshot-plus-full-log; and reads ([`Gateway::session_view`],
//!   [`Gateway::queue_position`], [`Gateway::shard_view`]) scale out to
//!   followers under a per-gateway **read-your-writes bound** — a follower
//!   serves only once it has applied everything the reading gateway has
//!   seen acknowledged, forwarding to the leader otherwise.
//! * **Cross-shard invitations** — Group Discussion / Direct Contact
//!   sub-groups spawn on whatever shard the ring (or the caller) picks, so a
//!   popular lecture's breakouts spread over the cluster instead of
//!   hot-spotting their parent's shard.
//! * **Observability** ([`telemetry`]) — every layer of the pipeline
//!   records into one cluster-wide
//!   [`MetricsRegistry`](telemetry::MetricsRegistry) of lock-free counters,
//!   log-bucketed latency histograms and bounded time-series
//!   ([`Cluster::metrics_report`] renders it; see the metric namespace in
//!   the docs of [`Cluster::metrics`]), and
//!   [`ClusterConfig::trace_sampling`] turns on 1-in-N end-to-end request
//!   tracing: a sampled submission carries a
//!   [`TraceSpan`](telemetry::TraceSpan) stamped
//!   `submitted → enqueued → drained → committed → replied`, retained in
//!   [`Cluster::recent_spans`].
//! * **Failure injection** ([`sim`]) — [`ClusterSim`] deploys the cluster
//!   over `dmps-simnet` hosts, crashes them mid-traffic on a seeded
//!   schedule (including between the phases of a scheduled live handoff),
//!   and (optionally) retransmits unanswered requests after failover,
//!   exercising the dedup window end to end.
//! * **Scale-out & live migration** — [`Cluster::add_shard`] grows the ring
//!   and spawns the new shard's pipeline; [`Cluster::rebalance_idle`]
//!   migrates idle groups to it and reports floor-active groups as
//!   `deferred` ([`RebalanceReport`]); [`Cluster::rebalance_active`] drains
//!   that list by moving *live* floor state — held token, FIFO queue,
//!   session content, journal slices — through a two-phase handoff
//!   (prepare freezes the group on the source and exports at a pinned log
//!   position; commit installs on the destination via ordinary logged
//!   events, flips the directory placement, and re-drives the submissions
//!   parked during the frozen window; abort resumes the source). The
//!   freeze guarantees at most one serving copy of a token at any instant —
//!   the paper's one-holder invariant, preserved across shard moves.
//!
//! The single-caller [`Cluster`] façade keeps the pre-pipeline API
//! (`submit`/`flush`/`request`, `&mut self`) so existing call sites migrate
//! mechanically; `flush` and `flush_parallel` both just await the façade's
//! outstanding decisions, because shards now always work in parallel behind
//! their queues.
//!
//! ## Example: concurrent multi-gateway ingest
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(4));
//! let group = cluster.create_group("lecture", FcmMode::EqualControl).unwrap();
//! let teacher = cluster.register_member(Member::new("teacher", Role::Chair));
//! cluster.join_group(group, teacher).unwrap();
//!
//! // Concurrent ingest: every clone is an independent gateway.
//! let gateway = cluster.gateway();
//! let worker = std::thread::spawn(move || {
//!     let seq = gateway.submit(GlobalRequest::speak(group, teacher)).unwrap();
//!     let decision = gateway.recv_decision().unwrap();
//!     assert_eq!(decision.seq, seq);
//!     assert!(decision.outcome.unwrap().is_granted());
//! });
//! worker.join().unwrap();
//!
//! // The façade path still works for single-threaded callers.
//! cluster.submit(GlobalRequest::release_floor(group, teacher)).unwrap();
//! let decisions = cluster.flush();
//! assert!(decisions[0].outcome.as_ref().unwrap().is_granted());
//!
//! // Crash the shard owning the group; the standby recovers it exactly.
//! let shard = cluster.placement(group).unwrap().shard;
//! cluster.crash_shard(shard);
//! cluster.recover_shard(shard).unwrap();
//! cluster.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod directory;
pub mod error;
pub mod gateway;
mod instrument;
pub mod queue;
mod replication;
pub mod ring;
pub mod session;
pub mod shard;
pub mod sim;
pub mod worker;

/// The cluster's telemetry vocabulary, re-exported from `dmps-telemetry`:
/// [`Cluster::metrics`] hands back a
/// [`MetricsRegistry`](telemetry::MetricsRegistry) of
/// [`Counter`](telemetry::Counter)s / [`Gauge`](telemetry::Gauge)s /
/// [`Histogram`](telemetry::Histogram)s / bounded
/// [`TimeSeries`](telemetry::TimeSeries), and [`Cluster::recent_spans`]
/// returns sampled per-request [`TraceSpan`](telemetry::TraceSpan)s.
pub use dmps_telemetry as telemetry;

pub use cluster::{
    Cluster, ClusterConfig, Decision, GlobalRequest, GlobalRequestKind, HandoffTicket,
    RebalanceReport,
};
pub use directory::{ClusterInvitation, Directory, GroupPlacement};
pub use error::{ClusterError, Result};
pub use gateway::Gateway;
pub use queue::{OverloadPolicy, QueueStats};
pub use ring::{HashRing, ShardId};
pub use session::{
    GroupSession, SessionDecision, SessionEvent, SessionOp, SessionOpKind, SessionOutcome,
    SessionRejection, SessionStore,
};
pub use shard::{
    CorruptionTarget, DedupWindow, EventLog, GlobalGroupId, GlobalMemberId, HandoffExport, Shard,
    ShardEvent, ShardSnapshot, ShardState, ShardView, SnapshotDelta,
};
pub use sim::{ClusterMsg, ClusterSim};
