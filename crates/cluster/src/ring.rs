//! Consistent hashing: placing groups onto shards.
//!
//! Each shard owns `vnodes` points on a 64-bit ring; a group key is placed on
//! the first shard point at or after its hash. Adding or removing one shard
//! therefore moves only `~1/n` of the keyspace — the property that makes
//! scale-out rebalancing cheap.

use std::fmt;

/// Identifier of a shard (dense index into the cluster's shard vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl ShardId {
    /// The dense index of the shard.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used for ring points and
/// key placement.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over shards with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted ring points `(hash, shard)`.
    points: Vec<(u64, ShardId)>,
    vnodes: usize,
    shards: usize,
}

impl HashRing {
    /// Builds a ring of `shards` shards with `vnodes` virtual nodes each.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(
            vnodes > 0,
            "a ring needs at least one virtual node per shard"
        );
        let mut ring = HashRing {
            points: Vec::with_capacity(shards * vnodes),
            vnodes,
            shards: 0,
        };
        for _ in 0..shards {
            ring.add_shard();
        }
        ring
    }

    /// Number of shards on the ring.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Adds the next shard (id = current count) to the ring and returns its
    /// id.
    pub fn add_shard(&mut self) -> ShardId {
        let id = ShardId(self.shards);
        self.shards += 1;
        for v in 0..self.vnodes {
            // Distinct namespaces for shard and vnode so rings of different
            // sizes share most points.
            let h = mix64(
                mix64(0xC1A5_7E5E ^ id.0 as u64) ^ (v as u64).wrapping_mul(0x5851_F42D_4C95_7F2D),
            );
            self.points.push((h, id));
        }
        self.points.sort_unstable();
        id
    }

    /// The shard owning a key.
    pub fn shard_for(&self, key: u64) -> ShardId {
        let h = mix64(key);
        match self.points.binary_search_by(|&(p, _)| p.cmp(&h)) {
            Ok(i) => self.points[i].1,
            Err(i) if i == self.points.len() => self.points[0].1,
            Err(i) => self.points[i].1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = HashRing::new(4, 64);
        for key in 0..1_000u64 {
            let a = ring.shard_for(key);
            let b = ring.shard_for(key);
            assert_eq!(a, b);
            assert!(a.index() < 4);
        }
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let ring = HashRing::new(4, 128);
        let mut counts: BTreeMap<ShardId, usize> = BTreeMap::new();
        for key in 0..8_000u64 {
            *counts.entry(ring.shard_for(key)).or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every shard owns part of the keyspace");
        for (&shard, &n) in &counts {
            // Perfect balance would be 2000 per shard; accept a generous
            // band since vnode placement is random-ish.
            assert!(
                (1_000..3_200).contains(&n),
                "shard {shard} got {n} of 8000 keys"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let before = HashRing::new(4, 128);
        let mut after = before.clone();
        after.add_shard();
        let moved = (0..8_000u64)
            .filter(|&k| before.shard_for(k) != after.shard_for(k))
            .count();
        // Ideal movement is 1/5 of keys (1600); anything under half shows
        // the ring is consistent rather than rehash-everything.
        assert!(moved > 0, "a new shard must take over some keys");
        assert!(moved < 4_000, "only a minority may move, moved {moved}");
        // Every moved key lands on the new shard.
        for k in 0..8_000u64 {
            if before.shard_for(k) != after.shard_for(k) {
                assert_eq!(after.shard_for(k), ShardId(4));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = HashRing::new(0, 8);
    }
}
