//! Sharded DMPS session state: the content plane of a presentation session.
//!
//! The paper's floor control mechanism exists to coordinate *presentation
//! sessions* — message windows, whiteboards, teacher annotations and
//! synchronized media playback — not bare token requests. This module is the
//! shard-side half of that: every group owned by a shard carries a
//! [`GroupSession`] (its chat / whiteboard / annotation logs and its media
//! schedule) inside the shard's [`SessionStore`], and every content delivery
//! is a [`SessionEvent`] that is floor-gated against the shard's live
//! arbiter ([`dmps_floor::FloorArbiter::may_deliver`]), appended to the same
//! durable event log as floor events, and therefore reconstructed exactly by
//! snapshot-plus-log-replay after a shard crash.
//!
//! Gateways address session traffic with cluster-wide ids through a
//! [`SessionOp`]; the routing layer translates it to a shard-local
//! [`SessionEvent`] and the owning shard answers with a [`SessionOutcome`]
//! ([`SessionDecision`] on the streaming path). Retries are exactly-once:
//! delivered ops are journaled per request id in the shard's session dedup
//! window, so a retransmitted chat line cannot appear twice.
//!
//! ```
//! use dmps_cluster::{Cluster, ClusterConfig, SessionOp};
//! use dmps_floor::{FcmMode, Member, Role};
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
//! let g = cluster.create_group("lecture", FcmMode::FreeAccess).unwrap();
//! let teacher = cluster.register_member(Member::new("teacher", Role::Chair));
//! cluster.join_group(g, teacher).unwrap();
//!
//! let outcome = cluster
//!     .session(SessionOp::chat(g, teacher, "welcome everyone"))
//!     .unwrap();
//! assert!(outcome.is_delivered());
//! let view = cluster.session_view(g).unwrap();
//! assert_eq!(view.chat[0], (teacher, "welcome everyone".to_string()));
//! ```

use std::collections::BTreeMap;

use dmps_floor::{GroupId, MemberId};
use dmps_simnet::SimTime;
use dmps_wire::Wire;

use crate::shard::{GlobalGroupId, GlobalMemberId};

/// The payload of one session operation, shared between the cluster-wide
/// [`SessionOp`] and the shard-local [`SessionEvent`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionOpKind {
    /// A message-window line.
    Chat {
        /// The text.
        text: String,
    },
    /// A whiteboard stroke batch.
    Whiteboard {
        /// Encoded stroke data.
        stroke: String,
    },
    /// A teacher annotation (Figure 3a).
    Annotation {
        /// The annotation text.
        text: String,
    },
    /// Schedule a synchronized media start: every member of the group starts
    /// the object at the same global time (the DOCPN schedule broadcast,
    /// sharded).
    ScheduleMedia {
        /// Name of the media object.
        media: String,
        /// The global time at which every client starts it.
        start: SimTime,
    },
}

impl SessionOpKind {
    /// Whether the operation is a floor-gated content delivery (as opposed
    /// to a membership-gated schedule broadcast).
    pub fn is_content(&self) -> bool {
        !matches!(self, SessionOpKind::ScheduleMedia { .. })
    }

    /// Stable lowercase label used in metric names and trace spans.
    pub fn label(&self) -> &'static str {
        match self {
            SessionOpKind::Chat { .. } => "chat",
            SessionOpKind::Whiteboard { .. } => "whiteboard",
            SessionOpKind::Annotation { .. } => "annotation",
            SessionOpKind::ScheduleMedia { .. } => "schedule_media",
        }
    }

    fn payload_bytes(&self) -> u64 {
        match self {
            SessionOpKind::Chat { text } | SessionOpKind::Annotation { text } => text.len() as u64,
            SessionOpKind::Whiteboard { stroke } => stroke.len() as u64,
            SessionOpKind::ScheduleMedia { media, .. } => 16 + media.len() as u64,
        }
    }
}

/// A session operation addressed with cluster-wide ids — what gateways
/// submit.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOp {
    /// The group the operation addresses (main session or a sub-session).
    pub group: GlobalGroupId,
    /// The acting member.
    pub from: GlobalMemberId,
    /// What they do.
    pub kind: SessionOpKind,
}

impl SessionOp {
    /// A chat line in `group`.
    pub fn chat(group: GlobalGroupId, from: GlobalMemberId, text: impl Into<String>) -> Self {
        SessionOp {
            group,
            from,
            kind: SessionOpKind::Chat { text: text.into() },
        }
    }

    /// A whiteboard stroke in `group`.
    pub fn whiteboard(
        group: GlobalGroupId,
        from: GlobalMemberId,
        stroke: impl Into<String>,
    ) -> Self {
        SessionOp {
            group,
            from,
            kind: SessionOpKind::Whiteboard {
                stroke: stroke.into(),
            },
        }
    }

    /// A teacher annotation in `group`.
    pub fn annotation(group: GlobalGroupId, from: GlobalMemberId, text: impl Into<String>) -> Self {
        SessionOp {
            group,
            from,
            kind: SessionOpKind::Annotation { text: text.into() },
        }
    }

    /// Schedules a synchronized media start in `group`.
    pub fn schedule_media(
        group: GlobalGroupId,
        from: GlobalMemberId,
        media: impl Into<String>,
        start: SimTime,
    ) -> Self {
        SessionOp {
            group,
            from,
            kind: SessionOpKind::ScheduleMedia {
                media: media.into(),
                start,
            },
        }
    }

    /// The approximate wire size in bytes (drives simulated transmission
    /// delays).
    pub fn size_bytes(&self) -> u64 {
        48 + self.kind.payload_bytes()
    }
}

impl SessionEvent {
    /// Owned heap payload in bytes (the string content the op carries) —
    /// the variable part of the shard's per-event byte accounting.
    pub fn heap_bytes(&self) -> u64 {
        self.kind.payload_bytes()
    }
}

/// A session operation translated to shard-local ids — what the owning
/// shard's worker applies and logs.
///
/// The event carries *both* addressings: the local ids are what the arbiter
/// gates against at original apply time (only *delivered* events are logged,
/// so replay re-applies them unconditionally — no re-gating is needed or
/// performed), while the global ids keep the recorded content meaningful
/// when the group (and its session log) migrates to a shard where the same
/// member has a different dense id.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEvent {
    /// The cluster-wide group id.
    pub group: GlobalGroupId,
    /// The group's dense id inside the owning shard's arbiter.
    pub local_group: GroupId,
    /// The cluster-wide id of the acting member.
    pub from: GlobalMemberId,
    /// The member's dense id inside the owning shard's arbiter.
    pub local_from: MemberId,
    /// The operation payload.
    pub kind: SessionOpKind,
}

/// Why a session operation was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionRejection {
    /// The acting member is not in the group (stale routing after a
    /// migration fails closed here, like floor requests do).
    NotAMember,
    /// Floor control denied the delivery (Equal Control without holding the
    /// token).
    FloorDenied,
}

/// What the owning shard did with a session operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionOutcome {
    /// The operation was applied to the group's session state and fanned out
    /// to `listeners` other members.
    Delivered {
        /// How many members (besides the sender, for content) observe it.
        listeners: u64,
    },
    /// The operation was refused without mutating state; retries
    /// re-arbitrate.
    Rejected {
        /// Why.
        reason: SessionRejection,
    },
}

impl SessionOutcome {
    /// Whether the operation was applied.
    pub fn is_delivered(&self) -> bool {
        matches!(self, SessionOutcome::Delivered { .. })
    }
}

/// The session decision for one submitted [`SessionOp`], streamed back to
/// the submitting gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionDecision {
    /// The request id.
    pub seq: u64,
    /// The group the operation addressed.
    pub group: GlobalGroupId,
    /// The outcome, or the routing/shard error that prevented it. Shared
    /// (`Arc`) with the owning shard's session dedup journal, like floor
    /// [`Decision`](crate::Decision) outcomes.
    pub outcome: crate::error::Result<std::sync::Arc<SessionOutcome>>,
    /// Whether the decision was answered from the shard's session journal (a
    /// retry of an already-delivered operation).
    pub replayed: bool,
    /// The shard that answered, or `None` when routing failed before a shard
    /// was resolved.
    pub shard: Option<crate::ring::ShardId>,
    /// The shard log position this decision was (quorum-)committed at (the
    /// read-your-writes bound; `0` = no durability information). See
    /// [`Decision::commit`](crate::Decision::commit).
    pub commit: u64,
    /// The leader epoch under which this decision quorum-committed (`0` = no
    /// fencing information). See [`Decision::epoch`](crate::Decision::epoch).
    pub epoch: u64,
}

/// The session state of one group: the server-side logs a `DmpsServer` keeps
/// for its single session, sharded.
///
/// Content is attributed by **global** member id so the log survives a group
/// migration to a shard with different dense ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupSession {
    /// Message-window lines, in delivery order.
    pub chat: Vec<(GlobalMemberId, String)>,
    /// Whiteboard strokes, in delivery order.
    pub whiteboard: Vec<(GlobalMemberId, String)>,
    /// Teacher annotations, in delivery order.
    pub annotations: Vec<(GlobalMemberId, String)>,
    /// Scheduled synchronized media starts, as `(media, global start time)`.
    pub media: Vec<(String, SimTime)>,
}

impl GroupSession {
    /// Whether nothing has been recorded for the group yet.
    pub fn is_empty(&self) -> bool {
        self.chat.is_empty()
            && self.whiteboard.is_empty()
            && self.annotations.is_empty()
            && self.media.is_empty()
    }

    fn merge(&mut self, other: GroupSession) {
        self.chat.extend(other.chat);
        self.whiteboard.extend(other.whiteboard);
        self.annotations.extend(other.annotations);
        self.media.extend(other.media);
    }

    /// Approximate in-memory footprint of the recorded content in bytes
    /// (entry overheads plus string payloads) — the per-group unit of the
    /// shard's session byte accounting.
    pub fn size_bytes(&self) -> u64 {
        let attributed = |v: &[(GlobalMemberId, String)]| -> u64 {
            v.iter()
                .map(|(_, s)| (std::mem::size_of::<(GlobalMemberId, String)>() + s.len()) as u64)
                .sum()
        };
        attributed(&self.chat)
            + attributed(&self.whiteboard)
            + attributed(&self.annotations)
            + self
                .media
                .iter()
                .map(|(m, _)| (std::mem::size_of::<(String, SimTime)>() + m.len()) as u64)
                .sum::<u64>()
    }
}

impl Wire for SessionOpKind {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        match self {
            SessionOpKind::Chat { text } => {
                0u8.encode(w);
                text.encode(w);
            }
            SessionOpKind::Whiteboard { stroke } => {
                1u8.encode(w);
                stroke.encode(w);
            }
            SessionOpKind::Annotation { text } => {
                2u8.encode(w);
                text.encode(w);
            }
            SessionOpKind::ScheduleMedia { media, start } => {
                3u8.encode(w);
                media.encode(w);
                start.encode(w);
            }
        }
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => SessionOpKind::Chat {
                text: String::decode(r)?,
            },
            1 => SessionOpKind::Whiteboard {
                stroke: String::decode(r)?,
            },
            2 => SessionOpKind::Annotation {
                text: String::decode(r)?,
            },
            3 => SessionOpKind::ScheduleMedia {
                media: String::decode(r)?,
                start: SimTime::decode(r)?,
            },
            other => {
                return Err(dmps_wire::WireError::BadToken {
                    expected: "SessionOpKind tag",
                    token: other.to_string(),
                })
            }
        })
    }
}

impl Wire for SessionEvent {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.group.encode(w);
        self.local_group.encode(w);
        self.from.encode(w);
        self.local_from.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(SessionEvent {
            group: GlobalGroupId::decode(r)?,
            local_group: GroupId::decode(r)?,
            from: GlobalMemberId::decode(r)?,
            local_from: MemberId::decode(r)?,
            kind: SessionOpKind::decode(r)?,
        })
    }
}

impl Wire for GroupSession {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.chat.encode(w);
        self.whiteboard.encode(w);
        self.annotations.encode(w);
        self.media.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(GroupSession {
            chat: Vec::decode(r)?,
            whiteboard: Vec::decode(r)?,
            annotations: Vec::decode(r)?,
            media: Vec::decode(r)?,
        })
    }
}

/// The session state of every group a shard owns.
///
/// Like the arbiter, the store is *volatile* primary state: a crash discards
/// it, and recovery reconstructs it from the latest snapshot plus the logged
/// [`SessionEvent`]s — [`SessionStore::apply`] is deterministic, which is
/// what lets session content ride the exact same durability machinery as
/// floor state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStore {
    groups: BTreeMap<GlobalGroupId, GroupSession>,
}

impl SessionStore {
    /// An empty store.
    pub fn new() -> Self {
        SessionStore::default()
    }

    /// Number of groups with recorded session state.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Approximate in-memory footprint of every group's recorded content,
    /// in bytes. O(recorded entries) — a diagnostic-path accounting walk,
    /// not a hot-path counter.
    pub fn size_bytes(&self) -> u64 {
        self.groups
            .values()
            .map(|g| std::mem::size_of::<GroupSession>() as u64 + g.size_bytes())
            .sum()
    }

    /// Applies a (already floor-gated) delivered event to the group's
    /// session state. Deterministic: replaying the same events in the same
    /// order reconstructs the same store.
    pub fn apply(&mut self, event: &SessionEvent) {
        let group = self.groups.entry(event.group).or_default();
        match &event.kind {
            SessionOpKind::Chat { text } => group.chat.push((event.from, text.clone())),
            SessionOpKind::Whiteboard { stroke } => {
                group.whiteboard.push((event.from, stroke.clone()))
            }
            SessionOpKind::Annotation { text } => {
                group.annotations.push((event.from, text.clone()))
            }
            SessionOpKind::ScheduleMedia { media, start } => {
                group.media.push((media.clone(), *start))
            }
        }
    }

    /// The recorded session state of a group (empty if nothing was recorded).
    pub fn view(&self, group: GlobalGroupId) -> GroupSession {
        self.groups.get(&group).cloned().unwrap_or_default()
    }

    /// Removes and returns a group's session state (migration: the content
    /// follows the group to its new shard).
    pub fn remove(&mut self, group: GlobalGroupId) -> Option<GroupSession> {
        self.groups.remove(&group)
    }

    /// Installs session state extracted from another shard's store.
    pub fn install(&mut self, group: GlobalGroupId, content: GroupSession) {
        self.groups.entry(group).or_default().merge(content);
    }

    /// Whether the store holds an entry for `group` (distinct from the entry
    /// being empty — snapshot deltas must reproduce the map exactly).
    pub fn contains(&self, group: GlobalGroupId) -> bool {
        self.groups.contains_key(&group)
    }

    /// Replaces a group's session state outright — the snapshot-delta fold
    /// path, where the delta carries the group's *complete* content at delta
    /// time (unlike [`SessionStore::install`], which merges a migrated slice
    /// on top of whatever is present).
    pub fn replace(&mut self, group: GlobalGroupId, content: GroupSession) {
        self.groups.insert(group, content);
    }
}

impl Wire for SessionStore {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.groups.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(SessionStore {
            groups: BTreeMap::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: SessionOpKind) -> SessionEvent {
        SessionEvent {
            group: GlobalGroupId(7),
            local_group: GroupId(0),
            from: GlobalMemberId(3),
            local_from: MemberId(1),
            kind,
        }
    }

    #[test]
    fn store_applies_and_views_by_global_ids() {
        let mut store = SessionStore::new();
        store.apply(&event(SessionOpKind::Chat { text: "hi".into() }));
        store.apply(&event(SessionOpKind::Whiteboard {
            stroke: "rect".into(),
        }));
        store.apply(&event(SessionOpKind::Annotation {
            text: "eq. 3".into(),
        }));
        store.apply(&event(SessionOpKind::ScheduleMedia {
            media: "intro".into(),
            start: SimTime::from_secs(5),
        }));
        let view = store.view(GlobalGroupId(7));
        assert_eq!(view.chat, vec![(GlobalMemberId(3), "hi".to_string())]);
        assert_eq!(view.whiteboard.len(), 1);
        assert_eq!(view.annotations.len(), 1);
        assert_eq!(
            view.media,
            vec![("intro".to_string(), SimTime::from_secs(5))]
        );
        assert!(store.view(GlobalGroupId(99)).is_empty());
        assert_eq!(store.group_count(), 1);
    }

    #[test]
    fn store_round_trips_through_the_wire_codec() {
        let mut store = SessionStore::new();
        for i in 0..3 {
            store.apply(&event(SessionOpKind::Chat {
                text: format!("line {i}"),
            }));
        }
        store.apply(&event(SessionOpKind::ScheduleMedia {
            media: "clip".into(),
            start: SimTime::from_millis(1234),
        }));
        let encoded = dmps_wire::to_string(&store);
        let back: SessionStore = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn extraction_and_install_move_content_between_stores() {
        let mut a = SessionStore::new();
        a.apply(&event(SessionOpKind::Chat { text: "x".into() }));
        let content = a.remove(GlobalGroupId(7)).unwrap();
        assert!(a.view(GlobalGroupId(7)).is_empty());
        let mut b = SessionStore::new();
        b.install(GlobalGroupId(7), content);
        assert_eq!(b.view(GlobalGroupId(7)).chat.len(), 1);
        assert!(a.remove(GlobalGroupId(7)).is_none());
    }

    #[test]
    fn op_constructors_and_sizes() {
        let g = GlobalGroupId(1);
        let m = GlobalMemberId(2);
        assert!(SessionOp::chat(g, m, "hello").kind.is_content());
        assert!(SessionOp::whiteboard(g, m, "line").kind.is_content());
        assert!(SessionOp::annotation(g, m, "note").kind.is_content());
        let media = SessionOp::schedule_media(g, m, "intro", SimTime::from_secs(1));
        assert!(!media.kind.is_content());
        let short = SessionOp::chat(g, m, "a");
        let long = SessionOp::chat(g, m, "a significantly longer chat line");
        assert!(long.size_bytes() > short.size_bytes());
        assert!(media.size_bytes() > 48);
    }
}
