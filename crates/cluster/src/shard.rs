//! One shard: a [`FloorArbiter`] plus a [`SessionStore`] behind a single
//! append-only event log with periodic snapshots and request-id dedup
//! windows.
//!
//! The log models the shard's replicated durable state (in a real deployment
//! it would live on a quorum of log servers); the arbiter and the session
//! store are the volatile in-memory state of the shard's primary process. A
//! crash discards both; recovery restores the latest [`ShardSnapshot`] and
//! replays the log suffix, which — because [`FloorArbiter::apply`] and
//! [`SessionStore::apply`] are deterministic — reconstructs the pre-crash
//! state exactly. Floor events ([`dmps_floor::ArbiterEvent`]) and session
//! events ([`SessionEvent`]) share one totally-ordered log
//! ([`ShardEvent`]), so a chat line delivered under a held token replays
//! against exactly the floor state that admitted it.
//!
//! The [`DedupWindow`]s are the shard half of gateway retransmission: every
//! arbitration (and every delivered session op) carries a cluster-unique
//! request id, and the decision recorded for it answers any retry of the
//! same id without re-applying the event. Like the log, the windows are
//! modelled as durable (they are conceptually the tail of the decision
//! journal riding the replicated log), so a retry that arrives after a
//! crash-and-recover cannot double-apply an event.
//!
//! The shard is also one side of the two-phase *live handoff* that migrates
//! floor-active groups between shards: [`Shard::handoff_prepare`] freezes a
//! group (durably, via [`ShardEvent::HandoffPrepare`]) and exports its
//! complete state ([`HandoffExport`]) at a pinned log position;
//! [`Shard::handoff_commit_source`] / [`Shard::handoff_abort`] log the
//! matching resolution. Frozen groups refuse ingest with
//! [`crate::ClusterError::GroupFrozen`] — so no matter which side crashes
//! mid-handoff, replay reconstructs a state in which at most one shard ever
//! serves the group's token.
//!
//! ```
//! use dmps_cluster::{GlobalGroupId, Shard, ShardId};
//! use dmps_floor::{ArbiterEvent, FcmMode, FloorRequest, GroupId, Member, MemberId, Role};
//!
//! let mut shard = Shard::new(ShardId(0), 4, 64);
//! shard
//!     .apply(ArbiterEvent::CreateGroup { name: "lecture".into(), mode: FcmMode::EqualControl })
//!     .unwrap();
//! shard
//!     .apply(ArbiterEvent::AddMember { group: GroupId(0), member: Member::new("t", Role::Chair) })
//!     .unwrap();
//! let speak = FloorRequest::speak(GroupId(0), MemberId(0));
//! let (outcome, replayed) = shard.arbitrate_dedup(1, GlobalGroupId(0), speak.clone());
//! assert!(outcome.unwrap().is_granted() && !replayed);
//! // The primary dies; the standby reconstructs the exact pre-crash state.
//! shard.crash();
//! shard.recover().unwrap();
//! shard.arbiter().check_invariants().unwrap();
//! let (retry, replayed) = shard.arbitrate_dedup(1, GlobalGroupId(0), speak);
//! assert!(retry.unwrap().is_granted() && replayed, "journal answers the retry");
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use dmps_telemetry::saturating_nanos;

use crate::instrument::ShardMetrics;

use dmps_floor::arbiter::ArbiterStats;
use dmps_floor::snapshot::EventOutcome;
use dmps_floor::{
    ArbiterDelta, ArbiterDirty, ArbiterEvent, ArbiterSnapshot, ArbitrationOutcome, FloorArbiter,
    FloorRequest,
};
use dmps_wire::Wire;

use crate::error::{ClusterError, Result};
use crate::ring::ShardId;
use crate::session::{GroupSession, SessionEvent, SessionOutcome, SessionRejection, SessionStore};

/// Cluster-wide identifier of a group (stable across shard moves, unlike the
/// dense per-arbiter [`dmps_floor::GroupId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalGroupId(pub u64);

impl fmt::Display for GlobalGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl Wire for GlobalGroupId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(GlobalGroupId(u64::decode(r)?))
    }
}

/// Cluster-wide identifier of a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalMemberId(pub u64);

impl fmt::Display for GlobalMemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

impl Wire for GlobalMemberId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(GlobalMemberId(u64::decode(r)?))
    }
}

/// One entry of a shard's totally-ordered durable log: a floor-control
/// mutation, a session-content delivery, or a migration bookkeeping record.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShardEvent {
    /// A floor-control state mutation.
    Floor(ArbiterEvent),
    /// A delivered session operation (already floor-gated when logged).
    Session(SessionEvent),
    /// A group's session content left this shard (rebalancing); replay must
    /// drop it like the migration did.
    SessionPurge(GlobalGroupId),
    /// A group's session content arrived from another shard (rebalancing);
    /// replay must re-install it.
    SessionInstall {
        /// The migrated group.
        group: GlobalGroupId,
        /// Its content at migration time.
        content: GroupSession,
    },
    /// Phase 1 of a live handoff: the group is frozen on this (source)
    /// shard — ingest for it fails closed with
    /// [`crate::ClusterError::GroupFrozen`] until a commit or abort is
    /// logged. Replay must restore the frozen marker so a crash mid-handoff
    /// cannot resurrect a second serving copy.
    HandoffPrepare(GlobalGroupId),
    /// Phase 2 of a live handoff, source side: the group left this shard for
    /// good (its roster was emptied and its session content purged by the
    /// separately-logged events preceding this one); replay must unfreeze
    /// the husk.
    HandoffCommit(GlobalGroupId),
    /// A live handoff was abandoned (destination unreachable): the group
    /// resumes serving on this shard; replay must unfreeze it.
    HandoffAbort(GlobalGroupId),
}

impl ShardEvent {
    /// Approximate in-memory footprint in bytes: the enum's inline size plus
    /// the owned heap payload of the common variants. Rare bookkeeping
    /// records (handoff markers, purges) and floor events with no sizeable
    /// heap payload count only their inline size — this is a capacity
    /// metric, not an allocator audit.
    pub fn approx_bytes(&self) -> u64 {
        let inline = std::mem::size_of::<ShardEvent>() as u64;
        let heap = match self {
            ShardEvent::Floor(e) => match e {
                ArbiterEvent::CreateGroup { name, .. } => name.len() as u64,
                ArbiterEvent::AddMember { member, .. } => {
                    (member.name.len() + std::mem::size_of_val(member.channels.as_slice())) as u64
                }
                _ => 0,
            },
            ShardEvent::Session(e) => e.heap_bytes(),
            ShardEvent::SessionInstall { content, .. } => content.size_bytes(),
            _ => 0,
        };
        inline + heap
    }
}

impl Wire for ShardEvent {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        match self {
            ShardEvent::Floor(e) => {
                0u8.encode(w);
                e.encode(w);
            }
            ShardEvent::Session(e) => {
                1u8.encode(w);
                e.encode(w);
            }
            ShardEvent::SessionPurge(g) => {
                2u8.encode(w);
                g.encode(w);
            }
            ShardEvent::SessionInstall { group, content } => {
                3u8.encode(w);
                group.encode(w);
                content.encode(w);
            }
            ShardEvent::HandoffPrepare(g) => {
                4u8.encode(w);
                g.encode(w);
            }
            ShardEvent::HandoffCommit(g) => {
                5u8.encode(w);
                g.encode(w);
            }
            ShardEvent::HandoffAbort(g) => {
                6u8.encode(w);
                g.encode(w);
            }
        }
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => ShardEvent::Floor(ArbiterEvent::decode(r)?),
            1 => ShardEvent::Session(SessionEvent::decode(r)?),
            2 => ShardEvent::SessionPurge(GlobalGroupId::decode(r)?),
            3 => ShardEvent::SessionInstall {
                group: GlobalGroupId::decode(r)?,
                content: GroupSession::decode(r)?,
            },
            4 => ShardEvent::HandoffPrepare(GlobalGroupId::decode(r)?),
            5 => ShardEvent::HandoffCommit(GlobalGroupId::decode(r)?),
            6 => ShardEvent::HandoffAbort(GlobalGroupId::decode(r)?),
            other => {
                return Err(dmps_wire::WireError::BadToken {
                    expected: "ShardEvent tag",
                    token: other.to_string(),
                })
            }
        })
    }
}

/// CRC-32 over the canonical wire encoding of a run of shard events — the
/// integrity check sealed log segments carry. Computed once at seal time on
/// the leader; recovery, followers and resync re-derive it from the events
/// they hold and compare.
pub(crate) fn segment_crc(events: &[ShardEvent]) -> u32 {
    let mut w = dmps_wire::Writer::new();
    for e in events {
        e.encode(&mut w);
    }
    dmps_wire::crc32(w.finish().as_bytes())
}

/// A sealed log segment: the sequence number of its first event plus the
/// shared, immutable event slice (see [`EventLog::seal`]).
pub type LogSegment<E> = (u64, Arc<[E]>);

/// The append-only event log of one shard, with prefix compaction.
///
/// Event `i` of the shard's history has sequence number `i`; after
/// compaction the log keeps only events `base..`, the rest being covered by
/// a snapshot. Storage is segmented: [`EventLog::seal`] converts the open
/// tail into a shared [`LogSegment`] that replication ships (and followers
/// retain) by reference count; an unreplicated shard never seals, keeping
/// the whole log as a plain vector.
#[derive(Debug, Clone)]
pub struct EventLog<E = ShardEvent> {
    base: u64,
    /// Sequence number of the next appended event.
    next: u64,
    /// Sealed segments in append order, each `(start_seq, events)`. Segments
    /// are contiguous (each starts where the previous ended); the first may
    /// straddle `base` after a mid-segment compaction. Each segment is one
    /// shared immutable slice, so replication can ship it (and followers can
    /// retain it) by reference count instead of copying events.
    segments: VecDeque<(u64, Arc<[E]>)>,
    /// Open tail: events appended since the last [`EventLog::seal`].
    tail: Vec<E>,
}

impl<E> Default for EventLog<E> {
    fn default() -> Self {
        EventLog {
            base: 0,
            next: 0,
            segments: VecDeque::new(),
            tail: Vec::new(),
        }
    }
}

impl<E> EventLog<E> {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Sequence number the next appended event receives.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Sequence number of the oldest retained event.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of retained events.
    pub fn retained(&self) -> usize {
        (self.next - self.base) as usize
    }

    /// Sequence number of the first unsealed (open-tail) event.
    fn tail_start(&self) -> u64 {
        self.next - self.tail.len() as u64
    }

    /// Appends an event, returning its sequence number.
    pub fn append(&mut self, event: E) -> u64 {
        let seq = self.next;
        self.tail.push(event);
        self.next += 1;
        seq
    }

    /// Appends a run of events in order — the group-commit path: one
    /// amortized append for a whole ingest batch instead of one bookkeeping
    /// pass per event. Returns the sequence number the *next* event would
    /// receive (`base + retained` after the append).
    pub fn append_batch(&mut self, events: impl IntoIterator<Item = E>) -> u64 {
        let before = self.tail.len();
        self.tail.extend(events);
        self.next += (self.tail.len() - before) as u64;
        self.next
    }

    /// Seals the open tail into a shared segment, returning the segment just
    /// sealed (so the caller can checksum it), or `None` when the tail was
    /// empty. Replicated shards seal after every group commit so the batch
    /// can be shipped (and retained by followers) as one reference-counted
    /// slice; unreplicated shards never seal and keep the tail as a plain
    /// vector.
    pub fn seal(&mut self) -> Option<&LogSegment<E>> {
        if self.tail.is_empty() {
            return None;
        }
        let start = self.tail_start();
        let segment: Arc<[E]> = std::mem::take(&mut self.tail).into();
        self.segments.push_back((start, segment));
        self.segments.back()
    }

    /// The retained events starting at `from_seq`, in sequence order.
    ///
    /// # Panics
    ///
    /// Panics when `from_seq` precedes the compaction base — those events no
    /// longer exist and the caller should have used a newer snapshot.
    pub fn events_from(&self, from_seq: u64) -> impl Iterator<Item = &E> {
        assert!(
            from_seq >= self.base,
            "log suffix from {} requested but events before {} were compacted",
            from_seq,
            self.base
        );
        let from = from_seq.max(self.base);
        let sealed = self.segments.iter().flat_map(move |(start, segment)| {
            let skip = from.saturating_sub(*start).min(segment.len() as u64) as usize;
            segment[skip..].iter()
        });
        let tail_skip = from
            .saturating_sub(self.tail_start())
            .min(self.tail.len() as u64) as usize;
        sealed.chain(self.tail[tail_skip..].iter())
    }

    /// The sealed segments overlapping `from_seq..`, as shared slices, plus
    /// the position sealed coverage ends at (`tail_start`): events past it
    /// are still in the open tail and ship after the next [`EventLog::seal`].
    /// `from_seq` must be at or past [`EventLog::base`] (callers below the
    /// base re-seed from a snapshot instead).
    pub fn segments_from(&self, from_seq: u64) -> (Vec<LogSegment<E>>, u64) {
        // Binary search for the first segment whose end is past `from_seq`:
        // segments are contiguous and sorted by start, and a replication
        // cursor in the steady state sits at the second-to-last boundary, so
        // this stays cheap however long the retained history grows.
        let (mut lo, mut hi) = (0usize, self.segments.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (start, segment) = &self.segments[mid];
            if start + segment.len() as u64 <= from_seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let segments = self.segments.range(lo..).cloned().collect();
        (segments, self.tail_start())
    }

    /// Drops every event at or after `seq` — the unquorumed tail a quorum
    /// repair discards when it adopts replica-held state instead of
    /// trusting local artifacts. The compaction base is untouched; `seq`
    /// at or below it empties the log. A sealed segment straddling the cut
    /// is shortened by copy (its full `Arc` may still be shared with
    /// replicas and must not be mutated).
    pub fn truncate_from(&mut self, seq: u64)
    where
        E: Clone,
    {
        let seq = seq.clamp(self.base, self.next);
        if seq == self.next {
            return;
        }
        let tail_start = self.tail_start();
        if seq <= tail_start {
            self.tail.clear();
        } else {
            self.tail.truncate((seq - tail_start) as usize);
        }
        while let Some((start, segment)) = self.segments.back() {
            if *start >= seq {
                self.segments.pop_back();
            } else if *start + segment.len() as u64 > seq {
                let keep = (seq - *start) as usize;
                let start = *start;
                let shortened: Arc<[E]> = segment[..keep].to_vec().into();
                self.segments.pop_back();
                self.segments.push_back((start, shortened));
                break;
            } else {
                break;
            }
        }
        self.next = seq;
    }

    /// Drops every event before `seq` (they are covered by a snapshot). A
    /// sealed segment straddling the new base is kept whole — readers skip
    /// its compacted prefix by sequence arithmetic.
    pub fn compact_to(&mut self, seq: u64) {
        let seq = seq.min(self.next);
        if seq <= self.base {
            return;
        }
        self.base = seq;
        while let Some((start, segment)) = self.segments.front() {
            if start + segment.len() as u64 <= seq {
                self.segments.pop_front();
            } else {
                break;
            }
        }
        let tail_start = self.tail_start();
        if seq > tail_start {
            self.tail.drain(..(seq - tail_start) as usize);
        }
    }
}

/// A bounded map of recently decided request ids → outcomes: the shard side
/// of gateway retransmission, for floor decisions
/// (`DedupWindow<ArbitrationOutcome>`, the default) and session decisions
/// (`DedupWindow<SessionOutcome>`) alike.
///
/// Recording is windowed (oldest entries evicted first) so memory stays
/// bounded; the window only needs to outlast the gateways' retry horizon.
/// A capacity of zero disables dedup entirely. Entries remember which
/// global group they decided for, so a group migration can carry its slice
/// of the journal to the new owning shard ([`DedupWindow::extract_group`])
/// and retries keep replaying instead of double-applying.
///
/// Outcomes are stored behind `Arc`, so the hot path records a decision
/// with a reference-count bump (the same allocation backs the streamed
/// [`Decision`](crate::Decision)) and a replay hands the recorded outcome
/// back by reference instead of deep-cloning its payload.
#[derive(Debug, Clone)]
pub struct DedupWindow<T = ArbitrationOutcome> {
    capacity: usize,
    order: VecDeque<u64>,
    outcomes: BTreeMap<u64, (GlobalGroupId, Arc<T>)>,
}

impl<T> Default for DedupWindow<T> {
    fn default() -> Self {
        DedupWindow {
            capacity: 0,
            order: VecDeque::new(),
            outcomes: BTreeMap::new(),
        }
    }
}

impl<T> DedupWindow<T> {
    /// A window retaining the last `capacity` decisions.
    pub fn new(capacity: usize) -> Self {
        DedupWindow {
            capacity,
            order: VecDeque::new(),
            outcomes: BTreeMap::new(),
        }
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the window holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The decision recorded for a request id, if still in the window.
    pub fn get(&self, id: u64) -> Option<&Arc<T>> {
        self.outcomes.get(&id).map(|(_, outcome)| outcome)
    }

    /// Records a decision, evicting the oldest entries when over capacity.
    /// Recording shares the outcome (`Arc` bump), never deep-copies it.
    pub fn record(&mut self, id: u64, group: GlobalGroupId, outcome: Arc<T>) {
        if self.capacity == 0 || self.outcomes.contains_key(&id) {
            return;
        }
        // The order queue may hold ids already extracted by a migration, so
        // evict until an actual entry made room (or the queue is exhausted).
        while self.outcomes.len() >= self.capacity {
            let Some(evicted) = self.order.pop_front() else {
                break;
            };
            self.outcomes.remove(&evicted);
        }
        self.order.push_back(id);
        self.outcomes.insert(id, (group, outcome));
    }

    /// Copies every journaled decision for `group` without removing it —
    /// phase 1 of a live handoff exports the slice while the source must
    /// stay able to answer retries until the commit point. The copies are
    /// `Arc` shares, not deep clones.
    pub fn peek_group(&self, group: GlobalGroupId) -> Vec<(u64, Arc<T>)> {
        self.outcomes
            .iter()
            .filter(|(_, (g, _))| *g == group)
            .map(|(&id, (_, outcome))| (id, outcome.clone()))
            .collect()
    }

    /// Removes and returns every journaled decision for `group` — the
    /// migration path: the entries follow the group to its new shard.
    pub fn extract_group(&mut self, group: GlobalGroupId) -> Vec<(u64, Arc<T>)> {
        let ids: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|(_, (g, _))| *g == group)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| {
                let (_, outcome) = self.outcomes.remove(&id).expect("listed above");
                (id, outcome)
            })
            .collect()
    }

    /// Installs journal entries extracted from another shard's window.
    pub fn install(&mut self, group: GlobalGroupId, entries: Vec<(u64, Arc<T>)>) {
        for (id, outcome) in entries {
            self.record(id, group, outcome);
        }
    }

    /// Approximate in-memory footprint of the window in bytes: map-entry
    /// overhead plus the inline size of each journaled outcome. O(1) — the
    /// rare heap payloads inside outcomes (denial reason strings) are not
    /// walked; this is a capacity metric, not an allocator audit.
    pub fn approx_bytes(&self) -> u64 {
        let per_entry = (std::mem::size_of::<u64>()
            + std::mem::size_of::<(GlobalGroupId, Arc<T>)>()
            + std::mem::size_of::<T>()) as u64;
        self.outcomes.len() as u64 * per_entry
    }

    /// Drops the entry for a request id, if present. Used to roll back
    /// journal entries whose events died in an uncommitted group-commit
    /// batch — the journal conceptually rides the log, so it must not
    /// outlive events the log never saw. (Any stale id left in the eviction
    /// order is skipped naturally, like extracted ids are.)
    pub fn forget(&mut self, id: u64) {
        if self.outcomes.remove(&id).is_some() {
            // Purge the eviction order too: unlike migration-extracted ids
            // (which can never be re-recorded here — the directory routes
            // the group elsewhere), a rolled-back id is expected to be
            // retried and re-recorded on THIS shard, and a stale front copy
            // in `order` would then evict the live re-recorded entry long
            // before it is actually the oldest.
            self.order.retain(|&queued| queued != id);
        }
    }
}

/// A read-only snapshot of a shard's health and counters, cheap enough to
/// ship out of the worker thread that owns the [`Shard`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardView {
    /// The shard id.
    pub id: ShardId,
    /// Current liveness.
    pub state: ShardState,
    /// How many times a standby recovered the shard.
    pub recoveries: u64,
    /// Sequence number of the oldest retained log event.
    pub log_base: u64,
    /// Number of retained log events.
    pub log_retained: usize,
    /// Whether a snapshot has been taken.
    pub has_snapshot: bool,
    /// Number of floor decisions currently in the dedup window.
    pub dedup_entries: usize,
    /// Number of session decisions currently in the session dedup window.
    pub session_dedup_entries: usize,
    /// Number of groups with recorded session content on this shard.
    pub session_groups: usize,
    /// Number of groups currently frozen by an in-flight live handoff.
    pub frozen_groups: usize,
    /// Approximate bytes of the retained log suffix (including any open
    /// group-commit batch). Zero on follower views — followers retain
    /// segments by reference, so the leader already accounts for them.
    pub log_bytes: u64,
    /// Approximate bytes of recorded session content on this shard.
    pub session_bytes: u64,
    /// Approximate bytes held by the floor and session dedup windows
    /// combined. Zero on follower views (the journal lives on the leader).
    pub dedup_bytes: u64,
    /// Encoded size of the durable checkpoint state in bytes: the latest
    /// full snapshot base **plus** every delta chained on it (zero when no
    /// checkpoint was taken; zero on follower views).
    pub snapshot_bytes: u64,
    /// Number of differential checkpoints currently chained on the snapshot
    /// base (zero right after a full snapshot; zero on follower views).
    pub snapshot_deltas: usize,
    /// Aggregate floor statistics of the shard's arbiter.
    pub stats: ArbiterStats,
}

/// Which durable artifact a fault injection corrupts — see
/// [`Shard::inject_corruption`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CorruptionTarget {
    /// Bit-rot the stored snapshot base: its checksum no longer matches.
    SnapshotBase,
    /// Bit-rot the newest chained snapshot delta.
    SnapshotDelta,
    /// Bit-rot the newest sealed log segment.
    SealedSegment,
    /// A torn write on the snapshot base: the payload is truncated but the
    /// checksum covers the torn bytes, so the parser (not the CRC) must
    /// catch it.
    TornSnapshot,
}

/// Liveness of a shard's primary process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The primary is serving requests.
    Active,
    /// The primary crashed; the log and snapshot survive but no requests are
    /// served until a standby recovers.
    Failed,
}

/// A point-in-time copy of a shard's complete durable state: the arbiter
/// snapshot plus the wire-encoded session store, both covering the same log
/// position.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The floor-control half.
    pub arbiter: ArbiterSnapshot,
    /// The wire-encoded [`SessionStore`] at the same log position.
    pub session: String,
    /// Groups frozen by an in-flight live handoff at snapshot time (sorted).
    /// Without this, a snapshot taken inside the frozen window would lose
    /// the marker the logged [`ShardEvent::HandoffPrepare`] established.
    pub frozen: Vec<GlobalGroupId>,
}

impl ShardSnapshot {
    /// Number of log events already folded into this snapshot.
    pub fn applied_seq(&self) -> u64 {
        self.arbiter.applied_seq
    }

    /// The encoded size in bytes (capacity-planning metric for snapshot
    /// shipping).
    pub fn size_bytes(&self) -> usize {
        self.arbiter.size_bytes() + self.session.len()
    }
}

impl Wire for ShardSnapshot {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.arbiter.encode(w);
        self.session.encode(w);
        self.frozen.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(ShardSnapshot {
            arbiter: ArbiterSnapshot::decode(r)?,
            session: String::decode(r)?,
            frozen: Vec::<GlobalGroupId>::decode(r)?,
        })
    }
}

/// A differential checkpoint: only the state dirtied since the previous
/// checkpoint, chained onto a periodic full [`ShardSnapshot`] base. Restoring
/// folds the base, then each delta in chain order, then replays the log tail
/// — see [`Shard::recover`].
///
/// The delta's window is `(base_seq, applied_seq]`. Because each entry
/// carries its *complete* value at delta time (and the tiny globals ship
/// wholesale), the delta folds correctly onto a restorer positioned anywhere
/// inside the window — the property follower resync relies on when its ack
/// knowledge lags the leader's chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// The floor-control half: dirty arbiter entries plus globals.
    pub arbiter: ArbiterDelta,
    /// Complete session content of every group whose session log changed in
    /// the window.
    pub sessions: Vec<(GlobalGroupId, GroupSession)>,
    /// Tombstones: groups whose session content was purged (migrated away)
    /// in the window.
    pub purged: Vec<GlobalGroupId>,
    /// The complete frozen set at delta time (tiny; shipped wholesale, like
    /// the snapshot's).
    pub frozen: Vec<GlobalGroupId>,
    /// The previous checkpoint's applied position — the start of this
    /// delta's window.
    pub base_seq: u64,
}

impl SnapshotDelta {
    /// Number of log events folded into the state this delta brings a
    /// restorer up to.
    pub fn applied_seq(&self) -> u64 {
        self.arbiter.applied_seq
    }

    /// Approximate encoded size in bytes — what a delta checkpoint
    /// serializes instead of the whole shard.
    pub fn size_bytes(&self) -> usize {
        self.arbiter.size_bytes()
            + self
                .sessions
                .iter()
                .map(|(_, s)| s.size_bytes() as usize)
                .sum::<usize>()
            + (self.purged.len() + self.frozen.len()) * std::mem::size_of::<GlobalGroupId>()
    }
}

impl Wire for SnapshotDelta {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.arbiter.encode(w);
        self.sessions.encode(w);
        self.purged.encode(w);
        self.frozen.encode(w);
        self.base_seq.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(SnapshotDelta {
            arbiter: ArbiterDelta::decode(r)?,
            sessions: Vec::<(GlobalGroupId, GroupSession)>::decode(r)?,
            purged: Vec::<GlobalGroupId>::decode(r)?,
            frozen: Vec::<GlobalGroupId>::decode(r)?,
            base_seq: u64::decode(r)?,
        })
    }
}

/// Everything phase 1 of a live handoff exports from the source shard, all
/// captured at one pinned log position: the group's live floor state (roster,
/// mode, chair, token with holder + queue), its session content, and its
/// slices of both decision journals.
///
/// Member ids inside `floor` are dense ids of the **source** arbiter; the
/// coordinator translates them to global ids (and then to the destination's
/// dense ids) before installing.
#[derive(Debug, Clone, PartialEq)]
pub struct HandoffExport {
    /// The live floor state of the group on the source shard.
    pub floor: dmps_floor::GroupFloorExport,
    /// The group's session content (chat / whiteboard / annotation logs and
    /// media schedule).
    pub content: GroupSession,
    /// The group's slice of the floor decision journal.
    pub floor_journal: Vec<(u64, Arc<ArbitrationOutcome>)>,
    /// The group's slice of the session decision journal.
    pub session_journal: Vec<(u64, Arc<SessionOutcome>)>,
    /// The source log position the export covers: every event up to (but not
    /// including) this sequence number is reflected in the exported state,
    /// and the freeze guarantees no later event will touch the group before
    /// commit or abort.
    pub pinned_seq: u64,
}

/// A shard: the unit of horizontal scale of the control plane.
#[derive(Debug)]
pub struct Shard {
    id: ShardId,
    state: ShardState,
    arbiter: FloorArbiter,
    session: SessionStore,
    log: EventLog<ShardEvent>,
    snapshot: Option<ShardSnapshot>,
    /// CRC-32 of the snapshot base's canonical encoding, written with the
    /// base. Recovery recomputes and compares before trusting the base.
    snapshot_crc: Option<u32>,
    /// Differential checkpoints chained on `snapshot`, oldest first. Durable
    /// like the snapshot; cleared when a new full base is taken.
    deltas: Vec<SnapshotDelta>,
    /// CRC-32 of each chained delta's canonical encoding, parallel to
    /// `deltas`.
    delta_crcs: Vec<u32>,
    /// CRC-32 of each sealed log segment as `(start_seq, len, crc)`, in
    /// segment order. Written at seal time, pruned with compaction, verified
    /// on recovery and by follower catch-up.
    segment_crcs: VecDeque<(u64, u64, u32)>,
    snapshot_every: u64,
    /// Byte-driven checkpoint cadence: checkpoint when this many event bytes
    /// committed since the last one (0 = fall back to the `snapshot_every`
    /// event count).
    snapshot_every_bytes: u64,
    /// Maximum deltas chained on one base before the next checkpoint is a
    /// full snapshot again (0 = every checkpoint is full).
    snapshot_chain: u64,
    /// Event bytes committed since the last checkpoint.
    bytes_since_checkpoint: u64,
    /// Arbiter ids dirtied since the last checkpoint.
    dirty_floor: ArbiterDirty,
    /// Groups whose session content changed since the last checkpoint.
    dirty_sessions: BTreeSet<GlobalGroupId>,
    /// Groups whose session content was purged since the last checkpoint
    /// (delta tombstones).
    purged_sessions: BTreeSet<GlobalGroupId>,
    /// Forces the next checkpoint to be a full base. Set by
    /// [`Shard::adopt`]: a recovered/promoted state was rebuilt by replay,
    /// so the dirty window since the last checkpoint is unknown.
    need_full: bool,
    dedup: DedupWindow<ArbitrationOutcome>,
    session_dedup: DedupWindow<SessionOutcome>,
    /// Groups frozen by an in-flight live handoff. Volatile like the arbiter
    /// (rebuilt on recovery from the snapshot's frozen list plus the logged
    /// prepare/commit/abort events), but checked on every ingest so a frozen
    /// group cannot serve.
    frozen: BTreeSet<GlobalGroupId>,
    recoveries: u64,
    /// When `true`, [`Shard::commit`] defers log appends into `pending` for
    /// the batch's single [`Shard::commit_batch`] group commit.
    batching: bool,
    /// Events applied to the live state but not yet group-committed to the
    /// log (only non-empty between `begin_batch` and `commit_batch`).
    pending: Vec<ShardEvent>,
    /// Request ids journaled during the open batch. The dedup windows are
    /// durable because they conceptually ride the replicated log — so if the
    /// batch dies uncommitted, these entries must be rolled back with it.
    pending_dedup: Vec<u64>,
    /// Session ids journaled during the open batch (same rollback contract).
    pending_session_dedup: Vec<u64>,
    /// Decisions the worker answered `ShardDown` while their group-committed
    /// batch was still awaiting quorum, as `(request_id, batch_end_seq,
    /// is_session)`. Their journal entries and logged events may or may not
    /// survive the failover (a replica may hold the batch durably even
    /// though the leader never saw the quorum); promotion reconciles: an
    /// orphan whose events made it into the adopted state keeps its journal
    /// entry (the client's retry replays), one whose events were discarded
    /// is forgotten (the retry re-arbitrates). Either way journal and state
    /// agree, which is what keeps retry-after-failover exactly-once.
    orphans: Vec<(u64, u64, bool)>,
    /// Storage-side telemetry, installed by the cluster wiring; `None` on
    /// shards built directly (unit tests, doc examples), which then pay
    /// nothing.
    metrics: Option<ShardMetrics>,
}

impl Shard {
    /// Creates an active shard that snapshots every `snapshot_every` events
    /// (0 disables automatic snapshots) and remembers the last
    /// `dedup_window` arbitration and session decisions for retry dedup
    /// (0 disables).
    pub fn new(id: ShardId, snapshot_every: u64, dedup_window: usize) -> Self {
        Shard {
            id,
            state: ShardState::Active,
            arbiter: FloorArbiter::with_defaults(),
            session: SessionStore::new(),
            log: EventLog::new(),
            snapshot: None,
            snapshot_crc: None,
            deltas: Vec::new(),
            delta_crcs: Vec::new(),
            segment_crcs: VecDeque::new(),
            snapshot_every,
            snapshot_every_bytes: 0,
            snapshot_chain: 0,
            bytes_since_checkpoint: 0,
            dirty_floor: ArbiterDirty::default(),
            dirty_sessions: BTreeSet::new(),
            purged_sessions: BTreeSet::new(),
            need_full: false,
            dedup: DedupWindow::new(dedup_window),
            session_dedup: DedupWindow::new(dedup_window),
            frozen: BTreeSet::new(),
            recoveries: 0,
            batching: false,
            pending: Vec::new(),
            pending_dedup: Vec::new(),
            pending_session_dedup: Vec::new(),
            orphans: Vec::new(),
            metrics: None,
        }
    }

    /// Installs the storage-side telemetry bundle (append latency, snapshot
    /// pauses, dedup hit counters). Called once by the cluster wiring before
    /// the shard moves onto its worker thread.
    pub(crate) fn set_metrics(&mut self, metrics: ShardMetrics) {
        self.metrics = Some(metrics);
    }

    /// The shard id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// Current liveness.
    pub fn state(&self) -> ShardState {
        self.state
    }

    /// Whether the shard is serving.
    pub fn is_active(&self) -> bool {
        self.state == ShardState::Active
    }

    /// Read access to the arbiter (inspection only).
    pub fn arbiter(&self) -> &FloorArbiter {
        &self.arbiter
    }

    /// Read access to the session store (inspection only).
    pub fn session(&self) -> &SessionStore {
        &self.session
    }

    /// The event log.
    pub fn log(&self) -> &EventLog<ShardEvent> {
        &self.log
    }

    /// Seals the log's open tail into a shared segment so replication can
    /// ship the freshly committed batch by reference, and records the
    /// segment's checksum. Only the replicated worker path calls this;
    /// unreplicated shards keep a plain tail.
    pub(crate) fn seal_log(&mut self) {
        let record = self
            .log
            .seal()
            .map(|(start, segment)| (*start, segment.len() as u64, segment_crc(segment)));
        if let Some(record) = record {
            self.segment_crcs.push_back(record);
        }
    }

    /// The recorded checksum of the sealed segment starting at `start`, if
    /// one was written (segments sealed before checksumming existed, or on
    /// another replica, have none).
    pub(crate) fn segment_crc_at(&self, start: u64) -> Option<u32> {
        self.segment_crcs
            .binary_search_by(|(s, _, _)| s.cmp(&start))
            .ok()
            .map(|i| self.segment_crcs[i].2)
    }

    /// Drops checksum records of segments compaction removed.
    fn prune_segment_crcs(&mut self) {
        let base = self.log.base();
        while let Some((start, len, _)) = self.segment_crcs.front() {
            if start + len <= base {
                self.segment_crcs.pop_front();
            } else {
                break;
            }
        }
    }

    /// The latest snapshot, if one was taken.
    pub fn latest_snapshot(&self) -> Option<&ShardSnapshot> {
        self.snapshot.as_ref()
    }

    /// The differential checkpoints chained on the latest snapshot, oldest
    /// first (empty right after a full snapshot).
    pub fn snapshot_deltas(&self) -> &[SnapshotDelta] {
        &self.deltas
    }

    /// Switches the shard to incremental checkpoints: checkpoint whenever
    /// `every_bytes` of events committed since the last one (0 keeps the
    /// event-count cadence of [`Shard::new`]), and chain up to `chain`
    /// differential checkpoints on one full base before taking a fresh base
    /// (0 keeps every checkpoint full — the legacy behavior).
    pub fn set_snapshot_policy(&mut self, every_bytes: u64, chain: u64) {
        self.snapshot_every_bytes = every_bytes;
        self.snapshot_chain = chain;
    }

    /// How many times a standby recovered this shard.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The floor dedup window (recently decided request ids).
    pub fn dedup(&self) -> &DedupWindow<ArbitrationOutcome> {
        &self.dedup
    }

    /// The session dedup window (recently delivered session op ids).
    pub fn session_dedup(&self) -> &DedupWindow<SessionOutcome> {
        &self.session_dedup
    }

    /// A cheap, owned snapshot of the shard's health and counters.
    pub fn view(&self) -> ShardView {
        ShardView {
            id: self.id,
            state: self.state,
            recoveries: self.recoveries,
            log_base: self.log.base(),
            log_retained: self.log.retained(),
            has_snapshot: self.snapshot.is_some(),
            dedup_entries: self.dedup.len(),
            session_dedup_entries: self.session_dedup.len(),
            session_groups: self.session.group_count(),
            frozen_groups: self.frozen.len(),
            log_bytes: self
                .log
                .events_from(self.log.base())
                .chain(self.pending.iter())
                .map(ShardEvent::approx_bytes)
                .sum(),
            session_bytes: self.session.size_bytes(),
            dedup_bytes: self.dedup.approx_bytes() + self.session_dedup.approx_bytes(),
            snapshot_bytes: self.snapshot.as_ref().map_or(0, |s| s.size_bytes() as u64)
                + self
                    .deltas
                    .iter()
                    .map(|d| d.size_bytes() as u64)
                    .sum::<u64>(),
            snapshot_deltas: self.deltas.len(),
            stats: self.arbiter.stats(),
        }
    }

    /// Whether a group is frozen by an in-flight live handoff.
    pub fn is_frozen(&self, group: GlobalGroupId) -> bool {
        self.frozen.contains(&group)
    }

    /// Appends an already-validated event to the durable log and takes a
    /// snapshot on the configured cadence. Inside a group-commit batch
    /// ([`Shard::begin_batch`]) the append is deferred so the whole batch
    /// pays for one log append and one cadence check.
    fn commit(&mut self, event: ShardEvent) {
        self.note_dirty(&event);
        self.bytes_since_checkpoint += event.approx_bytes();
        if self.batching {
            self.pending.push(event);
            return;
        }
        let seq = self.log.append(event) + 1;
        if self.cadence_crossed(seq - 1, seq) {
            self.checkpoint();
        }
    }

    /// Opens a group-commit batch: subsequent events validate and apply to
    /// the live state immediately, but their log appends are deferred until
    /// [`Shard::commit_batch`]. The worker pipeline brackets every drained
    /// ingest batch this way; a decision must not be released to its
    /// gateway until the batch holding its event has committed.
    pub fn begin_batch(&mut self) {
        self.batching = true;
    }

    /// Closes a group-commit batch: one amortized [`EventLog::append_batch`]
    /// for everything the batch applied, and a single snapshot-cadence check
    /// (a snapshot is taken if the batch crossed a cadence boundary, so
    /// cadence cost is paid per batch, not per event).
    pub fn commit_batch(&mut self) {
        self.batching = false;
        // The batch's journal entries become as durable as the log it just
        // joined.
        self.pending_dedup.clear();
        self.pending_session_dedup.clear();
        if self.pending.is_empty() {
            return;
        }
        let before = self.log.next_seq();
        let append = self.metrics.is_some().then(Instant::now);
        let after = self.log.append_batch(self.pending.drain(..));
        if let (Some(metrics), Some(append)) = (&self.metrics, append) {
            metrics
                .append_latency
                .record(saturating_nanos(append.elapsed()));
        }
        if self.cadence_crossed(before, after) {
            self.checkpoint();
        }
    }

    /// Records which state an event touched, so the next differential
    /// checkpoint ships exactly the groups/sessions mutated since the last
    /// one. Floor events are marked in [`Shard::apply`] (the arbiter knows
    /// the touched ids); this covers the session-side events.
    fn note_dirty(&mut self, event: &ShardEvent) {
        match event {
            ShardEvent::Session(e) => {
                self.dirty_sessions.insert(e.group);
            }
            ShardEvent::SessionPurge(group) => {
                self.dirty_sessions.remove(group);
                self.purged_sessions.insert(*group);
            }
            ShardEvent::SessionInstall { group, .. } => {
                self.dirty_sessions.insert(*group);
                self.purged_sessions.remove(group);
            }
            _ => {}
        }
    }

    /// Whether committing the events that moved the log from `before` to
    /// `after` sequences crossed a checkpoint-cadence boundary. Byte-driven
    /// when a byte budget is configured ([`Shard::set_snapshot_policy`]),
    /// otherwise the legacy every-N-events rule.
    fn cadence_crossed(&self, before: u64, after: u64) -> bool {
        if self.snapshot_every_bytes > 0 {
            return self.bytes_since_checkpoint >= self.snapshot_every_bytes;
        }
        self.snapshot_every > 0 && after / self.snapshot_every > before / self.snapshot_every
    }

    /// Takes the next checkpoint the policy calls for: a full snapshot when
    /// there is no base yet (or chaining is off, or the chain is at its
    /// configured cap, or the state was just adopted wholesale), otherwise a
    /// differential checkpoint chained on the current base.
    fn checkpoint(&mut self) {
        let full = self.need_full
            || self.snapshot.is_none()
            || self.snapshot_chain == 0
            || self.deltas.len() as u64 >= self.snapshot_chain;
        if full {
            self.take_snapshot();
        } else {
            self.take_delta();
        }
    }

    /// Applies a floor event through the log: the event is validated against
    /// the live arbiter, appended to the durable log, and a snapshot is
    /// taken on the configured cadence.
    ///
    /// Events that *fail* (unknown ids, policy misuse) are **not** logged —
    /// they did not mutate state, so replaying them is unnecessary; this also
    /// keeps replay infallible.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed, or the
    /// underlying floor error.
    pub fn apply(&mut self, event: ArbiterEvent) -> Result<EventOutcome> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        let outcome = self.arbiter.apply(&event)?;
        self.arbiter
            .mark_touched(&event, &outcome, &mut self.dirty_floor);
        self.commit(ShardEvent::Floor(event));
        Ok(outcome)
    }

    /// Applies a session operation through the log: the event is floor-gated
    /// against the live arbiter ([`FloorArbiter::may_deliver`] for content,
    /// membership for media schedules), recorded in the session store,
    /// appended to the durable log, and snapshotted on cadence.
    ///
    /// Rejections do **not** mutate state and are not logged — like failed
    /// floor events, they are safe (and meaningful) to re-run.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed, or
    /// [`ClusterError::Floor`] when the addressed group does not exist on
    /// this shard (stale routing after a migration fails closed).
    pub fn apply_session(&mut self, event: SessionEvent) -> Result<SessionOutcome> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        let group = self.arbiter.group(event.local_group)?;
        if !group.contains(event.local_from) {
            return Ok(SessionOutcome::Rejected {
                reason: SessionRejection::NotAMember,
            });
        }
        let members = group.members().count() as u64;
        let listeners = if event.kind.is_content() {
            if !self
                .arbiter
                .may_deliver(event.local_group, event.local_from)
            {
                return Ok(SessionOutcome::Rejected {
                    reason: SessionRejection::FloorDenied,
                });
            }
            members.saturating_sub(1)
        } else {
            members
        };
        self.session.apply(&event);
        self.commit(ShardEvent::Session(event));
        Ok(SessionOutcome::Delivered { listeners })
    }

    /// Arbitrates a floor request idempotently: `id` is the cluster-unique
    /// request id, and a retry of an id whose decision is still in the dedup
    /// window gets the recorded decision back (second tuple element `true`)
    /// without the event being applied again.
    ///
    /// Only *applied* arbitrations are journaled: a request refused because
    /// the shard is down, or rejected by the arbiter without mutating state,
    /// is safe (and meaningful) to re-run, so retries of those re-arbitrate.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed, or the
    /// underlying floor error.
    pub fn arbitrate_dedup(
        &mut self,
        id: u64,
        group: GlobalGroupId,
        request: FloorRequest,
    ) -> (Result<Arc<ArbitrationOutcome>>, bool) {
        if self.state != ShardState::Active {
            return (Err(ClusterError::ShardDown(self.id)), false);
        }
        if self.frozen.contains(&group) {
            // A handoff is in flight: the exported state must not move. The
            // error is retryable — after commit the directory routes the
            // retry to the new owner, after abort it lands here again.
            return (Err(ClusterError::GroupFrozen(group)), false);
        }
        if let Some(outcome) = self.dedup.get(id) {
            if let Some(metrics) = &self.metrics {
                metrics.dedup_hits.incr();
            }
            // Replay by reference: the journaled outcome is shared, not
            // deep-cloned, into the retry's decision.
            return (Ok(outcome.clone()), true);
        }
        match self.apply(ArbiterEvent::Arbitrate { request }) {
            Ok(EventOutcome::Arbitrated(outcome)) => {
                // One allocation backs both the journal entry and the
                // streamed decision.
                let outcome = Arc::new(outcome);
                self.dedup.record(id, group, outcome.clone());
                if self.batching {
                    self.pending_dedup.push(id);
                }
                (Ok(outcome), false)
            }
            Ok(_) => unreachable!("Arbitrate yields Arbitrated"),
            Err(e) => (Err(e), false),
        }
    }

    /// Applies a session operation idempotently: a retry of an id whose
    /// decision is still in the session dedup window gets the recorded
    /// decision back (second tuple element `true`) without the content being
    /// delivered twice. Only *delivered* operations are journaled;
    /// rejections re-arbitrate on retry.
    ///
    /// # Errors
    ///
    /// See [`Shard::apply_session`].
    pub fn arbitrate_session_dedup(
        &mut self,
        id: u64,
        event: SessionEvent,
    ) -> (Result<Arc<SessionOutcome>>, bool) {
        if self.state != ShardState::Active {
            return (Err(ClusterError::ShardDown(self.id)), false);
        }
        if self.frozen.contains(&event.group) {
            return (Err(ClusterError::GroupFrozen(event.group)), false);
        }
        if let Some(outcome) = self.session_dedup.get(id) {
            if let Some(metrics) = &self.metrics {
                metrics.session_dedup_hits.incr();
            }
            return (Ok(outcome.clone()), true);
        }
        let group = event.group;
        match self.apply_session(event) {
            Ok(outcome) => {
                let outcome = Arc::new(outcome);
                if outcome.is_delivered() {
                    self.session_dedup.record(id, group, outcome.clone());
                    if self.batching {
                        self.pending_session_dedup.push(id);
                    }
                }
                (Ok(outcome), false)
            }
            Err(e) => (Err(e), false),
        }
    }

    /// Removes and returns the journaled floor decisions for a group (the
    /// shard is losing the group to a migration; the entries must follow
    /// it).
    pub fn extract_dedup(&mut self, group: GlobalGroupId) -> Vec<(u64, Arc<ArbitrationOutcome>)> {
        self.dedup.extract_group(group)
    }

    /// Installs floor journal entries for a group this shard is taking over.
    pub fn install_dedup(
        &mut self,
        group: GlobalGroupId,
        entries: Vec<(u64, Arc<ArbitrationOutcome>)>,
    ) {
        self.dedup.install(group, entries);
    }

    /// Removes and returns the journaled session decisions for a group (the
    /// migration path, like [`Shard::extract_dedup`]).
    pub fn extract_session_dedup(
        &mut self,
        group: GlobalGroupId,
    ) -> Vec<(u64, Arc<SessionOutcome>)> {
        self.session_dedup.extract_group(group)
    }

    /// Installs session journal entries for a group this shard is taking
    /// over.
    pub fn install_session_dedup(
        &mut self,
        group: GlobalGroupId,
        entries: Vec<(u64, Arc<SessionOutcome>)>,
    ) {
        self.session_dedup.install(group, entries);
    }

    /// Removes and returns a group's session content because the group is
    /// migrating away. The removal is logged ([`ShardEvent::SessionPurge`]),
    /// so a crash-and-replay on this shard does not resurrect content that
    /// now lives elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed.
    pub fn extract_session(&mut self, group: GlobalGroupId) -> Result<Option<GroupSession>> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        let content = self.session.remove(group);
        if content.is_some() {
            self.commit(ShardEvent::SessionPurge(group));
        }
        Ok(content)
    }

    /// Installs session content for a group this shard is taking over. The
    /// installation is logged ([`ShardEvent::SessionInstall`]) so replay
    /// reconstructs migrated-in content too.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed.
    pub fn install_session(&mut self, group: GlobalGroupId, content: GroupSession) -> Result<()> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        self.session.install(group, content.clone());
        self.commit(ShardEvent::SessionInstall { group, content });
        Ok(())
    }

    // ----- live handoff (two-phase group migration) -------------------------

    /// Phase 1 of a live handoff: freezes `group` on this shard and exports
    /// its complete state at the current (pinned) log position — live floor
    /// state including the token's holder and queue, session content, and
    /// the group's slices of both decision journals.
    ///
    /// The freeze is durably logged ([`ShardEvent::HandoffPrepare`]), so a
    /// crash-and-recover of this shard mid-handoff reconstructs the frozen
    /// marker and the group still cannot serve here: at most one side of the
    /// handoff is ever live. The export copies state rather than removing it
    /// — an abort is therefore just an unfreeze, and the source purge is
    /// deferred to the commit point.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed,
    /// [`ClusterError::GroupFrozen`] when a handoff is already in flight for
    /// the group, or the floor error for an unknown local group.
    pub fn handoff_prepare(
        &mut self,
        group: GlobalGroupId,
        local: dmps_floor::GroupId,
    ) -> Result<HandoffExport> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        if self.frozen.contains(&group) {
            return Err(ClusterError::GroupFrozen(group));
        }
        let floor = self.arbiter.export_group_floor(local)?;
        let export = HandoffExport {
            floor,
            content: self.session.view(group),
            floor_journal: self.dedup.peek_group(group),
            session_journal: self.session_dedup.peek_group(group),
            pinned_seq: self.log.next_seq(),
        };
        self.frozen.insert(group);
        self.commit(ShardEvent::HandoffPrepare(group));
        Ok(export)
    }

    /// Phase 2 of a live handoff, source side: the destination has installed
    /// the group, so this shard retires its copy — the roster must already
    /// have been emptied and the session content purged (both via their own
    /// logged events); this logs [`ShardEvent::HandoffCommit`] and lifts the
    /// freeze so replay knows the group left for good.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed (the
    /// husk then stays frozen — it fails closed until recovery replays the
    /// prepare without a commit, and the coordinator's directory flip keeps
    /// routing traffic to the new owner anyway).
    pub fn handoff_commit_source(&mut self, group: GlobalGroupId) -> Result<()> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        if self.frozen.remove(&group) {
            self.commit(ShardEvent::HandoffCommit(group));
        }
        Ok(())
    }

    /// Abandons a live handoff: lifts the freeze so the group resumes
    /// serving on this shard, durably logged ([`ShardEvent::HandoffAbort`]).
    /// Nothing else needs undoing — phase 1 copied state instead of
    /// removing it.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed; retry
    /// after recovery to lift the replayed freeze.
    pub fn handoff_abort(&mut self, group: GlobalGroupId) -> Result<()> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        if self.frozen.remove(&group) {
            self.commit(ShardEvent::HandoffAbort(group));
        }
        Ok(())
    }

    /// Takes a snapshot of the current state now and compacts the log up to
    /// it.
    pub fn take_snapshot(&mut self) -> &ShardSnapshot {
        // The whole capture happens with the worker thread stalled, so its
        // duration is the pause ingest observes — that is what gets recorded.
        let pause = self.metrics.is_some().then(Instant::now);
        // A snapshot must cover every event already applied to the live
        // state: flush any open group-commit batch first so `applied_seq`
        // cannot claim less history than the arbiter actually holds.
        if !self.pending.is_empty() {
            self.log.append_batch(self.pending.drain(..));
            self.pending_dedup.clear();
            self.pending_session_dedup.clear();
        }
        let snap = ShardSnapshot {
            arbiter: self.arbiter.snapshot(self.log.next_seq()),
            session: dmps_wire::to_string(&self.session),
            frozen: self.frozen.iter().copied().collect(),
        };
        self.log.compact_to(snap.applied_seq());
        self.prune_segment_crcs();
        self.snapshot_crc = Some(dmps_wire::crc32(dmps_wire::to_string(&snap).as_bytes()));
        self.snapshot = Some(snap);
        // A fresh full base obsoletes the delta chain and the dirty tracking
        // that fed it: everything is inside the base now.
        self.deltas.clear();
        self.delta_crcs.clear();
        self.dirty_floor.clear();
        self.dirty_sessions.clear();
        self.purged_sessions.clear();
        self.bytes_since_checkpoint = 0;
        self.need_full = false;
        if let (Some(metrics), Some(pause)) = (&self.metrics, pause) {
            let elapsed = pause.elapsed();
            metrics.snapshot_pause.record(saturating_nanos(elapsed));
            metrics
                .snapshot_pause_us
                .record(saturating_nanos(elapsed) / 1_000);
            metrics.chain_len.record(0);
        }
        self.snapshot.as_ref().expect("just stored")
    }

    /// Takes a differential checkpoint: only the arbiter groups and session
    /// logs touched since the last checkpoint (plus purge tombstones and the
    /// frozen set, which ships wholesale — it is tiny), chained on the
    /// current full base. The log compacts up to it exactly as it does for a
    /// full snapshot, so durability cost stays O(dirty), not O(shard).
    pub fn take_delta(&mut self) -> &SnapshotDelta {
        let pause = self.metrics.is_some().then(Instant::now);
        // Same flush rule as a full snapshot: the checkpoint must cover every
        // event already applied to the live state.
        if !self.pending.is_empty() {
            self.log.append_batch(self.pending.drain(..));
            self.pending_dedup.clear();
            self.pending_session_dedup.clear();
        }
        let applied = self.log.next_seq();
        let base_seq = self
            .deltas
            .last()
            .map(SnapshotDelta::applied_seq)
            .or_else(|| self.snapshot.as_ref().map(ShardSnapshot::applied_seq))
            .unwrap_or(0);
        let delta = SnapshotDelta {
            arbiter: self.arbiter.export_delta(applied, &self.dirty_floor),
            sessions: self
                .dirty_sessions
                .iter()
                .filter(|g| self.session.contains(**g))
                .map(|g| (*g, self.session.view(*g)))
                .collect(),
            purged: self.purged_sessions.iter().copied().collect(),
            frozen: self.frozen.iter().copied().collect(),
            base_seq,
        };
        self.log.compact_to(applied);
        self.prune_segment_crcs();
        self.dirty_floor.clear();
        self.dirty_sessions.clear();
        self.purged_sessions.clear();
        self.bytes_since_checkpoint = 0;
        if let (Some(metrics), Some(pause)) = (&self.metrics, pause) {
            let elapsed = pause.elapsed();
            metrics.snapshot_pause.record(saturating_nanos(elapsed));
            metrics
                .snapshot_pause_us
                .record(saturating_nanos(elapsed) / 1_000);
            metrics.delta_bytes.add(delta.size_bytes() as u64);
            metrics.chain_len.record(self.deltas.len() as u64 + 1);
        }
        self.delta_crcs
            .push(dmps_wire::crc32(dmps_wire::to_string(&delta).as_bytes()));
        self.deltas.push(delta);
        self.deltas.last().expect("just stored")
    }

    /// Crashes the primary: volatile arbiter and session state is lost; log,
    /// snapshot and dedup windows (durable, replicated — the windows are the
    /// tail of the decision journal) survive.
    pub fn crash(&mut self) {
        self.state = ShardState::Failed;
        self.arbiter = FloorArbiter::with_defaults();
        self.session = SessionStore::new();
        // Frozen markers are volatile too; recovery rebuilds them from the
        // snapshot's frozen list plus the logged handoff events.
        self.frozen.clear();
        // Events of an open group-commit batch die with the primary: their
        // decisions were never released (replies flush only after the batch
        // commits), so discarding them is the crash losing unacknowledged
        // work — exactly the semantics the dedup retry path heals. The
        // batch's journal entries roll back with it: the windows are durable
        // only as the tail of the log, and the log never saw these events.
        self.batching = false;
        self.pending.clear();
        for id in self.pending_dedup.drain(..) {
            self.dedup.forget(id);
        }
        for id in self.pending_session_dedup.drain(..) {
            self.session_dedup.forget(id);
        }
    }

    /// Builds a [`ClusterError::Corrupt`] naming this shard, counting the
    /// detection under `cluster.shard.N.fault.checksum_failures`.
    fn corrupt(&self, what: String) -> ClusterError {
        if let Some(metrics) = &self.metrics {
            metrics.checksum_failures.incr();
        }
        ClusterError::Corrupt {
            shard: self.id,
            what,
        }
    }

    /// Verifies the checksum of every durable artifact — snapshot base,
    /// chained deltas, sealed log segments — without touching the live
    /// state. Artifacts written before checksumming existed (no recorded
    /// CRC) are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Corrupt`] naming the first failing artifact.
    pub fn verify_durable(&self) -> Result<()> {
        if let (Some(snap), Some(expected)) = (&self.snapshot, self.snapshot_crc) {
            let actual = dmps_wire::crc32(dmps_wire::to_string(snap).as_bytes());
            if actual != expected {
                return Err(self.corrupt(format!(
                    "snapshot base checksum mismatch ({actual:08x} != {expected:08x})"
                )));
            }
        }
        for (i, delta) in self.deltas.iter().enumerate() {
            if let Some(&expected) = self.delta_crcs.get(i) {
                let actual = dmps_wire::crc32(dmps_wire::to_string(delta).as_bytes());
                if actual != expected {
                    return Err(self.corrupt(format!(
                        "snapshot delta {i} checksum mismatch ({actual:08x} != {expected:08x})"
                    )));
                }
            }
        }
        let (segments, _) = self.log.segments_from(self.log.base());
        for (start, segment) in &segments {
            if let Some(expected) = self.segment_crc_at(*start) {
                let actual = segment_crc(segment);
                if actual != expected {
                    return Err(self.corrupt(format!(
                        "log segment at seq {start} checksum mismatch \
                         ({actual:08x} != {expected:08x})"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Simulates durable-media corruption for fault injection. Bit-rot
    /// targets flip the *stored checksum* of the artifact — equivalent to
    /// one copy's bytes rotting, without mutating event slices whose `Arc`s
    /// replicas share. The torn-write target truncates the snapshot's
    /// encoded session payload and re-stamps its checksum, so detection
    /// falls to the parser instead of the CRC. Returns `false` when the
    /// targeted artifact does not exist (nothing was corrupted).
    pub fn inject_corruption(&mut self, target: CorruptionTarget) -> bool {
        match target {
            CorruptionTarget::SnapshotBase => match self.snapshot_crc.as_mut() {
                Some(crc) => {
                    *crc ^= 1;
                    true
                }
                None => false,
            },
            CorruptionTarget::SnapshotDelta => match self.delta_crcs.last_mut() {
                Some(crc) => {
                    *crc ^= 1;
                    true
                }
                None => false,
            },
            CorruptionTarget::SealedSegment => match self.segment_crcs.back_mut() {
                Some((_, _, crc)) => {
                    *crc ^= 1;
                    true
                }
                None => false,
            },
            CorruptionTarget::TornSnapshot => match self.snapshot.as_mut() {
                Some(snap) => {
                    let mut cut = snap.session.len() / 2;
                    while !snap.session.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    snap.session.truncate(cut);
                    self.snapshot_crc =
                        Some(dmps_wire::crc32(dmps_wire::to_string(snap).as_bytes()));
                    true
                }
                None => false,
            },
        }
    }

    /// A standby takes over: verify the durable artifacts' checksums,
    /// restore the latest snapshot, replay the log suffix, resume serving.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Corrupt`] when a checksum fails, a snapshot
    /// artifact does not parse, or a logged event fails to re-apply. The
    /// shard stays failed (quarantined) — with replicas the cluster repairs
    /// it from the quorum instead ([`crate::Cluster::recover_shard`]).
    pub fn recover(&mut self) -> Result<()> {
        self.verify_durable()?;
        let (mut arbiter, mut session, mut frozen, mut from_seq) = match &self.snapshot {
            Some(snap) => (
                FloorArbiter::restore(&snap.arbiter)
                    .map_err(|e| self.corrupt(format!("snapshot base does not restore: {e}")))?,
                dmps_wire::from_str::<SessionStore>(&snap.session).map_err(|e| {
                    self.corrupt(format!("snapshot base session store does not parse: {e}"))
                })?,
                snap.frozen.iter().copied().collect::<BTreeSet<_>>(),
                snap.applied_seq(),
            ),
            None => (
                FloorArbiter::with_defaults(),
                SessionStore::new(),
                BTreeSet::new(),
                0,
            ),
        };
        // Fold the differential chain onto the base, oldest first: each delta
        // replaces exactly the groups it shipped, removes its tombstones, and
        // carries the full frozen set as of its cut.
        for (i, delta) in self.deltas.iter().enumerate() {
            arbiter
                .apply_delta(&delta.arbiter)
                .map_err(|e| ClusterError::Corrupt {
                    shard: self.id,
                    what: format!("snapshot delta {i} does not fold: {e}"),
                })?;
            for (group, content) in &delta.sessions {
                session.replace(*group, content.clone());
            }
            for group in &delta.purged {
                session.remove(*group);
            }
            frozen = delta.frozen.iter().copied().collect();
            from_seq = delta.applied_seq();
        }
        for event in self.log.events_from(from_seq) {
            replay_event(&mut arbiter, &mut session, &mut frozen, event).map_err(|e| {
                ClusterError::Corrupt {
                    shard: self.id,
                    what: format!("logged event does not replay: {e}"),
                }
            })?;
        }
        self.adopt(arbiter, session, frozen);
        self.reconcile_orphans(self.log.next_seq());
        Ok(())
    }

    /// Records a decision the worker answered `ShardDown` while its batch
    /// was still awaiting quorum — see the `orphans` field for why failover
    /// must reconcile these against the state it adopts.
    pub(crate) fn note_orphan(&mut self, id: u64, end_seq: u64, session: bool) {
        self.orphans.push((id, end_seq, session));
    }

    /// Reconciles orphaned decisions against the state failover adopted,
    /// which covers events up to `applied`: orphans whose batch survived
    /// into the adopted state keep their journal entries (retries replay),
    /// orphans whose batch was discarded are forgotten (retries
    /// re-arbitrate). Called once per recovery/promotion.
    pub(crate) fn reconcile_orphans(&mut self, applied: u64) {
        for (id, end_seq, session) in self.orphans.drain(..) {
            if end_seq > applied {
                if session {
                    self.session_dedup.forget(id);
                } else {
                    self.dedup.forget(id);
                }
            }
        }
    }

    /// Rebuilds this shard from quorum-held state after its own durable
    /// artifacts failed verification: adopts the arbiter/session/frozen
    /// reconstruction of the most caught-up replica (which covers events up
    /// to `applied`), discards the untrusted snapshot chain, checksums and
    /// log wholesale, and immediately re-establishes a fresh checksummed
    /// base from the adopted state so the next recovery verifies again.
    ///
    /// The discarded log tail past `applied` was never quorum-committed
    /// (promotion picks a replica at least as durable as the quorum
    /// position), so no released decision loses its events; the decision
    /// journals are not part of the checksummed artifact set and survive,
    /// reconciled against `applied` like any promotion.
    pub(crate) fn repair_from(
        &mut self,
        arbiter: FloorArbiter,
        session: SessionStore,
        frozen: BTreeSet<GlobalGroupId>,
        applied: u64,
    ) {
        self.log.compact_to(applied);
        self.log.truncate_from(applied);
        self.snapshot = None;
        self.snapshot_crc = None;
        self.deltas.clear();
        self.delta_crcs.clear();
        self.segment_crcs.clear();
        self.adopt(arbiter, session, frozen);
        self.reconcile_orphans(applied);
        self.take_snapshot();
    }

    /// Installs an already-reconstructed live state (a promoted follower's
    /// arbiter/session/frozen set, or the tail-replayed result of
    /// [`Shard::recover`]) and resumes serving. The log, snapshot and dedup
    /// windows are durable and stay as they are.
    pub(crate) fn adopt(
        &mut self,
        arbiter: FloorArbiter,
        session: SessionStore,
        frozen: BTreeSet<GlobalGroupId>,
    ) {
        self.arbiter = arbiter;
        self.session = session;
        self.frozen = frozen;
        // The dirty sets tracked what the *previous* incarnation touched; an
        // adopted state invalidates them, so the next checkpoint must be a
        // full base before differential chaining can resume.
        self.dirty_floor.clear();
        self.dirty_sessions.clear();
        self.purged_sessions.clear();
        self.need_full = true;
        self.state = ShardState::Active;
        self.recoveries += 1;
    }
}

/// Replays one logged event into a reconstructed live state. Shared by
/// [`Shard::recover`] (standby replay) and the replication module (follower
/// apply and promotion tail-catch-up), so all three paths have identical
/// semantics by construction.
///
/// # Errors
///
/// Returns [`ClusterError::Floor`] when a logged floor event fails to
/// re-apply (durable-state corruption, not a recoverable condition).
pub(crate) fn replay_event(
    arbiter: &mut FloorArbiter,
    session: &mut SessionStore,
    frozen: &mut BTreeSet<GlobalGroupId>,
    event: &ShardEvent,
) -> Result<()> {
    match event {
        ShardEvent::Floor(e) => {
            arbiter.apply(e)?;
        }
        ShardEvent::Session(e) => session.apply(e),
        ShardEvent::SessionPurge(g) => {
            session.remove(*g);
        }
        ShardEvent::SessionInstall { group, content } => {
            session.install(*group, content.clone());
        }
        ShardEvent::HandoffPrepare(g) => {
            frozen.insert(*g);
        }
        ShardEvent::HandoffCommit(g) | ShardEvent::HandoffAbort(g) => {
            frozen.remove(g);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOpKind;
    use dmps_floor::{FcmMode, FloorRequest, GroupId, Member, MemberId, Role};
    use dmps_simnet::SimTime;

    fn scripted(shard: &mut Shard, requests: usize) {
        shard
            .apply(ArbiterEvent::CreateGroup {
                name: "g".into(),
                mode: FcmMode::EqualControl,
            })
            .unwrap();
        for i in 0..4 {
            shard
                .apply(ArbiterEvent::AddMember {
                    group: GroupId(0),
                    member: Member::new(format!("m{i}"), Role::Participant),
                })
                .unwrap();
        }
        for i in 0..requests {
            shard
                .apply(ArbiterEvent::Arbitrate {
                    request: FloorRequest::speak(GroupId(0), MemberId(i % 4)),
                })
                .unwrap();
        }
    }

    fn session_event(member: usize, kind: SessionOpKind) -> SessionEvent {
        SessionEvent {
            group: GlobalGroupId(0),
            local_group: GroupId(0),
            from: GlobalMemberId(member as u64),
            local_from: MemberId(member),
            kind,
        }
    }

    #[test]
    fn crash_and_recover_reconstructs_state_exactly() {
        let mut shard = Shard::new(ShardId(0), 8, 64);
        scripted(&mut shard, 20);
        let reference = shard.arbiter().clone();
        assert!(shard.latest_snapshot().is_some(), "cadence snapshots taken");
        shard.crash();
        assert!(!shard.is_active());
        assert!(matches!(
            shard.apply(ArbiterEvent::CreateGroup {
                name: "x".into(),
                mode: FcmMode::FreeAccess
            }),
            Err(ClusterError::ShardDown(_))
        ));
        shard.recover().unwrap();
        assert!(shard.is_active());
        assert_eq!(shard.arbiter(), &reference);
        assert_eq!(shard.recoveries(), 1);
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn recovery_works_without_any_snapshot() {
        let mut shard = Shard::new(ShardId(1), 0, 64);
        scripted(&mut shard, 5);
        let reference = shard.arbiter().clone();
        assert!(shard.latest_snapshot().is_none());
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn failed_events_are_not_logged() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 1);
        let retained = shard.log().retained();
        // Unknown group: the arbiter rejects it, so the log must not grow —
        // replay would otherwise fail.
        let err = shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(99), MemberId(0)),
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Floor(_)));
        assert_eq!(shard.log().retained(), retained);
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn log_compaction_keeps_recovery_correct() {
        let mut shard = Shard::new(ShardId(2), 4, 64);
        scripted(&mut shard, 30);
        // Compaction happened: the log no longer starts at zero.
        assert!(shard.log().base() > 0);
        assert!(shard.log().retained() < 35);
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn event_log_suffix_and_compaction_bounds() {
        let mut log: EventLog<ShardEvent> = EventLog::new();
        for i in 0..6 {
            log.append(ShardEvent::Floor(ArbiterEvent::CreateGroup {
                name: format!("g{i}"),
                mode: FcmMode::FreeAccess,
            }));
        }
        assert_eq!(log.next_seq(), 6);
        assert_eq!(log.events_from(4).count(), 2);
        // Seal mid-stream: a straddling segment must still honor the
        // compaction base via per-segment skip arithmetic.
        log.seal();
        log.compact_to(4);
        assert_eq!(log.base(), 4);
        assert_eq!(log.retained(), 2);
        assert_eq!(log.events_from(4).count(), 2);
        assert_eq!(log.events_from(6).count(), 0);
        // Compacting backwards is a no-op.
        log.compact_to(2);
        assert_eq!(log.base(), 4);
        // Sealed coverage ends where the open tail begins.
        let (segments, sealed_end) = log.segments_from(4);
        assert_eq!(segments.len(), 1);
        assert_eq!(sealed_end, 6);
        log.append(ShardEvent::Floor(ArbiterEvent::CreateGroup {
            name: "tail".into(),
            mode: FcmMode::FreeAccess,
        }));
        assert_eq!(log.segments_from(4).1, 6);
        assert_eq!(log.events_from(4).count(), 3);
    }

    #[test]
    fn duplicate_request_ids_replay_without_reapplying() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        let speak = FloorRequest::speak(GroupId(0), MemberId(0));
        let (first, replayed) = shard.arbitrate_dedup(7, GlobalGroupId(0), speak.clone());
        assert!(!replayed);
        let first = first.unwrap();
        assert!(first.is_granted());
        let logged = shard.log().retained();
        let stats = shard.arbiter().stats();
        // The retry answers from the journal: same outcome, no new log event,
        // no stats movement.
        let (second, replayed) = shard.arbitrate_dedup(7, GlobalGroupId(0), speak.clone());
        assert!(replayed);
        assert_eq!(second.unwrap(), first);
        assert_eq!(shard.log().retained(), logged);
        assert_eq!(shard.arbiter().stats(), stats);
        // A fresh id applies normally (queued behind the holder).
        let (third, replayed) = shard.arbitrate_dedup(
            8,
            GlobalGroupId(0),
            FloorRequest::speak(GroupId(0), MemberId(1)),
        );
        assert!(!replayed);
        assert!(matches!(
            &*third.unwrap(),
            ArbitrationOutcome::Queued { .. }
        ));
    }

    #[test]
    fn dedup_window_survives_crash_and_recovery() {
        let mut shard = Shard::new(ShardId(0), 4, 64);
        scripted(&mut shard, 0);
        let speak = FloorRequest::speak(GroupId(0), MemberId(0));
        let (first, _) = shard.arbitrate_dedup(42, GlobalGroupId(0), speak.clone());
        let first = first.unwrap();
        shard.crash();
        // While down, even a duplicate is refused — nothing serves.
        let (down, replayed) = shard.arbitrate_dedup(42, GlobalGroupId(0), speak.clone());
        assert!(matches!(down, Err(ClusterError::ShardDown(_))));
        assert!(!replayed);
        shard.recover().unwrap();
        // After recovery the journaled decision still answers the retry, so
        // the event cannot double-apply.
        let granted_before = shard.arbiter().stats().granted;
        let (after, replayed) = shard.arbitrate_dedup(42, GlobalGroupId(0), speak);
        assert!(replayed);
        assert_eq!(after.unwrap(), first);
        assert_eq!(shard.arbiter().stats().granted, granted_before);
    }

    #[test]
    fn shard_events_roundtrip_on_the_wire_and_crc_is_content_sensitive() {
        let events = vec![
            ShardEvent::Floor(ArbiterEvent::CreateGroup {
                name: "g".into(),
                mode: FcmMode::EqualControl,
            }),
            ShardEvent::Session(session_event(
                1,
                SessionOpKind::ScheduleMedia {
                    media: "intro".into(),
                    start: SimTime::from_secs(5),
                },
            )),
            ShardEvent::SessionPurge(GlobalGroupId(7)),
            ShardEvent::SessionInstall {
                group: GlobalGroupId(3),
                content: GroupSession::default(),
            },
            ShardEvent::HandoffPrepare(GlobalGroupId(1)),
            ShardEvent::HandoffCommit(GlobalGroupId(1)),
            ShardEvent::HandoffAbort(GlobalGroupId(2)),
        ];
        for event in &events {
            let encoded = dmps_wire::to_string(event);
            assert_eq!(&dmps_wire::from_str::<ShardEvent>(&encoded).unwrap(), event);
        }
        let crc = segment_crc(&events);
        assert_eq!(crc, segment_crc(&events), "deterministic");
        assert_ne!(crc, segment_crc(&events[1..]), "content-sensitive");
    }

    #[test]
    fn corrupt_snapshot_base_quarantines_instead_of_panicking() {
        let mut shard = Shard::new(ShardId(0), 8, 64);
        scripted(&mut shard, 20);
        assert!(shard.latest_snapshot().is_some());
        shard.verify_durable().unwrap();
        assert!(shard.inject_corruption(CorruptionTarget::SnapshotBase));
        shard.crash();
        let err = shard.recover().unwrap_err();
        assert!(
            matches!(&err, ClusterError::Corrupt { what, .. } if what.contains("snapshot base")),
            "got {err:?}"
        );
        assert!(!shard.is_active(), "quarantined, not serving");
        // The failure is stable: retrying recovery cannot resurrect a shard
        // whose only durable copy is bad.
        assert!(shard.recover().is_err());
    }

    #[test]
    fn corrupt_delta_and_sealed_segment_are_each_detected() {
        let mut shard = Shard::new(ShardId(1), 0, 64);
        scripted(&mut shard, 4);
        shard.take_snapshot();
        scripted_more(&mut shard, 4);
        shard.take_delta();
        assert!(shard.inject_corruption(CorruptionTarget::SnapshotDelta));
        shard.crash();
        let err = shard.recover().unwrap_err();
        assert!(
            matches!(&err, ClusterError::Corrupt { what, .. } if what.contains("delta")),
            "got {err:?}"
        );

        let mut shard = Shard::new(ShardId(2), 0, 64);
        scripted(&mut shard, 4);
        shard.seal_log();
        shard.verify_durable().unwrap();
        assert!(shard.inject_corruption(CorruptionTarget::SealedSegment));
        shard.crash();
        let err = shard.recover().unwrap_err();
        assert!(
            matches!(&err, ClusterError::Corrupt { what, .. } if what.contains("log segment")),
            "got {err:?}"
        );
    }

    #[test]
    fn torn_snapshot_write_is_caught_by_the_parser() {
        let mut shard = Shard::new(ShardId(3), 0, 64);
        scripted(&mut shard, 2);
        shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(0)),
            })
            .unwrap();
        shard
            .apply_session(session_event(0, SessionOpKind::Chat { text: "hi".into() }))
            .unwrap();
        shard.take_snapshot();
        assert!(shard.inject_corruption(CorruptionTarget::TornSnapshot));
        // The torn write re-stamped the checksum, so verification alone
        // passes — the parser is the detection layer here.
        shard.verify_durable().unwrap();
        shard.crash();
        let err = shard.recover().unwrap_err();
        assert!(
            matches!(&err, ClusterError::Corrupt { what, .. } if what.contains("parse")),
            "got {err:?}"
        );
    }

    #[test]
    fn corruption_injection_reports_missing_artifacts() {
        let mut shard = Shard::new(ShardId(4), 0, 64);
        assert!(!shard.inject_corruption(CorruptionTarget::SnapshotBase));
        assert!(!shard.inject_corruption(CorruptionTarget::SnapshotDelta));
        assert!(!shard.inject_corruption(CorruptionTarget::SealedSegment));
        assert!(!shard.inject_corruption(CorruptionTarget::TornSnapshot));
        scripted(&mut shard, 2);
        shard.crash();
        shard.recover().unwrap();
    }

    #[test]
    fn segment_checksums_prune_with_compaction() {
        let mut shard = Shard::new(ShardId(5), 0, 64);
        scripted(&mut shard, 4);
        shard.seal_log();
        scripted_more(&mut shard, 4);
        shard.seal_log();
        assert_eq!(shard.segment_crcs.len(), 2);
        shard.take_snapshot();
        assert!(
            shard.segment_crcs.is_empty(),
            "records of compacted segments dropped"
        );
        shard.crash();
        shard.recover().unwrap();
    }

    #[test]
    fn dedup_window_is_bounded_and_evicts_oldest() {
        let mut window = DedupWindow::new(2);
        let outcome = Arc::new(ArbitrationOutcome::Granted {
            speakers: vec![MemberId(0)],
            suspensions: vec![],
        });
        window.record(1, GlobalGroupId(0), outcome.clone());
        window.record(2, GlobalGroupId(0), outcome.clone());
        window.record(3, GlobalGroupId(1), outcome.clone());
        assert_eq!(window.len(), 2);
        assert!(window.get(1).is_none(), "oldest entry evicted");
        assert!(window.get(2).is_some() && window.get(3).is_some());
        // Re-recording an existing id neither grows nor reorders the window.
        window.record(2, GlobalGroupId(0), outcome.clone());
        assert_eq!(window.len(), 2);
        // Capacity zero disables recording entirely.
        let mut off = DedupWindow::new(0);
        off.record(1, GlobalGroupId(0), outcome);
        assert!(off.is_empty());
    }

    #[test]
    fn session_events_are_floor_gated_and_logged() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        // Nobody holds the floor in this Equal Control group: content is
        // rejected and nothing is logged.
        let logged = shard.log().retained();
        let rejected = shard
            .apply_session(session_event(1, SessionOpKind::Chat { text: "hi".into() }))
            .unwrap();
        assert_eq!(
            rejected,
            SessionOutcome::Rejected {
                reason: SessionRejection::FloorDenied
            }
        );
        assert_eq!(shard.log().retained(), logged);
        // The holder delivers; the other three members listen.
        shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(1)),
            })
            .unwrap();
        let delivered = shard
            .apply_session(session_event(1, SessionOpKind::Chat { text: "hi".into() }))
            .unwrap();
        assert_eq!(delivered, SessionOutcome::Delivered { listeners: 3 });
        assert_eq!(shard.session().view(GlobalGroupId(0)).chat.len(), 1);
        // Media schedules are membership-gated, not floor-gated.
        let media = shard
            .apply_session(session_event(
                2,
                SessionOpKind::ScheduleMedia {
                    media: "intro".into(),
                    start: SimTime::from_secs(5),
                },
            ))
            .unwrap();
        assert_eq!(media, SessionOutcome::Delivered { listeners: 4 });
        // A non-member is rejected without touching state.
        let stranger = shard
            .apply_session(session_event(9, SessionOpKind::Chat { text: "x".into() }))
            .unwrap();
        assert_eq!(
            stranger,
            SessionOutcome::Rejected {
                reason: SessionRejection::NotAMember
            }
        );
        // An unknown group fails closed as an error.
        let mut bad = session_event(1, SessionOpKind::Chat { text: "x".into() });
        bad.local_group = GroupId(99);
        assert!(matches!(
            shard.apply_session(bad),
            Err(ClusterError::Floor(_))
        ));
    }

    #[test]
    fn session_state_survives_crash_via_snapshot_and_replay() {
        let mut shard = Shard::new(ShardId(0), 4, 64);
        scripted(&mut shard, 0);
        shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(0)),
            })
            .unwrap();
        for i in 0..10 {
            shard
                .apply_session(session_event(
                    0,
                    SessionOpKind::Chat {
                        text: format!("line {i}"),
                    },
                ))
                .unwrap();
        }
        shard
            .apply_session(session_event(
                0,
                SessionOpKind::ScheduleMedia {
                    media: "intro".into(),
                    start: SimTime::from_secs(9),
                },
            ))
            .unwrap();
        let reference_arbiter = shard.arbiter().clone();
        let reference_session = shard.session().clone();
        assert!(
            shard.latest_snapshot().is_some(),
            "cadence snapshot covers session events too"
        );
        shard.crash();
        assert!(shard.session().view(GlobalGroupId(0)).is_empty());
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference_arbiter);
        assert_eq!(shard.session(), &reference_session);
        assert_eq!(shard.session().view(GlobalGroupId(0)).chat.len(), 10);
        assert_eq!(shard.session().view(GlobalGroupId(0)).media.len(), 1);
    }

    #[test]
    fn session_dedup_replays_delivered_ops_only() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        // Rejected op: not journaled, a retry re-arbitrates.
        let (first, replayed) = shard.arbitrate_session_dedup(
            5,
            session_event(1, SessionOpKind::Chat { text: "x".into() }),
        );
        assert!(!replayed);
        assert!(!first.unwrap().is_delivered());
        shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(1)),
            })
            .unwrap();
        // The same id retried after the floor was granted now delivers.
        let (second, replayed) = shard.arbitrate_session_dedup(
            5,
            session_event(1, SessionOpKind::Chat { text: "x".into() }),
        );
        assert!(!replayed);
        assert!(second.unwrap().is_delivered());
        // A retry of the delivered id replays from the journal: no duplicate
        // chat line.
        let (third, replayed) = shard.arbitrate_session_dedup(
            5,
            session_event(1, SessionOpKind::Chat { text: "x".into() }),
        );
        assert!(replayed);
        assert!(third.unwrap().is_delivered());
        assert_eq!(shard.session().view(GlobalGroupId(0)).chat.len(), 1);
    }

    #[test]
    fn session_purge_and_install_replay_deterministically() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(0), MemberId(0)),
            })
            .unwrap();
        shard
            .apply_session(session_event(
                0,
                SessionOpKind::Chat {
                    text: "kept".into(),
                },
            ))
            .unwrap();
        // The group's content migrates away...
        let content = shard.extract_session(GlobalGroupId(0)).unwrap().unwrap();
        assert_eq!(content.chat.len(), 1);
        // ...and different content migrates in for another group.
        let mut incoming = GroupSession::default();
        incoming.chat.push((GlobalMemberId(42), "moved".into()));
        shard.install_session(GlobalGroupId(5), incoming).unwrap();
        let reference = shard.session().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.session(), &reference);
        assert!(shard.session().view(GlobalGroupId(0)).is_empty());
        assert_eq!(shard.session().view(GlobalGroupId(5)).chat.len(), 1);
    }

    #[test]
    fn handoff_prepare_freezes_and_exports_live_state() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 3); // m0 holds the token; m1, m2 queued
        let speak = FloorRequest::speak(GroupId(0), MemberId(3));
        let logged = shard.log().retained();
        let export = shard.handoff_prepare(GlobalGroupId(0), GroupId(0)).unwrap();
        assert_eq!(export.floor.token.holder(), Some(MemberId(0)));
        assert_eq!(
            export.floor.token.queue().collect::<Vec<_>>(),
            vec![MemberId(1), MemberId(2)]
        );
        assert_eq!(export.floor.members.len(), 4);
        assert_eq!(export.pinned_seq, logged as u64);
        assert!(shard.is_frozen(GlobalGroupId(0)));
        assert_eq!(shard.view().frozen_groups, 1);
        // Frozen: floor and session ingest fail closed with a retryable
        // error, and neither the log nor the journals move.
        let (refused, replayed) = shard.arbitrate_dedup(99, GlobalGroupId(0), speak.clone());
        assert!(matches!(refused, Err(ClusterError::GroupFrozen(_))) && !replayed);
        let (refused, _) = shard.arbitrate_session_dedup(
            99,
            session_event(0, SessionOpKind::Chat { text: "x".into() }),
        );
        assert!(matches!(refused, Err(ClusterError::GroupFrozen(_))));
        assert_eq!(shard.log().retained(), logged + 1, "only the prepare");
        // A second prepare for the same group is refused.
        assert!(matches!(
            shard.handoff_prepare(GlobalGroupId(0), GroupId(0)),
            Err(ClusterError::GroupFrozen(_))
        ));
        // Abort unfreezes; the group serves again with its state untouched.
        shard.handoff_abort(GlobalGroupId(0)).unwrap();
        assert!(!shard.is_frozen(GlobalGroupId(0)));
        let (after, _) = shard.arbitrate_dedup(100, GlobalGroupId(0), speak);
        assert!(matches!(
            &*after.unwrap(),
            ArbitrationOutcome::Queued { .. }
        ));
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn frozen_marker_survives_crash_snapshot_and_replay() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 2);
        shard.handoff_prepare(GlobalGroupId(0), GroupId(0)).unwrap();
        // Crash with the prepare only in the log: replay restores the freeze.
        shard.crash();
        shard.recover().unwrap();
        assert!(shard.is_frozen(GlobalGroupId(0)));
        // Snapshot inside the frozen window (compacts the prepare away), then
        // crash: the snapshot's frozen list must carry the marker.
        shard.take_snapshot();
        assert_eq!(shard.log().retained(), 0);
        shard.crash();
        shard.recover().unwrap();
        assert!(shard.is_frozen(GlobalGroupId(0)));
        // Commit retires the husk; the unfreeze is durable too.
        shard.handoff_commit_source(GlobalGroupId(0)).unwrap();
        shard.crash();
        shard.recover().unwrap();
        assert!(!shard.is_frozen(GlobalGroupId(0)));
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn dedup_peek_copies_without_extracting() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        let speak = FloorRequest::speak(GroupId(0), MemberId(0));
        let (first, _) = shard.arbitrate_dedup(7, GlobalGroupId(0), speak.clone());
        assert!(first.unwrap().is_granted());
        let peeked = shard.dedup().peek_group(GlobalGroupId(0));
        assert_eq!(peeked.len(), 1);
        assert_eq!(peeked[0].0, 7);
        // The entry is still in the window: a retry replays.
        let (retry, replayed) = shard.arbitrate_dedup(7, GlobalGroupId(0), speak);
        assert!(replayed);
        assert!(retry.unwrap().is_granted());
    }

    #[test]
    fn forget_purges_the_eviction_order_so_a_rerecorded_id_lives_full_term() {
        let mut window = DedupWindow::new(2);
        let outcome = Arc::new(ArbitrationOutcome::Granted {
            speakers: vec![MemberId(0)],
            suspensions: vec![],
        });
        // Roll back id 5 (mid-batch crash path), then re-record it after the
        // retry applies freshly.
        window.record(5, GlobalGroupId(0), outcome.clone());
        window.forget(5);
        assert!(window.get(5).is_none());
        window.record(7, GlobalGroupId(0), outcome.clone());
        window.record(5, GlobalGroupId(0), outcome.clone());
        // Filling past capacity must evict the genuinely oldest entry (7) —
        // a stale order entry for 5 would instead evict the live, newer 5
        // and re-open a double-apply window for its retries.
        window.record(9, GlobalGroupId(0), outcome);
        assert!(window.get(5).is_some(), "newest entries survive eviction");
        assert!(window.get(9).is_some());
        assert!(window.get(7).is_none(), "the oldest entry was evicted");
    }

    #[test]
    fn group_commit_matches_sequential_commit() {
        let mut sequential = Shard::new(ShardId(0), 4, 64);
        scripted(&mut sequential, 0);
        let mut batched = Shard::new(ShardId(0), 4, 64);
        scripted(&mut batched, 0);
        for i in 0..10u64 {
            let request = FloorRequest::speak(GroupId(0), MemberId((i % 4) as usize));
            let _ = sequential.arbitrate_dedup(i, GlobalGroupId(0), request);
        }
        batched.begin_batch();
        for i in 0..10u64 {
            let request = FloorRequest::speak(GroupId(0), MemberId((i % 4) as usize));
            let _ = batched.arbitrate_dedup(i, GlobalGroupId(0), request);
        }
        batched.commit_batch();
        // Same arbiter state, same log history, same journal.
        assert_eq!(batched.arbiter(), sequential.arbiter());
        assert_eq!(batched.log().next_seq(), sequential.log().next_seq());
        assert_eq!(batched.dedup().len(), sequential.dedup().len());
        // The group-committed log replays to the same state.
        let reference = batched.arbiter().clone();
        batched.crash();
        batched.recover().unwrap();
        assert_eq!(batched.arbiter(), &reference);
        batched.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn commit_batch_takes_one_snapshot_when_crossing_cadence() {
        let mut shard = Shard::new(ShardId(0), 4, 64);
        shard.begin_batch();
        // 1 create + 4 adds + 10 arbitrations = 15 events, crossing the
        // cadence three times — but deferred, so nothing is logged yet.
        scripted(&mut shard, 10);
        assert!(shard.latest_snapshot().is_none(), "appends are deferred");
        assert_eq!(shard.log().retained(), 0);
        shard.commit_batch();
        // One snapshot at the batch boundary covers the whole batch: the
        // cadence check is amortized per batch, not paid per event.
        assert_eq!(shard.latest_snapshot().unwrap().applied_seq(), 15);
        assert_eq!(shard.log().retained(), 0, "compacted up to the snapshot");
        shard.crash();
        shard.recover().unwrap();
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn crash_mid_batch_rolls_back_journal_entries_with_the_lost_events() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        shard.begin_batch();
        let speak = FloorRequest::speak(GroupId(0), MemberId(0));
        let (outcome, _) = shard.arbitrate_dedup(1, GlobalGroupId(0), speak.clone());
        assert!(outcome.unwrap().is_granted());
        // The batch never commits: the primary dies with the grant pending.
        // Its decision was never released, so losing it is safe — but the
        // journal entry must die too, or a retry would replay a grant the
        // recovered arbiter never saw.
        shard.crash();
        shard.recover().unwrap();
        let (retry, replayed) = shard.arbitrate_dedup(1, GlobalGroupId(0), speak);
        assert!(!replayed, "the uncommitted journal entry was rolled back");
        assert!(retry.unwrap().is_granted(), "the retry re-applies cleanly");
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn snapshot_inside_a_batch_flushes_pending_events_first() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        shard.begin_batch();
        let (outcome, _) = shard.arbitrate_dedup(
            1,
            GlobalGroupId(0),
            FloorRequest::speak(GroupId(0), MemberId(0)),
        );
        assert!(outcome.unwrap().is_granted());
        // An explicit snapshot mid-batch must cover the applied-but-pending
        // grant, or replay would reconstruct less state than the arbiter had.
        let applied = shard.take_snapshot().applied_seq();
        assert_eq!(applied, shard.log().next_seq());
        shard.commit_batch();
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn shard_snapshot_round_trips_through_the_wire_codec() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 3);
        let snap = shard.take_snapshot().clone();
        assert!(snap.size_bytes() > 0);
        let encoded = dmps_wire::to_string(&snap);
        let back: ShardSnapshot = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.applied_seq(), snap.applied_seq());
    }

    #[test]
    fn snapshot_delta_round_trips_through_the_wire_codec() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        shard.set_snapshot_policy(0, 8);
        scripted(&mut shard, 3);
        shard.take_snapshot();
        scripted_more(&mut shard, 4);
        let delta = shard.take_delta().clone();
        assert!(delta.size_bytes() > 0);
        assert!(delta.applied_seq() > delta.base_seq);
        let encoded = dmps_wire::to_string(&delta);
        let back: SnapshotDelta = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(back, delta);
    }

    /// More traffic against the group `scripted` set up, touching both the
    /// floor (arbitrations) and the session store (chat), so differential
    /// checkpoints have both halves to carry.
    fn scripted_more(shard: &mut Shard, requests: usize) {
        for i in 0..requests {
            shard
                .apply(ArbiterEvent::Arbitrate {
                    request: FloorRequest::speak(GroupId(0), MemberId(i % 4)),
                })
                .unwrap();
            shard
                .apply_session(session_event(
                    i % 4,
                    SessionOpKind::Chat {
                        text: format!("msg {i}"),
                    },
                ))
                .unwrap();
        }
    }

    #[test]
    fn delta_chain_recovery_matches_the_live_state_exactly() {
        // Event-count cadence 4 with a chain of 3: checkpoints at 4, 8, 12…
        // alternate one full base and three deltas.
        let mut shard = Shard::new(ShardId(0), 4, 64);
        shard.set_snapshot_policy(0, 3);
        scripted(&mut shard, 2);
        scripted_more(&mut shard, 20);
        assert!(
            !shard.snapshot_deltas().is_empty(),
            "differential checkpoints were taken"
        );
        let arbiter = shard.arbiter().clone();
        let session = shard.session().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &arbiter);
        assert_eq!(shard.session(), &session);
        // Byte-identical through the same codec the wire uses.
        assert_eq!(
            dmps_wire::to_string(shard.arbiter()),
            dmps_wire::to_string(&arbiter)
        );
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn delta_chain_caps_at_the_configured_length() {
        let mut shard = Shard::new(ShardId(0), 4, 64);
        shard.set_snapshot_policy(0, 2);
        scripted(&mut shard, 2);
        let mut longest = 0;
        for _ in 0..10 {
            scripted_more(&mut shard, 4);
            longest = longest.max(shard.snapshot_deltas().len());
            assert!(
                shard.snapshot_deltas().len() <= 2,
                "chain never exceeds the cap"
            );
        }
        assert_eq!(longest, 2, "the chain does fill before a base renews it");
        // The log always compacts to the latest checkpoint, full or delta.
        let tip = shard
            .snapshot_deltas()
            .last()
            .map(SnapshotDelta::applied_seq)
            .unwrap_or_else(|| shard.latest_snapshot().unwrap().applied_seq());
        assert_eq!(shard.log().base(), tip);
    }

    #[test]
    fn byte_cadence_drives_checkpoints_when_configured() {
        // Event-count cadence off; one byte of budget means every commit
        // crosses the cadence.
        let mut shard = Shard::new(ShardId(0), 0, 64);
        shard.set_snapshot_policy(1, 4);
        scripted(&mut shard, 2);
        assert!(
            shard.latest_snapshot().is_some(),
            "byte cadence took checkpoints with the event-count cadence disabled"
        );
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn crash_mid_chain_loses_only_the_open_batch() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        shard.set_snapshot_policy(0, 4);
        scripted(&mut shard, 2);
        shard.take_snapshot();
        scripted_more(&mut shard, 3);
        shard.take_delta();
        // A batch opens after the delta checkpoint and dies with the crash:
        // its decision was never released, so the retry path re-applies it.
        shard.begin_batch();
        let speak = FloorRequest::speak(GroupId(0), MemberId(3));
        let (outcome, _) = shard.arbitrate_dedup(77, GlobalGroupId(0), speak.clone());
        assert!(outcome.is_ok());
        shard.crash();
        shard.recover().unwrap();
        let (retry, replayed) = shard.arbitrate_dedup(77, GlobalGroupId(0), speak);
        assert!(!replayed, "the uncommitted journal entry rolled back");
        assert!(retry.is_ok());
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn handoff_landing_between_base_and_delta_recovers_cleanly() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        shard.set_snapshot_policy(0, 4);
        scripted(&mut shard, 2);
        shard
            .apply_session(session_event(
                0,
                SessionOpKind::Chat {
                    text: "keep".into(),
                },
            ))
            .unwrap();
        shard.take_snapshot();
        // The whole two-phase handoff lands inside one delta window: the
        // delta must carry the purge tombstone and the lifted freeze.
        shard.handoff_prepare(GlobalGroupId(0), GroupId(0)).unwrap();
        let content = shard.extract_session(GlobalGroupId(0)).unwrap();
        assert!(content.is_some(), "the chat line migrated out");
        shard.handoff_commit_source(GlobalGroupId(0)).unwrap();
        shard.take_delta();
        let arbiter = shard.arbiter().clone();
        let session = shard.session().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &arbiter);
        assert_eq!(shard.session(), &session);
        assert!(!shard.is_frozen(GlobalGroupId(0)));
        assert!(shard.session().view(GlobalGroupId(0)).is_empty());
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn view_reports_base_plus_chain_checkpoint_bytes() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        shard.set_snapshot_policy(0, 4);
        scripted(&mut shard, 2);
        shard.take_snapshot();
        let base_only = shard.view().snapshot_bytes;
        assert!(base_only > 0);
        scripted_more(&mut shard, 2);
        shard.take_delta();
        let with_chain = shard.view();
        assert_eq!(with_chain.snapshot_deltas, 1);
        assert!(
            with_chain.snapshot_bytes > base_only,
            "the chained delta's bytes are part of the checkpoint footprint"
        );
    }

    #[test]
    fn adoption_forces_the_next_checkpoint_full() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        shard.set_snapshot_policy(0, 4);
        scripted(&mut shard, 2);
        shard.take_snapshot();
        scripted_more(&mut shard, 2);
        shard.take_delta();
        assert_eq!(shard.snapshot_deltas().len(), 1);
        // Recovery adopts a reconstructed state; the dirty sets tracked the
        // dead incarnation, so the next checkpoint may not be differential.
        shard.crash();
        shard.recover().unwrap();
        scripted_more(&mut shard, 1);
        shard.checkpoint();
        assert!(
            shard.snapshot_deltas().is_empty(),
            "the first checkpoint after adoption is a full base"
        );
        assert_eq!(
            shard.latest_snapshot().unwrap().applied_seq(),
            shard.log().next_seq()
        );
    }
}
