//! One shard: a [`FloorArbiter`] behind an append-only event log with
//! periodic snapshots and a request-id dedup window.
//!
//! The log models the shard's replicated durable state (in a real deployment
//! it would live on a quorum of log servers); the arbiter is the volatile
//! in-memory state of the shard's primary process. A crash discards the
//! arbiter; recovery restores the latest [`ArbiterSnapshot`] and replays the
//! log suffix, which — because [`FloorArbiter::apply`] is deterministic —
//! reconstructs the pre-crash state exactly.
//!
//! The [`DedupWindow`] is the shard half of gateway retransmission: every
//! arbitration carries a cluster-unique request id, and the decision recorded
//! for it answers any retry of the same id without re-applying the event.
//! Like the log, the window is modelled as durable (it is conceptually the
//! tail of the decision journal riding the replicated log), so a retry that
//! arrives after a crash-and-recover cannot double-apply a floor event.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dmps_floor::arbiter::ArbiterStats;
use dmps_floor::snapshot::EventOutcome;
use dmps_floor::{ArbiterEvent, ArbiterSnapshot, ArbitrationOutcome, FloorArbiter, FloorRequest};

use crate::error::{ClusterError, Result};
use crate::ring::ShardId;

/// Cluster-wide identifier of a group (stable across shard moves, unlike the
/// dense per-arbiter [`dmps_floor::GroupId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalGroupId(pub u64);

impl fmt::Display for GlobalGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Cluster-wide identifier of a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalMemberId(pub u64);

impl fmt::Display for GlobalMemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// The append-only event log of one shard, with prefix compaction.
///
/// Event `i` of the shard's history has sequence number `i`; after
/// compaction the log keeps only events `base..`, the rest being covered by
/// a snapshot.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    base: u64,
    events: Vec<ArbiterEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Sequence number the next appended event receives.
    pub fn next_seq(&self) -> u64 {
        self.base + self.events.len() as u64
    }

    /// Sequence number of the oldest retained event.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of retained events.
    pub fn retained(&self) -> usize {
        self.events.len()
    }

    /// Appends an event, returning its sequence number.
    pub fn append(&mut self, event: ArbiterEvent) -> u64 {
        let seq = self.next_seq();
        self.events.push(event);
        seq
    }

    /// The retained events starting at `from_seq`.
    ///
    /// # Panics
    ///
    /// Panics when `from_seq` precedes the compaction base — those events no
    /// longer exist and the caller should have used a newer snapshot.
    pub fn suffix(&self, from_seq: u64) -> &[ArbiterEvent] {
        assert!(
            from_seq >= self.base,
            "log suffix from {} requested but events before {} were compacted",
            from_seq,
            self.base
        );
        let start = (from_seq - self.base) as usize;
        &self.events[start.min(self.events.len())..]
    }

    /// Drops every event before `seq` (they are covered by a snapshot).
    pub fn compact_to(&mut self, seq: u64) {
        if seq <= self.base {
            return;
        }
        let drop = ((seq - self.base) as usize).min(self.events.len());
        self.events.drain(..drop);
        self.base += drop as u64;
    }
}

/// A bounded map of recently decided request ids → outcomes: the shard side
/// of gateway retransmission.
///
/// Recording is windowed (oldest entries evicted first) so memory stays
/// bounded; the window only needs to outlast the gateways' retry horizon.
/// A capacity of zero disables dedup entirely. Entries remember which
/// global group they decided for, so a group migration can carry its slice
/// of the journal to the new owning shard ([`DedupWindow::extract_group`])
/// and retries keep replaying instead of double-applying.
#[derive(Debug, Clone, Default)]
pub struct DedupWindow {
    capacity: usize,
    order: VecDeque<u64>,
    outcomes: BTreeMap<u64, (GlobalGroupId, ArbitrationOutcome)>,
}

impl DedupWindow {
    /// A window retaining the last `capacity` decisions.
    pub fn new(capacity: usize) -> Self {
        DedupWindow {
            capacity,
            order: VecDeque::new(),
            outcomes: BTreeMap::new(),
        }
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the window holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The decision recorded for a request id, if still in the window.
    pub fn get(&self, id: u64) -> Option<&ArbitrationOutcome> {
        self.outcomes.get(&id).map(|(_, outcome)| outcome)
    }

    /// Records a decision, evicting the oldest entries when over capacity.
    pub fn record(&mut self, id: u64, group: GlobalGroupId, outcome: ArbitrationOutcome) {
        if self.capacity == 0 || self.outcomes.contains_key(&id) {
            return;
        }
        // The order queue may hold ids already extracted by a migration, so
        // evict until an actual entry made room (or the queue is exhausted).
        while self.outcomes.len() >= self.capacity {
            let Some(evicted) = self.order.pop_front() else {
                break;
            };
            self.outcomes.remove(&evicted);
        }
        self.order.push_back(id);
        self.outcomes.insert(id, (group, outcome));
    }

    /// Removes and returns every journaled decision for `group` — the
    /// migration path: the entries follow the group to its new shard.
    pub fn extract_group(&mut self, group: GlobalGroupId) -> Vec<(u64, ArbitrationOutcome)> {
        let ids: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|(_, (g, _))| *g == group)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| {
                let (_, outcome) = self.outcomes.remove(&id).expect("listed above");
                (id, outcome)
            })
            .collect()
    }

    /// Installs journal entries extracted from another shard's window.
    pub fn install(&mut self, group: GlobalGroupId, entries: Vec<(u64, ArbitrationOutcome)>) {
        for (id, outcome) in entries {
            self.record(id, group, outcome);
        }
    }
}

/// A read-only snapshot of a shard's health and counters, cheap enough to
/// ship out of the worker thread that owns the [`Shard`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardView {
    /// The shard id.
    pub id: ShardId,
    /// Current liveness.
    pub state: ShardState,
    /// How many times a standby recovered the shard.
    pub recoveries: u64,
    /// Sequence number of the oldest retained log event.
    pub log_base: u64,
    /// Number of retained log events.
    pub log_retained: usize,
    /// Whether a snapshot has been taken.
    pub has_snapshot: bool,
    /// Number of decisions currently in the dedup window.
    pub dedup_entries: usize,
    /// Aggregate floor statistics of the shard's arbiter.
    pub stats: ArbiterStats,
}

/// Liveness of a shard's primary process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The primary is serving requests.
    Active,
    /// The primary crashed; the log and snapshot survive but no requests are
    /// served until a standby recovers.
    Failed,
}

/// A shard: the unit of horizontal scale of the control plane.
#[derive(Debug)]
pub struct Shard {
    id: ShardId,
    state: ShardState,
    arbiter: FloorArbiter,
    log: EventLog,
    snapshot: Option<ArbiterSnapshot>,
    snapshot_every: u64,
    dedup: DedupWindow,
    recoveries: u64,
}

impl Shard {
    /// Creates an active shard that snapshots every `snapshot_every` events
    /// (0 disables automatic snapshots) and remembers the last
    /// `dedup_window` arbitration decisions for retry dedup (0 disables).
    pub fn new(id: ShardId, snapshot_every: u64, dedup_window: usize) -> Self {
        Shard {
            id,
            state: ShardState::Active,
            arbiter: FloorArbiter::with_defaults(),
            log: EventLog::new(),
            snapshot: None,
            snapshot_every,
            dedup: DedupWindow::new(dedup_window),
            recoveries: 0,
        }
    }

    /// The shard id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// Current liveness.
    pub fn state(&self) -> ShardState {
        self.state
    }

    /// Whether the shard is serving.
    pub fn is_active(&self) -> bool {
        self.state == ShardState::Active
    }

    /// Read access to the arbiter (inspection only).
    pub fn arbiter(&self) -> &FloorArbiter {
        &self.arbiter
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The latest snapshot, if one was taken.
    pub fn latest_snapshot(&self) -> Option<&ArbiterSnapshot> {
        self.snapshot.as_ref()
    }

    /// How many times a standby recovered this shard.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The dedup window (recently decided request ids).
    pub fn dedup(&self) -> &DedupWindow {
        &self.dedup
    }

    /// A cheap, owned snapshot of the shard's health and counters.
    pub fn view(&self) -> ShardView {
        ShardView {
            id: self.id,
            state: self.state,
            recoveries: self.recoveries,
            log_base: self.log.base(),
            log_retained: self.log.retained(),
            has_snapshot: self.snapshot.is_some(),
            dedup_entries: self.dedup.len(),
            stats: self.arbiter.stats(),
        }
    }

    /// Applies an event through the log: the event is validated against the
    /// live arbiter, appended to the durable log, and a snapshot is taken on
    /// the configured cadence.
    ///
    /// Events that *fail* (unknown ids, policy misuse) are **not** logged —
    /// they did not mutate state, so replaying them is unnecessary; this also
    /// keeps replay infallible.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed, or the
    /// underlying floor error.
    pub fn apply(&mut self, event: ArbiterEvent) -> Result<EventOutcome> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        let outcome = self.arbiter.apply(&event)?;
        let seq = self.log.append(event) + 1;
        if self.snapshot_every > 0 && seq.is_multiple_of(self.snapshot_every) {
            self.take_snapshot();
        }
        Ok(outcome)
    }

    /// Arbitrates a floor request idempotently: `id` is the cluster-unique
    /// request id, and a retry of an id whose decision is still in the dedup
    /// window gets the recorded decision back (second tuple element `true`)
    /// without the event being applied again.
    ///
    /// Only *applied* arbitrations are journaled: a request refused because
    /// the shard is down, or rejected by the arbiter without mutating state,
    /// is safe (and meaningful) to re-run, so retries of those re-arbitrate.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed, or the
    /// underlying floor error.
    pub fn arbitrate_dedup(
        &mut self,
        id: u64,
        group: GlobalGroupId,
        request: FloorRequest,
    ) -> (Result<ArbitrationOutcome>, bool) {
        if self.state != ShardState::Active {
            return (Err(ClusterError::ShardDown(self.id)), false);
        }
        if let Some(outcome) = self.dedup.get(id) {
            return (Ok(outcome.clone()), true);
        }
        match self.apply(ArbiterEvent::Arbitrate { request }) {
            Ok(EventOutcome::Arbitrated(outcome)) => {
                self.dedup.record(id, group, outcome.clone());
                (Ok(outcome), false)
            }
            Ok(_) => unreachable!("Arbitrate yields Arbitrated"),
            Err(e) => (Err(e), false),
        }
    }

    /// Removes and returns the journaled decisions for a group (the shard is
    /// losing the group to a migration; the entries must follow it).
    pub fn extract_dedup(&mut self, group: GlobalGroupId) -> Vec<(u64, ArbitrationOutcome)> {
        self.dedup.extract_group(group)
    }

    /// Installs journal entries for a group this shard is taking over.
    pub fn install_dedup(&mut self, group: GlobalGroupId, entries: Vec<(u64, ArbitrationOutcome)>) {
        self.dedup.install(group, entries);
    }

    /// Takes a snapshot of the current state now and compacts the log up to
    /// it.
    pub fn take_snapshot(&mut self) -> &ArbiterSnapshot {
        let snap = self.arbiter.snapshot(self.log.next_seq());
        self.log.compact_to(snap.applied_seq);
        self.snapshot = Some(snap);
        self.snapshot.as_ref().expect("just stored")
    }

    /// Crashes the primary: volatile arbiter state is lost; log, snapshot and
    /// dedup window (durable, replicated — the window is the tail of the
    /// decision journal) survive.
    pub fn crash(&mut self) {
        self.state = ShardState::Failed;
        self.arbiter = FloorArbiter::with_defaults();
    }

    /// A standby takes over: restore the latest snapshot, replay the log
    /// suffix, resume serving.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Floor`] when the snapshot is corrupt or a
    /// logged event fails to re-apply (either indicates durable-state
    /// corruption, not a recoverable condition).
    pub fn recover(&mut self) -> Result<()> {
        let (mut arbiter, from_seq) = match &self.snapshot {
            Some(snap) => (FloorArbiter::restore(snap)?, snap.applied_seq),
            None => (FloorArbiter::with_defaults(), 0),
        };
        for event in self.log.suffix(from_seq) {
            arbiter.apply(event)?;
        }
        self.arbiter = arbiter;
        self.state = ShardState::Active;
        self.recoveries += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::{FcmMode, FloorRequest, GroupId, Member, MemberId, Role};

    fn scripted(shard: &mut Shard, requests: usize) {
        shard
            .apply(ArbiterEvent::CreateGroup {
                name: "g".into(),
                mode: FcmMode::EqualControl,
            })
            .unwrap();
        for i in 0..4 {
            shard
                .apply(ArbiterEvent::AddMember {
                    group: GroupId(0),
                    member: Member::new(format!("m{i}"), Role::Participant),
                })
                .unwrap();
        }
        for i in 0..requests {
            shard
                .apply(ArbiterEvent::Arbitrate {
                    request: FloorRequest::speak(GroupId(0), MemberId(i % 4)),
                })
                .unwrap();
        }
    }

    #[test]
    fn crash_and_recover_reconstructs_state_exactly() {
        let mut shard = Shard::new(ShardId(0), 8, 64);
        scripted(&mut shard, 20);
        let reference = shard.arbiter().clone();
        assert!(shard.latest_snapshot().is_some(), "cadence snapshots taken");
        shard.crash();
        assert!(!shard.is_active());
        assert!(matches!(
            shard.apply(ArbiterEvent::CreateGroup {
                name: "x".into(),
                mode: FcmMode::FreeAccess
            }),
            Err(ClusterError::ShardDown(_))
        ));
        shard.recover().unwrap();
        assert!(shard.is_active());
        assert_eq!(shard.arbiter(), &reference);
        assert_eq!(shard.recoveries(), 1);
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn recovery_works_without_any_snapshot() {
        let mut shard = Shard::new(ShardId(1), 0, 64);
        scripted(&mut shard, 5);
        let reference = shard.arbiter().clone();
        assert!(shard.latest_snapshot().is_none());
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn failed_events_are_not_logged() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 1);
        let retained = shard.log().retained();
        // Unknown group: the arbiter rejects it, so the log must not grow —
        // replay would otherwise fail.
        let err = shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(99), MemberId(0)),
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Floor(_)));
        assert_eq!(shard.log().retained(), retained);
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn log_compaction_keeps_recovery_correct() {
        let mut shard = Shard::new(ShardId(2), 4, 64);
        scripted(&mut shard, 30);
        // Compaction happened: the log no longer starts at zero.
        assert!(shard.log().base() > 0);
        assert!(shard.log().retained() < 35);
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn event_log_suffix_and_compaction_bounds() {
        let mut log = EventLog::new();
        for i in 0..6 {
            log.append(ArbiterEvent::CreateGroup {
                name: format!("g{i}"),
                mode: FcmMode::FreeAccess,
            });
        }
        assert_eq!(log.next_seq(), 6);
        assert_eq!(log.suffix(4).len(), 2);
        log.compact_to(4);
        assert_eq!(log.base(), 4);
        assert_eq!(log.retained(), 2);
        assert_eq!(log.suffix(4).len(), 2);
        assert_eq!(log.suffix(6).len(), 0);
        // Compacting backwards is a no-op.
        log.compact_to(2);
        assert_eq!(log.base(), 4);
    }

    #[test]
    fn duplicate_request_ids_replay_without_reapplying() {
        let mut shard = Shard::new(ShardId(0), 0, 64);
        scripted(&mut shard, 0);
        let speak = FloorRequest::speak(GroupId(0), MemberId(0));
        let (first, replayed) = shard.arbitrate_dedup(7, GlobalGroupId(0), speak.clone());
        assert!(!replayed);
        let first = first.unwrap();
        assert!(first.is_granted());
        let logged = shard.log().retained();
        let stats = shard.arbiter().stats();
        // The retry answers from the journal: same outcome, no new log event,
        // no stats movement.
        let (second, replayed) = shard.arbitrate_dedup(7, GlobalGroupId(0), speak.clone());
        assert!(replayed);
        assert_eq!(second.unwrap(), first);
        assert_eq!(shard.log().retained(), logged);
        assert_eq!(shard.arbiter().stats(), stats);
        // A fresh id applies normally (queued behind the holder).
        let (third, replayed) = shard.arbitrate_dedup(
            8,
            GlobalGroupId(0),
            FloorRequest::speak(GroupId(0), MemberId(1)),
        );
        assert!(!replayed);
        assert!(matches!(third.unwrap(), ArbitrationOutcome::Queued { .. }));
    }

    #[test]
    fn dedup_window_survives_crash_and_recovery() {
        let mut shard = Shard::new(ShardId(0), 4, 64);
        scripted(&mut shard, 0);
        let speak = FloorRequest::speak(GroupId(0), MemberId(0));
        let (first, _) = shard.arbitrate_dedup(42, GlobalGroupId(0), speak.clone());
        let first = first.unwrap();
        shard.crash();
        // While down, even a duplicate is refused — nothing serves.
        let (down, replayed) = shard.arbitrate_dedup(42, GlobalGroupId(0), speak.clone());
        assert!(matches!(down, Err(ClusterError::ShardDown(_))));
        assert!(!replayed);
        shard.recover().unwrap();
        // After recovery the journaled decision still answers the retry, so
        // the event cannot double-apply.
        let granted_before = shard.arbiter().stats().granted;
        let (after, replayed) = shard.arbitrate_dedup(42, GlobalGroupId(0), speak);
        assert!(replayed);
        assert_eq!(after.unwrap(), first);
        assert_eq!(shard.arbiter().stats().granted, granted_before);
    }

    #[test]
    fn dedup_window_is_bounded_and_evicts_oldest() {
        let mut window = DedupWindow::new(2);
        let outcome = ArbitrationOutcome::Granted {
            speakers: vec![MemberId(0)],
            suspensions: vec![],
        };
        window.record(1, GlobalGroupId(0), outcome.clone());
        window.record(2, GlobalGroupId(0), outcome.clone());
        window.record(3, GlobalGroupId(1), outcome.clone());
        assert_eq!(window.len(), 2);
        assert!(window.get(1).is_none(), "oldest entry evicted");
        assert!(window.get(2).is_some() && window.get(3).is_some());
        // Re-recording an existing id neither grows nor reorders the window.
        window.record(2, GlobalGroupId(0), outcome.clone());
        assert_eq!(window.len(), 2);
        // Capacity zero disables recording entirely.
        let mut off = DedupWindow::new(0);
        off.record(1, GlobalGroupId(0), outcome);
        assert!(off.is_empty());
    }
}
