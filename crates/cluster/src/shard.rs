//! One shard: a [`FloorArbiter`] behind an append-only event log with
//! periodic snapshots.
//!
//! The log models the shard's replicated durable state (in a real deployment
//! it would live on a quorum of log servers); the arbiter is the volatile
//! in-memory state of the shard's primary process. A crash discards the
//! arbiter; recovery restores the latest [`ArbiterSnapshot`] and replays the
//! log suffix, which — because [`FloorArbiter::apply`] is deterministic —
//! reconstructs the pre-crash state exactly.

use std::fmt;

use dmps_floor::snapshot::EventOutcome;
use dmps_floor::{ArbiterEvent, ArbiterSnapshot, FloorArbiter};

use crate::error::{ClusterError, Result};
use crate::ring::ShardId;

/// Cluster-wide identifier of a group (stable across shard moves, unlike the
/// dense per-arbiter [`dmps_floor::GroupId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalGroupId(pub u64);

impl fmt::Display for GlobalGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Cluster-wide identifier of a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalMemberId(pub u64);

impl fmt::Display for GlobalMemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// The append-only event log of one shard, with prefix compaction.
///
/// Event `i` of the shard's history has sequence number `i`; after
/// compaction the log keeps only events `base..`, the rest being covered by
/// a snapshot.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    base: u64,
    events: Vec<ArbiterEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Sequence number the next appended event receives.
    pub fn next_seq(&self) -> u64 {
        self.base + self.events.len() as u64
    }

    /// Sequence number of the oldest retained event.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of retained events.
    pub fn retained(&self) -> usize {
        self.events.len()
    }

    /// Appends an event, returning its sequence number.
    pub fn append(&mut self, event: ArbiterEvent) -> u64 {
        let seq = self.next_seq();
        self.events.push(event);
        seq
    }

    /// The retained events starting at `from_seq`.
    ///
    /// # Panics
    ///
    /// Panics when `from_seq` precedes the compaction base — those events no
    /// longer exist and the caller should have used a newer snapshot.
    pub fn suffix(&self, from_seq: u64) -> &[ArbiterEvent] {
        assert!(
            from_seq >= self.base,
            "log suffix from {} requested but events before {} were compacted",
            from_seq,
            self.base
        );
        let start = (from_seq - self.base) as usize;
        &self.events[start.min(self.events.len())..]
    }

    /// Drops every event before `seq` (they are covered by a snapshot).
    pub fn compact_to(&mut self, seq: u64) {
        if seq <= self.base {
            return;
        }
        let drop = ((seq - self.base) as usize).min(self.events.len());
        self.events.drain(..drop);
        self.base += drop as u64;
    }
}

/// Liveness of a shard's primary process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The primary is serving requests.
    Active,
    /// The primary crashed; the log and snapshot survive but no requests are
    /// served until a standby recovers.
    Failed,
}

/// A shard: the unit of horizontal scale of the control plane.
#[derive(Debug)]
pub struct Shard {
    id: ShardId,
    state: ShardState,
    arbiter: FloorArbiter,
    log: EventLog,
    snapshot: Option<ArbiterSnapshot>,
    snapshot_every: u64,
    recoveries: u64,
}

impl Shard {
    /// Creates an active shard that snapshots every `snapshot_every` events
    /// (0 disables automatic snapshots).
    pub fn new(id: ShardId, snapshot_every: u64) -> Self {
        Shard {
            id,
            state: ShardState::Active,
            arbiter: FloorArbiter::with_defaults(),
            log: EventLog::new(),
            snapshot: None,
            snapshot_every,
            recoveries: 0,
        }
    }

    /// The shard id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// Current liveness.
    pub fn state(&self) -> ShardState {
        self.state
    }

    /// Whether the shard is serving.
    pub fn is_active(&self) -> bool {
        self.state == ShardState::Active
    }

    /// Read access to the arbiter (inspection only).
    pub fn arbiter(&self) -> &FloorArbiter {
        &self.arbiter
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The latest snapshot, if one was taken.
    pub fn latest_snapshot(&self) -> Option<&ArbiterSnapshot> {
        self.snapshot.as_ref()
    }

    /// How many times a standby recovered this shard.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Applies an event through the log: the event is validated against the
    /// live arbiter, appended to the durable log, and a snapshot is taken on
    /// the configured cadence.
    ///
    /// Events that *fail* (unknown ids, policy misuse) are **not** logged —
    /// they did not mutate state, so replaying them is unnecessary; this also
    /// keeps replay infallible.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed, or the
    /// underlying floor error.
    pub fn apply(&mut self, event: ArbiterEvent) -> Result<EventOutcome> {
        if self.state != ShardState::Active {
            return Err(ClusterError::ShardDown(self.id));
        }
        let outcome = self.arbiter.apply(&event)?;
        let seq = self.log.append(event) + 1;
        if self.snapshot_every > 0 && seq.is_multiple_of(self.snapshot_every) {
            self.take_snapshot();
        }
        Ok(outcome)
    }

    /// Takes a snapshot of the current state now and compacts the log up to
    /// it.
    pub fn take_snapshot(&mut self) -> &ArbiterSnapshot {
        let snap = self.arbiter.snapshot(self.log.next_seq());
        self.log.compact_to(snap.applied_seq);
        self.snapshot = Some(snap);
        self.snapshot.as_ref().expect("just stored")
    }

    /// Crashes the primary: volatile arbiter state is lost; log and snapshot
    /// (durable, replicated) survive.
    pub fn crash(&mut self) {
        self.state = ShardState::Failed;
        self.arbiter = FloorArbiter::with_defaults();
    }

    /// A standby takes over: restore the latest snapshot, replay the log
    /// suffix, resume serving.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Floor`] when the snapshot is corrupt or a
    /// logged event fails to re-apply (either indicates durable-state
    /// corruption, not a recoverable condition).
    pub fn recover(&mut self) -> Result<()> {
        let (mut arbiter, from_seq) = match &self.snapshot {
            Some(snap) => (FloorArbiter::restore(snap)?, snap.applied_seq),
            None => (FloorArbiter::with_defaults(), 0),
        };
        for event in self.log.suffix(from_seq) {
            arbiter.apply(event)?;
        }
        self.arbiter = arbiter;
        self.state = ShardState::Active;
        self.recoveries += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::{FcmMode, FloorRequest, GroupId, Member, MemberId, Role};

    fn scripted(shard: &mut Shard, requests: usize) {
        shard
            .apply(ArbiterEvent::CreateGroup {
                name: "g".into(),
                mode: FcmMode::EqualControl,
            })
            .unwrap();
        for i in 0..4 {
            shard
                .apply(ArbiterEvent::AddMember {
                    group: GroupId(0),
                    member: Member::new(format!("m{i}"), Role::Participant),
                })
                .unwrap();
        }
        for i in 0..requests {
            shard
                .apply(ArbiterEvent::Arbitrate {
                    request: FloorRequest::speak(GroupId(0), MemberId(i % 4)),
                })
                .unwrap();
        }
    }

    #[test]
    fn crash_and_recover_reconstructs_state_exactly() {
        let mut shard = Shard::new(ShardId(0), 8);
        scripted(&mut shard, 20);
        let reference = shard.arbiter().clone();
        assert!(shard.latest_snapshot().is_some(), "cadence snapshots taken");
        shard.crash();
        assert!(!shard.is_active());
        assert!(matches!(
            shard.apply(ArbiterEvent::CreateGroup {
                name: "x".into(),
                mode: FcmMode::FreeAccess
            }),
            Err(ClusterError::ShardDown(_))
        ));
        shard.recover().unwrap();
        assert!(shard.is_active());
        assert_eq!(shard.arbiter(), &reference);
        assert_eq!(shard.recoveries(), 1);
        shard.arbiter().check_invariants().unwrap();
    }

    #[test]
    fn recovery_works_without_any_snapshot() {
        let mut shard = Shard::new(ShardId(1), 0);
        scripted(&mut shard, 5);
        let reference = shard.arbiter().clone();
        assert!(shard.latest_snapshot().is_none());
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn failed_events_are_not_logged() {
        let mut shard = Shard::new(ShardId(0), 0);
        scripted(&mut shard, 1);
        let retained = shard.log().retained();
        // Unknown group: the arbiter rejects it, so the log must not grow —
        // replay would otherwise fail.
        let err = shard
            .apply(ArbiterEvent::Arbitrate {
                request: FloorRequest::speak(GroupId(99), MemberId(0)),
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Floor(_)));
        assert_eq!(shard.log().retained(), retained);
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn log_compaction_keeps_recovery_correct() {
        let mut shard = Shard::new(ShardId(2), 4);
        scripted(&mut shard, 30);
        // Compaction happened: the log no longer starts at zero.
        assert!(shard.log().base() > 0);
        assert!(shard.log().retained() < 35);
        let reference = shard.arbiter().clone();
        shard.crash();
        shard.recover().unwrap();
        assert_eq!(shard.arbiter(), &reference);
    }

    #[test]
    fn event_log_suffix_and_compaction_bounds() {
        let mut log = EventLog::new();
        for i in 0..6 {
            log.append(ArbiterEvent::CreateGroup {
                name: format!("g{i}"),
                mode: FcmMode::FreeAccess,
            });
        }
        assert_eq!(log.next_seq(), 6);
        assert_eq!(log.suffix(4).len(), 2);
        log.compact_to(4);
        assert_eq!(log.base(), 4);
        assert_eq!(log.retained(), 2);
        assert_eq!(log.suffix(4).len(), 2);
        assert_eq!(log.suffix(6).len(), 0);
        // Compacting backwards is a no-op.
        log.compact_to(2);
        assert_eq!(log.base(), 4);
    }
}
