//! The federation: a consistent-hash router over many shards.
//!
//! The [`Cluster`] owns the shard set, the group/member directory, and the
//! per-shard request batches. Groups are placed by consistent hashing on
//! their [`GlobalGroupId`]; requests are translated to the owning shard's
//! dense local ids, batched per shard, and applied in submission order —
//! either sequentially ([`Cluster::flush`]) or with one worker per shard
//! ([`Cluster::flush_parallel`], the scaling path the `shard_scaling` bench
//! measures).

use std::collections::BTreeMap;

use dmps_floor::arbiter::ArbiterStats;
use dmps_floor::snapshot::EventOutcome;
use dmps_floor::{
    ArbiterEvent, ArbitrationOutcome, FcmMode, FloorRequest, GroupId, InvitationStatus, Member,
    MemberId, RequestKind, Resource,
};

use crate::error::{ClusterError, Result};
use crate::ring::{HashRing, ShardId};
use crate::shard::{GlobalGroupId, GlobalMemberId, Shard};

/// Sizing and durability knobs of a cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Snapshot cadence per shard (events between snapshots; 0 disables).
    pub snapshot_every: u64,
}

impl ClusterConfig {
    /// A config with `shards` shards and the default ring/durability knobs.
    pub fn with_shards(shards: usize) -> Self {
        ClusterConfig {
            shards,
            vnodes: 64,
            snapshot_every: 256,
        }
    }
}

/// Where a group currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPlacement {
    /// The owning shard.
    pub shard: ShardId,
    /// The group's dense id inside that shard's arbiter.
    pub local: GroupId,
    /// The parent group for sub-groups spawned by invitation (may live on a
    /// different shard — that is the point of cross-shard invitations).
    pub parent: Option<GlobalGroupId>,
}

#[derive(Debug, Clone)]
struct MemberRecord {
    template: Member,
    /// The member's dense id on every shard it has been instantiated on.
    locals: BTreeMap<ShardId, MemberId>,
}

/// A cluster-level invitation (parent and sub-group may be on different
/// shards).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInvitation {
    /// The inviting member.
    pub from: GlobalMemberId,
    /// The invited member.
    pub to: GlobalMemberId,
    /// The sub-group spawned for the invitation.
    pub subgroup: GlobalGroupId,
    /// Current status.
    pub status: InvitationStatus,
}

/// A floor request addressed with cluster-wide ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalRequest {
    /// The group the request concerns.
    pub group: GlobalGroupId,
    /// The requesting member.
    pub member: GlobalMemberId,
    /// What the member wants to do.
    pub kind: GlobalRequestKind,
}

impl GlobalRequest {
    /// A speak request.
    pub fn speak(group: GlobalGroupId, member: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::Speak,
        }
    }

    /// A release-floor request.
    pub fn release_floor(group: GlobalGroupId, member: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::ReleaseFloor,
        }
    }

    /// A pass-floor request.
    pub fn pass_floor(group: GlobalGroupId, member: GlobalMemberId, to: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::PassFloor { to },
        }
    }

    /// A direct-contact request.
    pub fn direct_contact(
        group: GlobalGroupId,
        member: GlobalMemberId,
        to: GlobalMemberId,
    ) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::DirectContact { to },
        }
    }
}

/// The request kinds, addressed with cluster-wide member ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalRequestKind {
    /// Deliver under the group's mode.
    Speak,
    /// Open a direct-contact channel.
    DirectContact {
        /// The destination member.
        to: GlobalMemberId,
    },
    /// Release the floor token.
    ReleaseFloor,
    /// Pass the floor token.
    PassFloor {
        /// The member to pass to.
        to: GlobalMemberId,
    },
}

/// The arbitration decision for one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Submission sequence number (from [`Cluster::submit`]).
    pub seq: u64,
    /// The group the request addressed.
    pub group: GlobalGroupId,
    /// The outcome, or the routing/shard error that prevented arbitration.
    pub outcome: Result<ArbitrationOutcome>,
}

/// The sharded multi-arbiter control plane.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    ring: HashRing,
    shards: Vec<Shard>,
    groups: BTreeMap<GlobalGroupId, GroupPlacement>,
    members: BTreeMap<GlobalMemberId, MemberRecord>,
    /// Reverse directory: which global member a shard-local id belongs to.
    locals: BTreeMap<(ShardId, MemberId), GlobalMemberId>,
    invitations: Vec<ClusterInvitation>,
    batches: Vec<Vec<(u64, GlobalGroupId, FloorRequest)>>,
    next_group: u64,
    next_member: u64,
    next_seq: u64,
}

impl Cluster {
    /// Builds a cluster of `config.shards` active shards.
    pub fn new(config: ClusterConfig) -> Self {
        let ring = HashRing::new(config.shards, config.vnodes);
        let shards = (0..config.shards)
            .map(|i| Shard::new(ShardId(i), config.snapshot_every))
            .collect::<Vec<_>>();
        let batches = (0..config.shards).map(|_| Vec::new()).collect();
        Cluster {
            config,
            ring,
            shards,
            groups: BTreeMap::new(),
            members: BTreeMap::new(),
            locals: BTreeMap::new(),
            invitations: Vec::new(),
            batches,
            next_group: 0,
            next_member: 0,
            next_seq: 0,
        }
    }

    // ----- introspection ----------------------------------------------------

    /// Number of shards (active or failed).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of groups in the directory.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of registered members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The shard with the given id.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn shard(&self, id: ShardId) -> &Shard {
        &self.shards[id.0]
    }

    /// Where a group currently lives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn placement(&self, group: GlobalGroupId) -> Result<GroupPlacement> {
        self.groups
            .get(&group)
            .copied()
            .ok_or(ClusterError::UnknownGroup(group))
    }

    /// Aggregate floor statistics per shard.
    pub fn shard_stats(&self) -> Vec<(ShardId, ArbiterStats)> {
        self.shards
            .iter()
            .map(|s| (s.id(), s.arbiter().stats()))
            .collect()
    }

    /// Every group owned by a shard.
    pub fn groups_on(&self, shard: ShardId) -> Vec<GlobalGroupId> {
        self.groups
            .iter()
            .filter(|(_, p)| p.shard == shard)
            .map(|(&g, _)| g)
            .collect()
    }

    /// The cluster-level invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: u64) -> Result<&ClusterInvitation> {
        self.invitations
            .get(id as usize)
            .ok_or(ClusterError::UnknownInvitation(id))
    }

    // ----- membership and groups -------------------------------------------

    /// Registers a member with the cluster directory. The member is
    /// instantiated on shards lazily, the first time it joins a group there.
    pub fn register_member(&mut self, template: Member) -> GlobalMemberId {
        let id = GlobalMemberId(self.next_member);
        self.next_member += 1;
        self.members.insert(
            id,
            MemberRecord {
                template,
                locals: BTreeMap::new(),
            },
        );
        id
    }

    /// Creates a top-level group, placed by consistent hashing.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the owning shard is failed.
    pub fn create_group(
        &mut self,
        name: impl Into<String>,
        mode: FcmMode,
    ) -> Result<GlobalGroupId> {
        let id = GlobalGroupId(self.next_group);
        let shard = self.ring.shard_for(id.0);
        self.create_group_on(id, shard, name, mode, None)?;
        self.next_group += 1;
        Ok(id)
    }

    fn create_group_on(
        &mut self,
        id: GlobalGroupId,
        shard: ShardId,
        name: impl Into<String>,
        mode: FcmMode,
        parent: Option<GlobalGroupId>,
    ) -> Result<()> {
        let outcome = self.shards[shard.0].apply(ArbiterEvent::CreateGroup {
            name: name.into(),
            mode,
        })?;
        let EventOutcome::GroupCreated(local) = outcome else {
            unreachable!("CreateGroup yields GroupCreated");
        };
        self.groups.insert(
            id,
            GroupPlacement {
                shard,
                local,
                parent,
            },
        );
        Ok(())
    }

    /// Ensures the member exists on the shard (instantiating it into `group`
    /// if it is new there) and returns its local id.
    fn ensure_on_shard(
        &mut self,
        member: GlobalMemberId,
        shard: ShardId,
        group: GroupId,
    ) -> Result<MemberId> {
        let record = self
            .members
            .get(&member)
            .ok_or(ClusterError::UnknownMember(member))?;
        if let Some(&local) = record.locals.get(&shard) {
            self.shards[shard.0].apply(ArbiterEvent::JoinGroup {
                group,
                member: local,
            })?;
            return Ok(local);
        }
        let template = record.template.clone();
        let outcome = self.shards[shard.0].apply(ArbiterEvent::AddMember {
            group,
            member: template,
        })?;
        let EventOutcome::MemberAdded(local) = outcome else {
            unreachable!("AddMember yields MemberAdded");
        };
        self.members
            .get_mut(&member)
            .expect("checked above")
            .locals
            .insert(shard, local);
        self.locals.insert((shard, local), member);
        Ok(local)
    }

    /// Adds a member to a group (instantiating it on the owning shard if
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn join_group(&mut self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        let placement = self.placement(group)?;
        self.ensure_on_shard(member, placement.shard, placement.local)?;
        Ok(())
    }

    /// Removes a member from a group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn leave_group(&mut self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        let placement = self.placement(group)?;
        let local = self.local_member(member, placement.shard)?;
        self.shards[placement.shard.0].apply(ArbiterEvent::LeaveGroup {
            group: placement.local,
            member: local,
        })?;
        Ok(())
    }

    fn local_member(&self, member: GlobalMemberId, shard: ShardId) -> Result<MemberId> {
        self.members
            .get(&member)
            .ok_or(ClusterError::UnknownMember(member))?
            .locals
            .get(&shard)
            .copied()
            .ok_or(ClusterError::NotOnShard { member, shard })
    }

    /// Updates the resource snapshot of one shard (each shard host measures
    /// its own Network × CPU × Memory availability).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed.
    pub fn set_shard_resource(&mut self, shard: ShardId, resource: Resource) -> Result<()> {
        self.shards[shard.0].apply(ArbiterEvent::SetResource { resource })?;
        Ok(())
    }

    // ----- cross-shard invitations -----------------------------------------

    /// A member invites another into a new private sub-group (Group
    /// Discussion / Direct Contact). The sub-group is placed by consistent
    /// hashing — typically on a *different* shard than the parent, which is
    /// what lets breakout load spread across the cluster. Pass `target` to
    /// pin the placement explicitly.
    ///
    /// Both parties must be members of the parent group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors, [`ClusterError::Floor`] wrapping
    /// [`dmps_floor::FloorError::NotAMember`] when either party is not in the
    /// parent group, and shard-down errors.
    pub fn invite(
        &mut self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        let parent_placement = self.placement(parent)?;
        // Membership checks against the parent shard's arbiter.
        let parent_group = self.shards[parent_placement.shard.0]
            .arbiter()
            .group(parent_placement.local)?;
        for party in [from, to] {
            let local = self.local_member(party, parent_placement.shard)?;
            if !parent_group.contains(local) {
                return Err(ClusterError::Floor(dmps_floor::FloorError::NotAMember {
                    member: local,
                    group: parent_placement.local,
                }));
            }
        }
        let sub = GlobalGroupId(self.next_group);
        let shard = target.unwrap_or_else(|| self.ring.shard_for(sub.0));
        let from_name = self
            .members
            .get(&from)
            .expect("membership checked")
            .template
            .name
            .clone();
        self.create_group_on(
            sub,
            shard,
            format!("{from_name}-{mode}"),
            mode,
            Some(parent),
        )?;
        self.next_group += 1;
        // The inviter joins (and chairs, by first-join convention) the
        // sub-group immediately; the invitee joins on acceptance.
        let placement = self.groups[&sub];
        self.ensure_on_shard(from, placement.shard, placement.local)?;
        let invitation = self.invitations.len() as u64;
        self.invitations.push(ClusterInvitation {
            from,
            to,
            subgroup: sub,
            status: InvitationStatus::Pending,
        });
        Ok((sub, invitation))
    }

    /// The invitee answers a cluster-level invitation; accepting joins them
    /// to the sub-group on its (possibly remote) shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`],
    /// [`ClusterError::NotTheInvitee`], [`ClusterError::AlreadyAnswered`] and
    /// shard-down errors.
    pub fn respond_invitation(
        &mut self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        let inv = self
            .invitations
            .get(invitation as usize)
            .cloned()
            .ok_or(ClusterError::UnknownInvitation(invitation))?;
        if inv.to != responder {
            return Err(ClusterError::NotTheInvitee(responder));
        }
        if inv.status != InvitationStatus::Pending {
            return Err(ClusterError::AlreadyAnswered(invitation));
        }
        let status = if accept {
            self.join_group(inv.subgroup, responder)?;
            InvitationStatus::Accepted
        } else {
            InvitationStatus::Declined
        };
        self.invitations[invitation as usize].status = status;
        Ok(status)
    }

    // ----- request routing and batching ------------------------------------

    /// Translates a global request to the owning shard's local ids.
    fn translate(&self, request: &GlobalRequest) -> Result<(GroupPlacement, FloorRequest)> {
        let placement = self.placement(request.group)?;
        let member = self.local_member(request.member, placement.shard)?;
        let kind = match request.kind {
            GlobalRequestKind::Speak => RequestKind::Speak,
            GlobalRequestKind::ReleaseFloor => RequestKind::ReleaseFloor,
            GlobalRequestKind::PassFloor { to } => RequestKind::PassFloor {
                to: self.local_member(to, placement.shard)?,
            },
            GlobalRequestKind::DirectContact { to } => RequestKind::DirectContact {
                to: self.local_member(to, placement.shard)?,
            },
        };
        Ok((
            placement,
            FloorRequest {
                group: placement.local,
                member,
                kind,
            },
        ))
    }

    /// Enqueues a request into the owning shard's batch and returns its
    /// submission sequence number. Nothing is arbitrated until
    /// [`Cluster::flush`] / [`Cluster::flush_parallel`].
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn submit(&mut self, request: GlobalRequest) -> Result<u64> {
        let (placement, local) = self.translate(&request)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.batches[placement.shard.0].push((seq, request.group, local));
        Ok(seq)
    }

    /// Submits and immediately arbitrates one request (convenience wrapper
    /// for interactive paths; batched traffic should use [`Cluster::submit`]
    /// + flush).
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn request(&mut self, request: GlobalRequest) -> Result<ArbitrationOutcome> {
        let (placement, local) = self.translate(&request)?;
        let outcome =
            self.shards[placement.shard.0].apply(ArbiterEvent::Arbitrate { request: local })?;
        let EventOutcome::Arbitrated(outcome) = outcome else {
            unreachable!("Arbitrate yields Arbitrated");
        };
        Ok(outcome)
    }

    /// Number of requests waiting in shard batches.
    pub fn pending_requests(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    fn drain_batches(&mut self) -> Vec<Vec<(u64, GlobalGroupId, FloorRequest)>> {
        self.batches.iter_mut().map(std::mem::take).collect()
    }

    /// Applies every batched request shard by shard, returning the decisions
    /// sorted by submission order.
    pub fn flush(&mut self) -> Vec<Decision> {
        let batches = self.drain_batches();
        let mut decisions = Vec::new();
        for (shard, batch) in self.shards.iter_mut().zip(batches) {
            for (seq, group, request) in batch {
                decisions.push(Decision {
                    seq,
                    group,
                    outcome: shard
                        .apply(ArbiterEvent::Arbitrate { request })
                        .map(|o| match o {
                            EventOutcome::Arbitrated(outcome) => outcome,
                            _ => unreachable!("Arbitrate yields Arbitrated"),
                        }),
                });
            }
        }
        decisions.sort_by_key(|d| d.seq);
        decisions
    }

    /// Applies every batched request with one worker thread per shard —
    /// shards share nothing, so this is the linear-scaling path. Decisions
    /// come back sorted by submission order.
    pub fn flush_parallel(&mut self) -> Vec<Decision> {
        let batches = self.drain_batches();
        let mut decisions: Vec<Decision> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, batch) in self.shards.iter_mut().zip(batches) {
                if batch.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(seq, group, request)| Decision {
                            seq,
                            group,
                            outcome: shard.apply(ArbiterEvent::Arbitrate { request }).map(|o| {
                                match o {
                                    EventOutcome::Arbitrated(outcome) => outcome,
                                    _ => unreachable!("Arbitrate yields Arbitrated"),
                                }
                            }),
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                decisions.extend(handle.join().expect("shard worker panicked"));
            }
        });
        decisions.sort_by_key(|d| d.seq);
        decisions
    }

    // ----- failure and recovery --------------------------------------------

    /// Crashes a shard's primary process. Batched requests for the shard stay
    /// queued and fail with [`ClusterError::ShardDown`] if flushed before
    /// recovery.
    pub fn crash_shard(&mut self, shard: ShardId) {
        self.shards[shard.0].crash();
    }

    /// A standby recovers the shard from its snapshot + log.
    ///
    /// # Errors
    ///
    /// Propagates durable-state corruption as [`ClusterError::Floor`].
    pub fn recover_shard(&mut self, shard: ShardId) -> Result<()> {
        self.shards[shard.0].recover()
    }

    /// Whether a shard is serving.
    pub fn is_shard_active(&self, shard: ShardId) -> bool {
        self.shards[shard.0].is_active()
    }

    // ----- scale-out --------------------------------------------------------

    /// Adds a new shard to the ring and returns its id. Existing groups stay
    /// where they are until [`Cluster::rebalance_idle`] migrates the movable
    /// ones; new groups hash across the enlarged ring immediately.
    pub fn add_shard(&mut self) -> ShardId {
        let id = self.ring.add_shard();
        debug_assert_eq!(id.0, self.shards.len());
        self.shards.push(Shard::new(id, self.config.snapshot_every));
        self.batches.push(Vec::new());
        id
    }

    /// Migrates every group whose ring placement changed **and** whose floor
    /// state is idle (no token holder, no queued requesters) to its new
    /// shard. Active groups are pinned until they quiesce — moving a held
    /// token between arbiters would risk the very double-grant anomaly the
    /// failover machinery exists to prevent. Returns the migrated groups.
    ///
    /// Requests still batched for a migrated group keep routing to the old
    /// shard, where the group is left empty; they fail closed (aborted as
    /// not-joined) rather than double-granting. Flush before rebalancing to
    /// avoid that.
    ///
    /// # Errors
    ///
    /// Returns shard errors; on error, already-migrated groups stay migrated.
    pub fn rebalance_idle(&mut self) -> Result<Vec<GlobalGroupId>> {
        let candidates: Vec<(GlobalGroupId, GroupPlacement, ShardId)> = self
            .groups
            .iter()
            .filter_map(|(&g, &p)| {
                let target = self.ring.shard_for(g.0);
                (target != p.shard).then_some((g, p, target))
            })
            .collect();
        let mut migrated = Vec::new();
        for (group, placement, target) in candidates {
            if !self.shards[placement.shard.0].is_active() || !self.shards[target.0].is_active() {
                continue;
            }
            let arbiter = self.shards[placement.shard.0].arbiter();
            let token = arbiter.token(placement.local)?;
            if token.holder().is_some() || token.queue_len() > 0 {
                continue; // pinned: active floor state
            }
            let old = arbiter.group(placement.local)?.clone();
            // Map the group's local members back to global ids.
            let roster: Vec<GlobalMemberId> = old
                .members()
                .filter_map(|m| self.locals.get(&(placement.shard, m)).copied())
                .collect();
            // Re-create on the target shard and move the roster over.
            self.create_group_on(group, target, old.name.clone(), old.mode, placement.parent)?;
            let new_local = self.groups[&group].local;
            for member in &roster {
                self.ensure_on_shard(*member, target, new_local)?;
            }
            // Empty the husk on the old shard so stale routing fails closed.
            for member in &roster {
                let local = self.local_member(*member, placement.shard)?;
                self.shards[placement.shard.0].apply(ArbiterEvent::LeaveGroup {
                    group: placement.local,
                    member: local,
                })?;
            }
            migrated.push(group);
        }
        Ok(migrated)
    }

    // ----- invariants -------------------------------------------------------

    /// Checks the floor-state invariants on every active shard, plus the
    /// cluster-level ones: every directory entry points at an existing local
    /// group, and every global member maps to distinct local ids per shard.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for shard in &self.shards {
            if shard.is_active() {
                shard
                    .arbiter()
                    .check_invariants()
                    .map_err(|e| format!("{}: {e}", shard.id()))?;
            }
        }
        for (&g, &p) in &self.groups {
            if self.shards[p.shard.0].is_active()
                && self.shards[p.shard.0].arbiter().group(p.local).is_err()
            {
                return Err(format!(
                    "directory entry {g} points at missing {:?}",
                    p.local
                ));
            }
        }
        for (&m, record) in &self.members {
            for (&shard, &local) in &record.locals {
                if self.locals.get(&(shard, local)) != Some(&m) {
                    return Err(format!("reverse directory mismatch for {m} on {shard}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::Role;

    fn cluster_with_groups(
        shards: usize,
        groups: usize,
        members_per_group: usize,
        mode: FcmMode,
    ) -> (Cluster, Vec<GlobalGroupId>, Vec<Vec<GlobalMemberId>>) {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(shards));
        let mut gids = Vec::new();
        let mut rosters = Vec::new();
        for g in 0..groups {
            let gid = cluster.create_group(format!("lecture-{g}"), mode).unwrap();
            let mut roster = Vec::new();
            for m in 0..members_per_group {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).unwrap();
                roster.push(member);
            }
            gids.push(gid);
            rosters.push(roster);
        }
        (cluster, gids, rosters)
    }

    #[test]
    fn groups_spread_across_shards() {
        let (cluster, gids, _) = cluster_with_groups(4, 120, 2, FcmMode::FreeAccess);
        assert_eq!(cluster.group_count(), 120);
        let mut used = std::collections::BTreeSet::new();
        for &g in &gids {
            used.insert(cluster.placement(g).unwrap().shard);
        }
        assert_eq!(used.len(), 4, "120 groups must hit all 4 shards");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn batched_flush_matches_direct_requests() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 12, 3, FcmMode::EqualControl);
        let mut seqs = Vec::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                seqs.push(cluster.submit(GlobalRequest::speak(*g, m)).unwrap());
            }
        }
        assert_eq!(cluster.pending_requests(), 36);
        let decisions = cluster.flush();
        assert_eq!(cluster.pending_requests(), 0);
        assert_eq!(decisions.len(), 36);
        let seq_order: Vec<u64> = decisions.iter().map(|d| d.seq).collect();
        assert_eq!(seq_order, seqs, "decisions come back in submission order");
        // First requester per group granted, the rest queued.
        for (g, roster) in gids.iter().zip(&rosters) {
            let of_group: Vec<&Decision> = decisions.iter().filter(|d| d.group == *g).collect();
            assert!(matches!(
                of_group[0].outcome,
                Ok(ArbitrationOutcome::Granted { .. })
            ));
            for d in &of_group[1..] {
                assert!(matches!(d.outcome, Ok(ArbitrationOutcome::Queued { .. })));
            }
            let placement = cluster.placement(*g).unwrap();
            let token = cluster
                .shard(placement.shard)
                .arbiter()
                .token(placement.local)
                .unwrap();
            assert_eq!(token.queue_len(), roster.len() - 1);
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn parallel_flush_is_equivalent_to_sequential() {
        let build = || cluster_with_groups(4, 40, 3, FcmMode::EqualControl);
        let submit_all =
            |cluster: &mut Cluster, gids: &[GlobalGroupId], rosters: &[Vec<GlobalMemberId>]| {
                for (g, roster) in gids.iter().zip(rosters) {
                    for &m in roster {
                        cluster.submit(GlobalRequest::speak(*g, m)).unwrap();
                    }
                    cluster
                        .submit(GlobalRequest::release_floor(*g, roster[0]))
                        .unwrap();
                }
            };
        let (mut sequential, gids, rosters) = build();
        submit_all(&mut sequential, &gids, &rosters);
        let seq_decisions = sequential.flush();
        let (mut parallel, gids, rosters) = build();
        submit_all(&mut parallel, &gids, &rosters);
        let par_decisions = parallel.flush_parallel();
        assert_eq!(seq_decisions, par_decisions);
        for (a, b) in sequential.shard_stats().iter().zip(parallel.shard_stats()) {
            assert_eq!(*a, b);
        }
        parallel.check_invariants().unwrap();
    }

    #[test]
    fn cross_shard_invitation_spawns_subgroup_elsewhere() {
        let (mut cluster, gids, rosters) = cluster_with_groups(4, 8, 4, FcmMode::FreeAccess);
        let parent = gids[0];
        let parent_shard = cluster.placement(parent).unwrap().shard;
        // Pin the sub-group to a different shard explicitly.
        let other = ShardId((parent_shard.0 + 1) % 4);
        let (sub, inv) = cluster
            .invite(
                parent,
                rosters[0][1],
                rosters[0][2],
                FcmMode::GroupDiscussion,
                Some(other),
            )
            .unwrap();
        let sub_placement = cluster.placement(sub).unwrap();
        assert_eq!(sub_placement.shard, other);
        assert_eq!(sub_placement.parent, Some(parent));
        assert_eq!(
            cluster
                .respond_invitation(inv, rosters[0][2], true)
                .unwrap(),
            InvitationStatus::Accepted
        );
        // Both parties can now speak in the sub-group on the remote shard.
        let outcome = cluster
            .request(GlobalRequest::speak(sub, rosters[0][1]))
            .unwrap();
        match outcome {
            ArbitrationOutcome::Granted { speakers, .. } => assert_eq!(speakers.len(), 2),
            other => panic!("expected grant, got {other:?}"),
        }
        // Answering twice fails; a stranger cannot answer.
        assert!(matches!(
            cluster.respond_invitation(inv, rosters[0][2], true),
            Err(ClusterError::AlreadyAnswered(_))
        ));
        // A non-member of the parent cannot be invited.
        let stranger = cluster.register_member(Member::new("x", Role::Participant));
        assert!(cluster
            .invite(
                parent,
                rosters[0][1],
                stranger,
                FcmMode::DirectContact,
                None
            )
            .is_err());
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn crash_and_recovery_preserve_floor_invariants() {
        let (mut cluster, gids, rosters) = cluster_with_groups(4, 24, 4, FcmMode::EqualControl);
        // Build up token state everywhere.
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                cluster.submit(GlobalRequest::speak(*g, m)).unwrap();
            }
        }
        cluster.flush();
        let victim = cluster.placement(gids[0]).unwrap().shard;
        let reference = cluster.shard(victim).arbiter().clone();
        cluster.crash_shard(victim);
        assert!(!cluster.is_shard_active(victim));
        // Requests to the dead shard fail closed.
        let d = cluster
            .submit(GlobalRequest::release_floor(gids[0], rosters[0][0]))
            .unwrap();
        let decisions = cluster.flush();
        assert_eq!(decisions[0].seq, d);
        assert!(matches!(
            decisions[0].outcome,
            Err(ClusterError::ShardDown(_))
        ));
        // Standby takeover reconstructs the exact pre-crash state.
        cluster.recover_shard(victim).unwrap();
        assert_eq!(cluster.shard(victim).arbiter(), &reference);
        cluster.check_invariants().unwrap();
        // The recovered shard serves again.
        let outcome = cluster
            .request(GlobalRequest::release_floor(gids[0], rosters[0][0]))
            .unwrap();
        assert!(outcome.is_granted());
    }

    #[test]
    fn scale_out_migrates_only_idle_groups() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::EqualControl);
        // Make one third of the groups floor-active so they are pinned.
        for (g, roster) in gids.iter().zip(&rosters).take(20) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        assert_eq!(cluster.shard_count(), 4);
        let migrated = cluster.rebalance_idle().unwrap();
        assert!(!migrated.is_empty(), "some idle groups must move");
        for g in &migrated {
            assert_eq!(cluster.placement(*g).unwrap().shard, new);
            let roster = &rosters[g.0 as usize];
            // Members remain functional on the new shard.
            let outcome = cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
            assert!(outcome.is_granted());
        }
        // Active groups stayed put with their token state intact.
        for (g, roster) in gids.iter().zip(&rosters).take(20) {
            assert!(!migrated.contains(g), "active group {g} must be pinned");
            let placement = cluster.placement(*g).unwrap();
            let token = cluster
                .shard(placement.shard)
                .arbiter()
                .token(placement.local)
                .unwrap();
            let local = cluster.members[&roster[0]].locals[&placement.shard];
            assert_eq!(token.holder(), Some(local));
        }
        cluster.check_invariants().unwrap();
    }
}
