//! The federation: a shared directory plus per-shard worker pipelines, with
//! [`Cluster`] as the single-caller façade.
//!
//! The concurrent machinery lives in the crate-private `Core`: a
//! [`Directory`] of placements/membership taken by `&self`, and one
//! persistent worker thread per shard draining an MPSC command queue (the
//! `worker` module). Any number of [`Gateway`] handles —
//! each a clone holding the same `Arc<Core>` — submit floor requests
//! concurrently; requests are translated to the owning shard's dense local
//! ids, queued to that shard's worker, and decisions stream back to the
//! submitting gateway.
//!
//! [`Cluster`] wraps one default gateway behind the original single-threaded
//! API so pre-refactor call sites migrate mechanically: `submit` + `flush`
//! still return decisions sorted by submission order, `request` still
//! round-trips synchronously. `flush` and `flush_parallel` are now the same
//! operation — every shard always works in parallel behind its queue — and
//! both merely await the decisions of this façade's outstanding submissions.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, RwLock};

use dmps_floor::arbiter::ArbiterStats;
use dmps_floor::snapshot::EventOutcome;
use dmps_floor::{
    ArbiterEvent, ArbitrationOutcome, FcmMode, FloorArbiter, FloorRequest, GroupId,
    InvitationStatus, Member, MemberId, RequestKind, Resource,
};

use crate::directory::{ClusterInvitation, Directory, GroupPlacement, MemberRecord};
use crate::error::{ClusterError, Result};
use crate::gateway::Gateway;
use crate::ring::{HashRing, ShardId};
use crate::session::{GroupSession, SessionDecision, SessionEvent, SessionOp, SessionOutcome};
use crate::shard::{GlobalGroupId, GlobalMemberId, Shard, ShardView};
use crate::worker::{ShardCommand, ShardWorker};

/// Sizing and durability knobs of a cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Snapshot cadence per shard (events between snapshots; 0 disables).
    pub snapshot_every: u64,
    /// Per-shard dedup window: how many recent decisions a shard remembers
    /// to answer gateway retries idempotently (0 disables dedup).
    pub dedup_window: usize,
}

impl ClusterConfig {
    /// A config with `shards` shards and the default ring/durability knobs.
    pub fn with_shards(shards: usize) -> Self {
        ClusterConfig {
            shards,
            vnodes: 64,
            snapshot_every: 256,
            dedup_window: 1024,
        }
    }
}

/// A floor request addressed with cluster-wide ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalRequest {
    /// The group the request concerns.
    pub group: GlobalGroupId,
    /// The requesting member.
    pub member: GlobalMemberId,
    /// What the member wants to do.
    pub kind: GlobalRequestKind,
}

impl GlobalRequest {
    /// A speak request.
    pub fn speak(group: GlobalGroupId, member: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::Speak,
        }
    }

    /// A release-floor request.
    pub fn release_floor(group: GlobalGroupId, member: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::ReleaseFloor,
        }
    }

    /// A pass-floor request.
    pub fn pass_floor(group: GlobalGroupId, member: GlobalMemberId, to: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::PassFloor { to },
        }
    }

    /// A direct-contact request.
    pub fn direct_contact(
        group: GlobalGroupId,
        member: GlobalMemberId,
        to: GlobalMemberId,
    ) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::DirectContact { to },
        }
    }
}

/// The request kinds, addressed with cluster-wide member ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalRequestKind {
    /// Deliver under the group's mode.
    Speak,
    /// Open a direct-contact channel.
    DirectContact {
        /// The destination member.
        to: GlobalMemberId,
    },
    /// Release the floor token.
    ReleaseFloor,
    /// Pass the floor token.
    PassFloor {
        /// The member to pass to.
        to: GlobalMemberId,
    },
}

/// The arbitration decision for one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The request id ([`Gateway::submit`](crate::Gateway::submit) /
    /// [`Cluster::submit`] sequence number).
    pub seq: u64,
    /// The group the request addressed.
    pub group: GlobalGroupId,
    /// The outcome, or the routing/shard error that prevented arbitration.
    pub outcome: Result<ArbitrationOutcome>,
    /// Whether the decision was answered from the shard's dedup window (a
    /// retry of an already-applied request) rather than freshly arbitrated.
    pub replayed: bool,
}

/// What [`Cluster::rebalance_idle`] did: which groups moved and which are
/// pinned for now.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceReport {
    /// Groups migrated to their new ring placement.
    pub migrated: Vec<GlobalGroupId>,
    /// Groups whose ring placement changed but which could not move yet —
    /// floor-active (token held or requesters queued) or with a failed
    /// source/target shard. Retry after the floor is released or the shard
    /// recovers; groundwork for a future two-phase live handoff.
    pub deferred: Vec<GlobalGroupId>,
}

/// The concurrent heart of the control plane: the shared [`Directory`] and
/// the per-shard worker queues. Shared via `Arc` by every [`Gateway`] and the
/// [`Cluster`] façade.
#[derive(Debug)]
pub(crate) struct Core {
    config: ClusterConfig,
    directory: Directory,
    workers: RwLock<Vec<ShardWorker>>,
}

impl Core {
    pub(crate) fn new(config: ClusterConfig) -> Self {
        let ring = HashRing::new(config.shards, config.vnodes);
        let workers = (0..config.shards)
            .map(|i| {
                ShardWorker::spawn(Shard::new(
                    ShardId(i),
                    config.snapshot_every,
                    config.dedup_window,
                ))
            })
            .collect();
        Core {
            config,
            directory: Directory::new(ring),
            workers: RwLock::new(workers),
        }
    }

    pub(crate) fn directory(&self) -> &Directory {
        &self.directory
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.workers.read().expect("workers lock").len()
    }

    /// Runs `f` on the worker thread owning `shard` and returns its result.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub(crate) fn with_shard<R: Send + 'static>(
        &self,
        shard: ShardId,
        f: impl FnOnce(&mut Shard) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = channel();
        {
            let workers = self.workers.read().expect("workers lock");
            let worker = workers
                .get(shard.0)
                .unwrap_or_else(|| panic!("shard {shard} out of range"));
            worker.send(ShardCommand::With(Box::new(move |s| {
                let _ = tx.send(f(s));
            })));
        }
        rx.recv().expect("shard worker answers")
    }

    /// Translates a global request to the owning shard's local ids.
    fn translate(&self, request: &GlobalRequest) -> Result<(GroupPlacement, FloorRequest)> {
        let placement = self.directory.placement(request.group)?;
        let member = self
            .directory
            .local_member(request.member, placement.shard)?;
        let kind = match request.kind {
            GlobalRequestKind::Speak => RequestKind::Speak,
            GlobalRequestKind::ReleaseFloor => RequestKind::ReleaseFloor,
            GlobalRequestKind::PassFloor { to } => RequestKind::PassFloor {
                to: self.directory.local_member(to, placement.shard)?,
            },
            GlobalRequestKind::DirectContact { to } => RequestKind::DirectContact {
                to: self.directory.local_member(to, placement.shard)?,
            },
        };
        Ok((
            placement,
            FloorRequest {
                group: placement.local,
                member,
                kind,
            },
        ))
    }

    /// Routes a request to its shard queue under the given request id; the
    /// decision will stream to `reply`.
    pub(crate) fn submit_as(
        &self,
        seq: u64,
        request: GlobalRequest,
        reply: Sender<Decision>,
    ) -> Result<()> {
        let (placement, local) = self.translate(&request)?;
        let workers = self.workers.read().expect("workers lock");
        workers[placement.shard.0].send(ShardCommand::Request {
            seq,
            group: request.group,
            request: local,
            reply,
        });
        Ok(())
    }

    /// Synchronously arbitrates under the given request id, returning the
    /// outcome and whether it was replayed from the dedup window.
    pub(crate) fn request_as(
        &self,
        seq: u64,
        request: GlobalRequest,
    ) -> Result<(ArbitrationOutcome, bool)> {
        let (tx, rx) = channel();
        self.submit_as(seq, request, tx)?;
        let decision = rx.recv().map_err(|_| ClusterError::Disconnected)?;
        decision.outcome.map(|o| (o, decision.replayed))
    }

    pub(crate) fn request(&self, request: GlobalRequest) -> Result<ArbitrationOutcome> {
        self.request_as(self.directory.alloc_seq(), request)
            .map(|(outcome, _)| outcome)
    }

    // ----- session operations ----------------------------------------------

    /// Translates a session operation to the owning shard's local ids.
    fn translate_session(&self, op: &SessionOp) -> Result<(GroupPlacement, SessionEvent)> {
        let placement = self.directory.placement(op.group)?;
        let local_from = self.directory.local_member(op.from, placement.shard)?;
        Ok((
            placement,
            SessionEvent {
                group: op.group,
                local_group: placement.local,
                from: op.from,
                local_from,
                kind: op.kind.clone(),
            },
        ))
    }

    /// Routes a session operation to its shard queue under the given request
    /// id; the decision will stream to `reply`.
    pub(crate) fn submit_session_as(
        &self,
        seq: u64,
        op: SessionOp,
        reply: Sender<SessionDecision>,
    ) -> Result<()> {
        let (placement, event) = self.translate_session(&op)?;
        let workers = self.workers.read().expect("workers lock");
        workers[placement.shard.0].send(ShardCommand::Session { seq, event, reply });
        Ok(())
    }

    /// Synchronously applies a session operation under the given request id,
    /// returning the outcome and whether it was replayed from the session
    /// dedup window.
    pub(crate) fn session_as(&self, seq: u64, op: SessionOp) -> Result<(SessionOutcome, bool)> {
        let (tx, rx) = channel();
        self.submit_session_as(seq, op, tx)?;
        let decision = rx.recv().map_err(|_| ClusterError::Disconnected)?;
        decision.outcome.map(|o| (o, decision.replayed))
    }

    pub(crate) fn session(&self, op: SessionOp) -> Result<SessionOutcome> {
        self.session_as(self.directory.alloc_seq(), op)
            .map(|(outcome, _)| outcome)
    }

    /// The recorded session state of a group, read from its owning shard.
    pub(crate) fn session_view(&self, group: GlobalGroupId) -> Result<GroupSession> {
        let placement = self.directory.placement(group)?;
        Ok(self.with_shard(placement.shard, move |s| s.session().view(group)))
    }

    // ----- membership and groups -------------------------------------------

    fn create_group_on(
        &self,
        id: GlobalGroupId,
        shard: ShardId,
        name: String,
        mode: FcmMode,
        parent: Option<GlobalGroupId>,
    ) -> Result<()> {
        let outcome = self.with_shard(shard, move |s| {
            s.apply(ArbiterEvent::CreateGroup { name, mode })
        })?;
        let EventOutcome::GroupCreated(local) = outcome else {
            unreachable!("CreateGroup yields GroupCreated");
        };
        self.directory.place_group(
            id,
            GroupPlacement {
                shard,
                local,
                parent,
            },
        );
        Ok(())
    }

    pub(crate) fn create_group(&self, name: String, mode: FcmMode) -> Result<GlobalGroupId> {
        let id = GlobalGroupId(self.directory.alloc_group());
        let shard = self.directory.shard_for(id.0);
        self.create_group_on(id, shard, name, mode, None)?;
        Ok(id)
    }

    /// Ensures the member exists on the shard (instantiating it into `group`
    /// if it is new there) and returns its local id.
    ///
    /// The member's directory stripe stays write-locked across the AddMember
    /// round-trip so two gateways racing to instantiate the same member
    /// cannot register it twice; shard workers never take directory locks,
    /// so no cycle can form.
    fn ensure_on_shard(
        &self,
        member: GlobalMemberId,
        shard: ShardId,
        group: GroupId,
    ) -> Result<MemberId> {
        let stripe = self.directory.member_stripe(member);
        let mut guard = stripe.write().expect("member stripe");
        let record: &mut MemberRecord = guard
            .get_mut(&member)
            .ok_or(ClusterError::UnknownMember(member))?;
        if let Some(&local) = record.locals.get(&shard) {
            drop(guard);
            self.with_shard(shard, move |s| {
                s.apply(ArbiterEvent::JoinGroup {
                    group,
                    member: local,
                })
            })?;
            return Ok(local);
        }
        let template = record.template.clone();
        let outcome = self.with_shard(shard, move |s| {
            s.apply(ArbiterEvent::AddMember {
                group,
                member: template,
            })
        })?;
        let EventOutcome::MemberAdded(local) = outcome else {
            unreachable!("AddMember yields MemberAdded");
        };
        // Reverse mapping first: the invariant "every forward `locals` entry
        // has its reverse mapping" must hold at every instant a concurrent
        // `check_invariants` can observe.
        self.directory.record_local(shard, local, member);
        record.locals.insert(shard, local);
        drop(guard);
        Ok(local)
    }

    pub(crate) fn join_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        let placement = self.directory.placement(group)?;
        self.ensure_on_shard(member, placement.shard, placement.local)?;
        Ok(())
    }

    pub(crate) fn leave_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        let placement = self.directory.placement(group)?;
        let local = self.directory.local_member(member, placement.shard)?;
        self.with_shard(placement.shard, move |s| {
            s.apply(ArbiterEvent::LeaveGroup {
                group: placement.local,
                member: local,
            })
        })?;
        Ok(())
    }

    pub(crate) fn set_shard_resource(&self, shard: ShardId, resource: Resource) -> Result<()> {
        self.with_shard(shard, move |s| {
            s.apply(ArbiterEvent::SetResource { resource })
        })?;
        Ok(())
    }

    // ----- cross-shard invitations -----------------------------------------

    pub(crate) fn invite(
        &self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        let parent_placement = self.directory.placement(parent)?;
        let parent_local = parent_placement.local;
        // Membership checks against the parent shard's arbiter.
        let locals = [
            self.directory.local_member(from, parent_placement.shard)?,
            self.directory.local_member(to, parent_placement.shard)?,
        ];
        self.with_shard(parent_placement.shard, move |s| -> Result<()> {
            let parent_group = s.arbiter().group(parent_local)?;
            for local in locals {
                if !parent_group.contains(local) {
                    return Err(ClusterError::Floor(dmps_floor::FloorError::NotAMember {
                        member: local,
                        group: parent_local,
                    }));
                }
            }
            Ok(())
        })?;
        let sub = GlobalGroupId(self.directory.alloc_group());
        let shard = target.unwrap_or_else(|| self.directory.shard_for(sub.0));
        let from_name = self.directory.member_name(from)?;
        self.create_group_on(
            sub,
            shard,
            format!("{from_name}-{mode}"),
            mode,
            Some(parent),
        )?;
        // The inviter joins (and chairs, by first-join convention) the
        // sub-group immediately; the invitee joins on acceptance.
        let placement = self.directory.placement(sub)?;
        self.ensure_on_shard(from, placement.shard, placement.local)?;
        let invitation = self.directory.push_invitation(ClusterInvitation {
            from,
            to,
            subgroup: sub,
            status: InvitationStatus::Pending,
        });
        Ok((sub, invitation))
    }

    pub(crate) fn respond_invitation(
        &self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        // The invitations lock is held across the join so two racing answers
        // serialize; join only takes member-stripe and worker resources,
        // never the invitations lock again.
        self.directory
            .with_invitations_mut(|invitations| -> Result<InvitationStatus> {
                let inv = invitations
                    .get(invitation as usize)
                    .cloned()
                    .ok_or(ClusterError::UnknownInvitation(invitation))?;
                if inv.to != responder {
                    return Err(ClusterError::NotTheInvitee(responder));
                }
                if inv.status != InvitationStatus::Pending {
                    return Err(ClusterError::AlreadyAnswered(invitation));
                }
                let status = if accept {
                    self.join_group(inv.subgroup, responder)?;
                    InvitationStatus::Accepted
                } else {
                    InvitationStatus::Declined
                };
                invitations[invitation as usize].status = status;
                Ok(status)
            })
    }

    // ----- failure, recovery, scale-out ------------------------------------

    pub(crate) fn crash_shard(&self, shard: ShardId) {
        self.with_shard(shard, |s| s.crash());
    }

    pub(crate) fn recover_shard(&self, shard: ShardId) -> Result<()> {
        self.with_shard(shard, |s| s.recover())
    }

    pub(crate) fn is_shard_active(&self, shard: ShardId) -> bool {
        self.with_shard(shard, |s| s.is_active())
    }

    pub(crate) fn arbiter(&self, shard: ShardId) -> FloorArbiter {
        self.with_shard(shard, |s| s.arbiter().clone())
    }

    pub(crate) fn shard_view(&self, shard: ShardId) -> ShardView {
        self.with_shard(shard, |s| s.view())
    }

    pub(crate) fn shard_stats(&self) -> Vec<(ShardId, ArbiterStats)> {
        (0..self.shard_count())
            .map(|i| (ShardId(i), self.shard_view(ShardId(i)).stats))
            .collect()
    }

    pub(crate) fn add_shard(&self) -> ShardId {
        let mut workers = self.workers.write().expect("workers lock");
        let id = self.directory.grow_ring();
        debug_assert_eq!(id.0, workers.len());
        workers.push(ShardWorker::spawn(Shard::new(
            id,
            self.config.snapshot_every,
            self.config.dedup_window,
        )));
        id
    }

    pub(crate) fn rebalance_idle(&self) -> Result<RebalanceReport> {
        let candidates: Vec<(GlobalGroupId, GroupPlacement, ShardId)> = self
            .directory
            .placements_snapshot()
            .into_iter()
            .filter_map(|(g, p)| {
                let target = self.directory.shard_for(g.0);
                (target != p.shard).then_some((g, p, target))
            })
            .collect();
        let mut report = RebalanceReport::default();
        for (group, placement, target) in candidates {
            if !self.is_shard_active(placement.shard) || !self.is_shard_active(target) {
                report.deferred.push(group);
                continue;
            }
            let local = placement.local;
            // One worker round-trip inspects the floor state and, when idle,
            // captures the roster atomically with respect to that shard.
            let idle_roster: Result<Option<(String, FcmMode, Vec<MemberId>)>> =
                self.with_shard(placement.shard, move |s| {
                    let token = s.arbiter().token(local)?;
                    if token.holder().is_some() || token.queue_len() > 0 {
                        return Ok(None); // pinned: active floor state
                    }
                    let old = s.arbiter().group(local)?;
                    Ok(Some((
                        old.name.clone(),
                        old.mode,
                        old.members().collect::<Vec<_>>(),
                    )))
                });
            let Some((name, mode, locals)) = idle_roster? else {
                report.deferred.push(group);
                continue;
            };
            // Map the group's local members back to global ids.
            let roster: Vec<GlobalMemberId> = locals
                .iter()
                .filter_map(|&m| self.directory.global_of(placement.shard, m))
                .collect();
            // Re-create on the target shard and move the roster over.
            self.create_group_on(group, target, name, mode, placement.parent)?;
            let new_local = self.directory.placement(group)?.local;
            for member in &roster {
                self.ensure_on_shard(*member, target, new_local)?;
            }
            // Empty the husk on the old shard so stale routing fails closed.
            for member in &roster {
                let local_id = self.directory.local_member(*member, placement.shard)?;
                self.with_shard(placement.shard, move |s| {
                    s.apply(ArbiterEvent::LeaveGroup {
                        group: local,
                        member: local_id,
                    })
                })?;
            }
            // The group's slice of the decision journal follows it, so a
            // gateway retry of a pre-migration request id still replays on
            // the new owner instead of double-applying.
            let journal = self.with_shard(placement.shard, move |s| s.extract_dedup(group));
            if !journal.is_empty() {
                self.with_shard(target, move |s| s.install_dedup(group, journal));
            }
            // Session state migrates too: the chat/whiteboard/annotation logs
            // and media schedule (logged as purge/install so replay on either
            // shard stays deterministic), plus the session decision journal.
            // Install on the target *before* purging the source — the purge
            // is durably logged, so the reverse order would destroy the only
            // copy if the install failed.
            let content = self.with_shard(placement.shard, move |s| s.session().view(group));
            if !content.is_empty() {
                self.with_shard(target, move |s| s.install_session(group, content))?;
                let _ = self.with_shard(placement.shard, move |s| s.extract_session(group))?;
            }
            let session_journal =
                self.with_shard(placement.shard, move |s| s.extract_session_dedup(group));
            if !session_journal.is_empty() {
                self.with_shard(target, move |s| {
                    s.install_session_dedup(group, session_journal)
                });
            }
            report.migrated.push(group);
        }
        Ok(report)
    }

    // ----- invariants -------------------------------------------------------

    pub(crate) fn check_invariants(&self) -> std::result::Result<(), String> {
        // Snapshot order matters under concurrent mutation: directory
        // snapshots are taken *before* the arbiters are cloned. A group's
        // arbiter-side state always exists before its directory entry (and a
        // member's reverse mapping before its forward entry), so everything
        // the snapshots reference is guaranteed to be visible in the
        // later-cloned arbiters — a concurrent `create_group`/`join_group`
        // can therefore never produce a spurious violation.
        let placements = self.directory.placements_snapshot();
        let members = self.directory.members_snapshot();
        let shard_count = self.shard_count();
        let mut arbiters = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let shard = ShardId(i);
            arbiters.push((
                shard,
                self.with_shard(shard, |s| (s.is_active(), s.arbiter().clone())),
            ));
        }
        for (shard, (active, arbiter)) in &arbiters {
            if *active {
                arbiter
                    .check_invariants()
                    .map_err(|e| format!("{shard}: {e}"))?;
            }
        }
        for (g, p) in placements {
            // `get`, not an index: a shard added after the placements
            // snapshot would be missing from `arbiters`.
            let Some((_, (active, arbiter))) = arbiters.get(p.shard.0) else {
                continue;
            };
            if *active && arbiter.group(p.local).is_err() {
                return Err(format!(
                    "directory entry {g} points at missing {:?}",
                    p.local
                ));
            }
        }
        for (m, locals) in members {
            for (shard, local) in locals {
                if self.directory.global_of(shard, local) != Some(m) {
                    return Err(format!("reverse directory mismatch for {m} on {shard}"));
                }
            }
        }
        Ok(())
    }
}

/// The sharded multi-arbiter control plane, single-caller façade.
///
/// For concurrent multi-gateway ingest, clone the handle returned by
/// [`Cluster::gateway`] — every clone shares this cluster's directory and
/// shard pipelines but streams decisions to its own channel.
#[derive(Debug)]
pub struct Cluster {
    core: Arc<Core>,
    gateway: Gateway,
    /// Requests submitted through this façade whose decisions have not been
    /// collected by a flush yet.
    pending: usize,
}

impl Cluster {
    /// Builds a cluster of `config.shards` active shards, spawning one
    /// persistent worker thread per shard.
    pub fn new(config: ClusterConfig) -> Self {
        let core = Arc::new(Core::new(config));
        let gateway = Gateway::new(core.clone());
        Cluster {
            core,
            gateway,
            pending: 0,
        }
    }

    /// A fresh concurrent ingest handle onto this cluster (each handle
    /// receives its own decision stream; clone it for more). Deliberately
    /// *not* a borrow of the façade's internal gateway: submissions on that
    /// channel would desynchronize the [`Cluster::pending_requests`]
    /// accounting [`Cluster::flush`] relies on.
    pub fn gateway(&self) -> Gateway {
        self.gateway.clone()
    }

    // ----- introspection ----------------------------------------------------

    /// Number of shards (active or failed).
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// Number of groups in the directory.
    pub fn group_count(&self) -> usize {
        self.core.directory().group_count()
    }

    /// Number of registered members.
    pub fn member_count(&self) -> usize {
        self.core.directory().member_count()
    }

    /// An owned copy of the shard's arbiter, for inspection. The shard's
    /// state lives on its worker thread, so inspection clones it out rather
    /// than borrowing.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn arbiter(&self, shard: ShardId) -> FloorArbiter {
        self.core.arbiter(shard)
    }

    /// Health and counters of one shard.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn shard_view(&self, shard: ShardId) -> ShardView {
        self.core.shard_view(shard)
    }

    /// Where a group currently lives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn placement(&self, group: GlobalGroupId) -> Result<GroupPlacement> {
        self.core.directory().placement(group)
    }

    /// The member's dense id on a shard, if instantiated there.
    ///
    /// # Errors
    ///
    /// Returns unknown-member / not-on-shard errors.
    pub fn local_member(&self, member: GlobalMemberId, shard: ShardId) -> Result<MemberId> {
        self.core.directory().local_member(member, shard)
    }

    /// The global member a shard-local id belongs to, if instantiated there
    /// (the reverse of [`Cluster::local_member`]).
    pub fn global_member(&self, shard: ShardId, local: MemberId) -> Option<GlobalMemberId> {
        self.core.directory().global_of(shard, local)
    }

    /// Aggregate floor statistics per shard.
    pub fn shard_stats(&self) -> Vec<(ShardId, ArbiterStats)> {
        self.core.shard_stats()
    }

    /// Every group owned by a shard.
    pub fn groups_on(&self, shard: ShardId) -> Vec<GlobalGroupId> {
        self.core.directory().groups_on(shard)
    }

    /// The cluster-level invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: u64) -> Result<ClusterInvitation> {
        self.core.directory().invitation(id)
    }

    // ----- membership and groups -------------------------------------------

    /// Registers a member with the cluster directory. The member is
    /// instantiated on shards lazily, the first time it joins a group there.
    pub fn register_member(&mut self, template: Member) -> GlobalMemberId {
        self.core.directory().register_member(template)
    }

    /// Creates a top-level group, placed by consistent hashing.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the owning shard is failed.
    pub fn create_group(
        &mut self,
        name: impl Into<String>,
        mode: FcmMode,
    ) -> Result<GlobalGroupId> {
        self.core.create_group(name.into(), mode)
    }

    /// Adds a member to a group (instantiating it on the owning shard if
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn join_group(&mut self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.join_group(group, member)
    }

    /// Removes a member from a group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn leave_group(&mut self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.leave_group(group, member)
    }

    /// Updates the resource snapshot of one shard (each shard host measures
    /// its own Network × CPU × Memory availability).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed.
    pub fn set_shard_resource(&mut self, shard: ShardId, resource: Resource) -> Result<()> {
        self.core.set_shard_resource(shard, resource)
    }

    // ----- cross-shard invitations -----------------------------------------

    /// A member invites another into a new private sub-group (Group
    /// Discussion / Direct Contact). The sub-group is placed by consistent
    /// hashing — typically on a *different* shard than the parent, which is
    /// what lets breakout load spread across the cluster. Pass `target` to
    /// pin the placement explicitly.
    ///
    /// Both parties must be members of the parent group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors, [`ClusterError::Floor`] wrapping
    /// [`dmps_floor::FloorError::NotAMember`] when either party is not in the
    /// parent group, and shard-down errors.
    pub fn invite(
        &mut self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        self.core.invite(parent, from, to, mode, target)
    }

    /// The invitee answers a cluster-level invitation; accepting joins them
    /// to the sub-group on its (possibly remote) shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`],
    /// [`ClusterError::NotTheInvitee`], [`ClusterError::AlreadyAnswered`] and
    /// shard-down errors.
    pub fn respond_invitation(
        &mut self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        self.core.respond_invitation(invitation, responder, accept)
    }

    // ----- request routing --------------------------------------------------

    /// Allocates a cluster-unique request id without submitting anything —
    /// for callers (like the network simulator's gateway) that transport
    /// requests out-of-band and need idempotency keys for retries.
    pub fn allocate_request_id(&self) -> u64 {
        self.core.directory().alloc_seq()
    }

    /// Routes a request to its owning shard's worker queue and returns its
    /// request id. The decision streams back asynchronously; collect it with
    /// [`Cluster::flush`] / [`Cluster::flush_parallel`].
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn submit(&mut self, request: GlobalRequest) -> Result<u64> {
        let seq = self.gateway.submit(request)?;
        self.pending += 1;
        Ok(seq)
    }

    /// Submits and synchronously arbitrates one request (convenience wrapper
    /// for interactive paths; batched traffic should use [`Cluster::submit`]
    /// + flush).
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn request(&mut self, request: GlobalRequest) -> Result<ArbitrationOutcome> {
        self.core.request(request)
    }

    /// Synchronously arbitrates under a caller-provided request id — the
    /// retransmission path: retrying an id whose decision is still in the
    /// owning shard's dedup window returns the recorded outcome (second
    /// element `true`) without re-applying the floor event.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn request_with_id(
        &mut self,
        seq: u64,
        request: GlobalRequest,
    ) -> Result<(ArbitrationOutcome, bool)> {
        self.core.request_as(seq, request)
    }

    // ----- session operations ----------------------------------------------

    /// Synchronously applies a session operation — a chat line, whiteboard
    /// stroke, annotation or synchronized-media schedule — on the shard
    /// owning its group. Content operations are floor-gated there exactly
    /// like a single `DmpsServer` gates them
    /// ([`dmps_floor::FloorArbiter::may_deliver`]); delivered operations are
    /// appended to the shard's durable log, so session state survives a
    /// crash-and-failover.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn session(&mut self, op: SessionOp) -> Result<SessionOutcome> {
        self.core.session(op)
    }

    /// Synchronously applies a session operation under a caller-provided
    /// request id — the retransmission path: retrying an id whose decision
    /// is still in the owning shard's session dedup window returns the
    /// recorded outcome (second element `true`) without delivering the
    /// content twice.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn session_with_id(&mut self, seq: u64, op: SessionOp) -> Result<(SessionOutcome, bool)> {
        self.core.session_as(seq, op)
    }

    /// The recorded session state of a group — its chat / whiteboard /
    /// annotation logs and media schedule — read from its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn session_view(&self, group: GlobalGroupId) -> Result<GroupSession> {
        self.core.session_view(group)
    }

    // ----- request accounting ----------------------------------------------

    /// Number of requests submitted through this façade whose decisions have
    /// not been collected by a flush yet. (The shard pipelines may already
    /// have arbitrated them — decisions wait in this façade's results
    /// channel.)
    pub fn pending_requests(&self) -> usize {
        self.pending
    }

    /// Collects the decisions of every outstanding [`Cluster::submit`],
    /// sorted by request id (= submission order).
    pub fn flush(&mut self) -> Vec<Decision> {
        let decisions = self
            .gateway
            .collect_decisions(self.pending)
            .expect("shard pipelines are alive");
        self.pending = 0;
        decisions
    }

    /// Alias of [`Cluster::flush`], kept for pre-pipeline call sites: shards
    /// always work in parallel behind their queues now, so there is no
    /// separate parallel path to opt into.
    pub fn flush_parallel(&mut self) -> Vec<Decision> {
        self.flush()
    }

    // ----- failure and recovery --------------------------------------------

    /// Crashes a shard's primary process. Requests routed to the shard fail
    /// with [`ClusterError::ShardDown`] until recovery.
    pub fn crash_shard(&mut self, shard: ShardId) {
        self.core.crash_shard(shard);
    }

    /// A standby recovers the shard from its snapshot + log.
    ///
    /// # Errors
    ///
    /// Propagates durable-state corruption as [`ClusterError::Floor`].
    pub fn recover_shard(&mut self, shard: ShardId) -> Result<()> {
        self.core.recover_shard(shard)
    }

    /// Whether a shard is serving.
    pub fn is_shard_active(&self, shard: ShardId) -> bool {
        self.core.is_shard_active(shard)
    }

    // ----- scale-out --------------------------------------------------------

    /// Adds a new shard (and its worker pipeline) to the ring and returns
    /// its id. Existing groups stay where they are until
    /// [`Cluster::rebalance_idle`] migrates the movable ones; new groups
    /// hash across the enlarged ring immediately.
    pub fn add_shard(&mut self) -> ShardId {
        self.core.add_shard()
    }

    /// Migrates every group whose ring placement changed **and** whose floor
    /// state is idle (no token holder, no queued requesters) to its new
    /// shard. Groups that cannot move yet — floor-active, or with a failed
    /// source/target shard — are reported in the result's `deferred` list so
    /// callers can retry after the floor is released; moving a held token
    /// between arbiters would risk the very double-grant anomaly the
    /// failover machinery exists to prevent.
    ///
    /// Requests still queued for a migrated group keep routing to the old
    /// shard, where the group is left empty; they fail closed (aborted as
    /// not-joined) rather than double-granting. Flush before rebalancing to
    /// avoid that. A migrated group's slice of the decision journal moves
    /// with it, so gateway retries of pre-migration request ids still replay
    /// instead of double-applying.
    ///
    /// **Concurrency contract:** rebalancing is an administrative operation;
    /// gateways must stop submitting to the groups being moved until it
    /// returns. The idle check and the migration are separate steps on the
    /// source shard, so a floor granted concurrently in that window would be
    /// destroyed by the move — the safe live-migration path is the two-phase
    /// handoff the `deferred` list is groundwork for.
    ///
    /// # Errors
    ///
    /// Returns shard errors; on error, already-migrated groups stay migrated.
    pub fn rebalance_idle(&mut self) -> Result<RebalanceReport> {
        self.core.rebalance_idle()
    }

    // ----- invariants -------------------------------------------------------

    /// Checks the floor-state invariants on every active shard, plus the
    /// cluster-level ones: every directory entry points at an existing local
    /// group, and every global member maps to distinct local ids per shard.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        self.core.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::Role;

    fn cluster_with_groups(
        shards: usize,
        groups: usize,
        members_per_group: usize,
        mode: FcmMode,
    ) -> (Cluster, Vec<GlobalGroupId>, Vec<Vec<GlobalMemberId>>) {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(shards));
        let mut gids = Vec::new();
        let mut rosters = Vec::new();
        for g in 0..groups {
            let gid = cluster.create_group(format!("lecture-{g}"), mode).unwrap();
            let mut roster = Vec::new();
            for m in 0..members_per_group {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).unwrap();
                roster.push(member);
            }
            gids.push(gid);
            rosters.push(roster);
        }
        (cluster, gids, rosters)
    }

    #[test]
    fn groups_spread_across_shards() {
        let (cluster, gids, _) = cluster_with_groups(4, 120, 2, FcmMode::FreeAccess);
        assert_eq!(cluster.group_count(), 120);
        let mut used = std::collections::BTreeSet::new();
        for &g in &gids {
            used.insert(cluster.placement(g).unwrap().shard);
        }
        assert_eq!(used.len(), 4, "120 groups must hit all 4 shards");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn batched_flush_matches_direct_requests() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 12, 3, FcmMode::EqualControl);
        let mut seqs = Vec::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                seqs.push(cluster.submit(GlobalRequest::speak(*g, m)).unwrap());
            }
        }
        assert_eq!(cluster.pending_requests(), 36);
        let decisions = cluster.flush();
        assert_eq!(cluster.pending_requests(), 0);
        assert_eq!(decisions.len(), 36);
        let seq_order: Vec<u64> = decisions.iter().map(|d| d.seq).collect();
        assert_eq!(seq_order, seqs, "decisions come back in submission order");
        // First requester per group granted, the rest queued.
        for (g, roster) in gids.iter().zip(&rosters) {
            let of_group: Vec<&Decision> = decisions.iter().filter(|d| d.group == *g).collect();
            assert!(matches!(
                of_group[0].outcome,
                Ok(ArbitrationOutcome::Granted { .. })
            ));
            for d in &of_group[1..] {
                assert!(matches!(d.outcome, Ok(ArbitrationOutcome::Queued { .. })));
            }
            let placement = cluster.placement(*g).unwrap();
            let token = cluster
                .arbiter(placement.shard)
                .token(placement.local)
                .unwrap()
                .clone();
            assert_eq!(token.queue_len(), roster.len() - 1);
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn parallel_flush_is_equivalent_to_sequential() {
        let build = || cluster_with_groups(4, 40, 3, FcmMode::EqualControl);
        let submit_all =
            |cluster: &mut Cluster, gids: &[GlobalGroupId], rosters: &[Vec<GlobalMemberId>]| {
                for (g, roster) in gids.iter().zip(rosters) {
                    for &m in roster {
                        cluster.submit(GlobalRequest::speak(*g, m)).unwrap();
                    }
                    cluster
                        .submit(GlobalRequest::release_floor(*g, roster[0]))
                        .unwrap();
                }
            };
        let (mut sequential, gids, rosters) = build();
        submit_all(&mut sequential, &gids, &rosters);
        let seq_decisions = sequential.flush();
        let (mut parallel, gids, rosters) = build();
        submit_all(&mut parallel, &gids, &rosters);
        let par_decisions = parallel.flush_parallel();
        assert_eq!(seq_decisions, par_decisions);
        for (a, b) in sequential.shard_stats().iter().zip(parallel.shard_stats()) {
            assert_eq!(*a, b);
        }
        parallel.check_invariants().unwrap();
    }

    #[test]
    fn cross_shard_invitation_spawns_subgroup_elsewhere() {
        let (mut cluster, gids, rosters) = cluster_with_groups(4, 8, 4, FcmMode::FreeAccess);
        let parent = gids[0];
        let parent_shard = cluster.placement(parent).unwrap().shard;
        // Pin the sub-group to a different shard explicitly.
        let other = ShardId((parent_shard.0 + 1) % 4);
        let (sub, inv) = cluster
            .invite(
                parent,
                rosters[0][1],
                rosters[0][2],
                FcmMode::GroupDiscussion,
                Some(other),
            )
            .unwrap();
        let sub_placement = cluster.placement(sub).unwrap();
        assert_eq!(sub_placement.shard, other);
        assert_eq!(sub_placement.parent, Some(parent));
        assert_eq!(
            cluster
                .respond_invitation(inv, rosters[0][2], true)
                .unwrap(),
            InvitationStatus::Accepted
        );
        // Both parties can now speak in the sub-group on the remote shard.
        let outcome = cluster
            .request(GlobalRequest::speak(sub, rosters[0][1]))
            .unwrap();
        match outcome {
            ArbitrationOutcome::Granted { speakers, .. } => assert_eq!(speakers.len(), 2),
            other => panic!("expected grant, got {other:?}"),
        }
        // Answering twice fails; a stranger cannot answer.
        assert!(matches!(
            cluster.respond_invitation(inv, rosters[0][2], true),
            Err(ClusterError::AlreadyAnswered(_))
        ));
        // A non-member of the parent cannot be invited.
        let stranger = cluster.register_member(Member::new("x", Role::Participant));
        assert!(cluster
            .invite(
                parent,
                rosters[0][1],
                stranger,
                FcmMode::DirectContact,
                None
            )
            .is_err());
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn crash_and_recovery_preserve_floor_invariants() {
        let (mut cluster, gids, rosters) = cluster_with_groups(4, 24, 4, FcmMode::EqualControl);
        // Build up token state everywhere.
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                cluster.submit(GlobalRequest::speak(*g, m)).unwrap();
            }
        }
        cluster.flush();
        let victim = cluster.placement(gids[0]).unwrap().shard;
        let reference = cluster.arbiter(victim);
        cluster.crash_shard(victim);
        assert!(!cluster.is_shard_active(victim));
        // Requests to the dead shard fail closed.
        let d = cluster
            .submit(GlobalRequest::release_floor(gids[0], rosters[0][0]))
            .unwrap();
        let decisions = cluster.flush();
        assert_eq!(decisions[0].seq, d);
        assert!(matches!(
            decisions[0].outcome,
            Err(ClusterError::ShardDown(_))
        ));
        // Standby takeover reconstructs the exact pre-crash state.
        cluster.recover_shard(victim).unwrap();
        assert_eq!(cluster.arbiter(victim), reference);
        cluster.check_invariants().unwrap();
        // The recovered shard serves again.
        let outcome = cluster
            .request(GlobalRequest::release_floor(gids[0], rosters[0][0]))
            .unwrap();
        assert!(outcome.is_granted());
    }

    #[test]
    fn scale_out_migrates_only_idle_groups_and_reports_pinned_ones() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::EqualControl);
        // Make one third of the groups floor-active so they are pinned.
        for (g, roster) in gids.iter().zip(&rosters).take(20) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        assert_eq!(cluster.shard_count(), 4);
        let report = cluster.rebalance_idle().unwrap();
        assert!(!report.migrated.is_empty(), "some idle groups must move");
        for g in &report.migrated {
            assert_eq!(cluster.placement(*g).unwrap().shard, new);
            let roster = &rosters[g.0 as usize];
            // Members remain functional on the new shard.
            let outcome = cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
            assert!(outcome.is_granted());
        }
        // Active groups stayed put with their token state intact, and any of
        // them whose ring placement changed is reported as deferred rather
        // than silently skipped.
        for (g, roster) in gids.iter().zip(&rosters).take(20) {
            assert!(
                !report.migrated.contains(g),
                "active group {g} must be pinned"
            );
            let placement = cluster.placement(*g).unwrap();
            if cluster.core.directory().shard_for(g.0) != placement.shard {
                assert!(
                    report.deferred.contains(g),
                    "pinned group {g} must be reported as deferred"
                );
            }
            let token = cluster
                .arbiter(placement.shard)
                .token(placement.local)
                .unwrap()
                .clone();
            let local = cluster.local_member(roster[0], placement.shard).unwrap();
            assert_eq!(token.holder(), Some(local));
        }
        // Deferred groups migrate once their floor state quiesces.
        if let Some(&pinned) = report.deferred.first() {
            let roster = &rosters[pinned.0 as usize];
            cluster
                .request(GlobalRequest::release_floor(pinned, roster[0]))
                .unwrap();
            let second = cluster.rebalance_idle().unwrap();
            assert!(second.migrated.contains(&pinned));
            assert!(!second.deferred.contains(&pinned));
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn deferred_groups_migrate_after_token_release() {
        // Every group is made floor-active, so the first rebalance after
        // scale-out can move nothing: every ring-displaced group must land in
        // `deferred`. Releasing the tokens and retrying — the documented
        // contract of the `deferred` list — must then migrate exactly those
        // groups.
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 40, 2, FcmMode::EqualControl);
        for (g, roster) in gids.iter().zip(&rosters) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        let report = cluster.rebalance_idle().unwrap();
        assert!(report.migrated.is_empty(), "every group is token-pinned");
        assert!(
            !report.deferred.is_empty(),
            "scale-out must displace some groups on the ring"
        );
        for g in &report.deferred {
            let roster = &rosters[g.0 as usize];
            cluster
                .request(GlobalRequest::release_floor(*g, roster[0]))
                .unwrap();
        }
        let second = cluster.rebalance_idle().unwrap();
        for g in &report.deferred {
            assert!(
                second.migrated.contains(g),
                "deferred group {g} must migrate once its token is released"
            );
            assert!(!second.deferred.contains(g));
            assert_eq!(cluster.placement(*g).unwrap().shard, new);
            // The group keeps working on its new shard.
            let roster = &rosters[g.0 as usize];
            let outcome = cluster
                .request(GlobalRequest::speak(*g, roster[1]))
                .unwrap();
            assert!(outcome.is_granted());
        }
        assert!(second.deferred.is_empty());
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn session_state_and_journal_follow_rebalanced_groups() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::FreeAccess);
        let mut seqs = std::collections::BTreeMap::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            let seq = cluster.allocate_request_id();
            let (outcome, replayed) = cluster
                .session_with_id(seq, SessionOp::chat(*g, roster[0], "before the move"))
                .unwrap();
            assert!(outcome.is_delivered() && !replayed);
            seqs.insert(*g, (seq, roster[0]));
        }
        cluster.add_shard();
        let report = cluster.rebalance_idle().unwrap();
        assert!(!report.migrated.is_empty());
        for g in &report.migrated {
            // The content followed the group to its new shard...
            let view = cluster.session_view(*g).unwrap();
            assert_eq!(view.chat.len(), 1, "chat log must follow {g}");
            // ...and so did its slice of the session decision journal: a
            // gateway retry of the pre-migration id replays instead of
            // appending the line twice.
            let (seq, member) = seqs[g];
            let (outcome, replayed) = cluster
                .session_with_id(seq, SessionOp::chat(*g, member, "before the move"))
                .unwrap();
            assert!(replayed, "session journal entry for {g} must have migrated");
            assert!(outcome.is_delivered());
            assert_eq!(cluster.session_view(*g).unwrap().chat.len(), 1);
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn dedup_journal_migrates_with_rebalanced_groups() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::EqualControl);
        // Decide (and journal) a speak + release per group, then let every
        // group go idle so rebalancing can move it.
        let mut speak_seqs = std::collections::BTreeMap::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            let speak = GlobalRequest::speak(*g, roster[0]);
            speak_seqs.insert(*g, (cluster.submit(speak).unwrap(), speak));
            cluster
                .submit(GlobalRequest::release_floor(*g, roster[0]))
                .unwrap();
        }
        let originals: std::collections::BTreeMap<u64, Decision> =
            cluster.flush().into_iter().map(|d| (d.seq, d)).collect();
        cluster.add_shard();
        let report = cluster.rebalance_idle().unwrap();
        assert!(!report.migrated.is_empty());
        // Retrying a pre-migration request id must replay the journaled
        // decision from the group's *new* shard, not re-apply the speak —
        // re-applying would re-grant the (released) floor.
        let gateway = cluster.gateway();
        for g in &report.migrated {
            let (seq, speak) = speak_seqs[g];
            gateway.resubmit(seq, speak).unwrap();
            let retry = gateway.recv_decision().unwrap();
            assert_eq!(retry.seq, seq);
            assert!(retry.replayed, "journal entry for {g} must have migrated");
            assert_eq!(retry.outcome, originals[&seq].outcome);
            // The floor really was not re-granted.
            let placement = cluster.placement(*g).unwrap();
            let arbiter = cluster.arbiter(placement.shard);
            assert_eq!(arbiter.token(placement.local).unwrap().holder(), None);
        }
        cluster.check_invariants().unwrap();
    }
}
